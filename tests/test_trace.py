"""Tests for the tracing infrastructure and its instrumentation points."""

import pytest

from repro.core import PaseConfig, PaseControlPlane, PaseReceiver, PaseSender, pase_queue_factory
from repro.sim import Simulator, StarTopology
from repro.sim.queues import DropTailQueue
from repro.sim.trace import TraceEvent, Tracer
from repro.transports import Flow, ReceiverAgent, TcpConfig, TcpSender
from repro.utils.units import GBPS, KB, USEC


class TestTracerCore:
    def test_record_and_query(self):
        t = Tracer()
        t.record(0.1, "drop", "linkA", flow=1)
        t.record(0.2, "timeout", 1, cum_ack=5)
        t.record(0.3, "drop", "linkB", flow=2)
        assert len(t) == 3
        assert t.count("drop") == 2
        assert [e.subject for e in t.of("drop")] == ["linkA", "linkB"]
        assert t.about(1)[0].category == "timeout"

    def test_detail_accessor(self):
        t = Tracer()
        t.record(0.1, "drop", "l", flow=7, seq=3)
        e = t.events[0]
        assert e.detail("flow") == 7
        assert e.detail("missing", "default") == "default"

    def test_category_filter(self):
        t = Tracer(categories=["timeout"])
        t.record(0.1, "drop", "l")
        t.record(0.2, "timeout", 1)
        assert len(t) == 1
        assert t.events[0].category == "timeout"

    def test_max_events_cap(self):
        t = Tracer(max_events=2)
        for i in range(5):
            t.record(i * 0.1, "x", i)
        assert len(t) == 2
        assert t.dropped_records == 3

    def test_flow_timeline_sorted(self):
        t = Tracer()
        t.record(0.3, "a", 1)
        t.record(0.1, "b", 1)
        t.record(0.2, "c", 2)
        timeline = t.flow_timeline(1)
        assert [e.time for e in timeline] == [0.1, 0.3]


class TestInstrumentation:
    def test_drops_recorded(self):
        sim = Simulator()
        sim.tracer = Tracer()
        topo = StarTopology(sim, num_hosts=4, link_bps=1 * GBPS,
                            rtt=100 * USEC,
                            queue_factory=lambda: DropTailQueue(capacity_pkts=2))
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=100 * KB,
                    start_time=0.0)
        ReceiverAgent(sim, topo.hosts[1], flow)
        TcpSender(sim, topo.hosts[0], flow,
                  TcpConfig(initial_rtt=100 * USEC, init_cwnd=20)).start()
        sim.run(until=1.0)
        assert sim.tracer.count("drop") > 0
        drop = sim.tracer.of("drop")[0]
        assert drop.detail("flow") == 1

    def test_timeouts_and_retransmits_recorded(self):
        sim = Simulator()
        sim.tracer = Tracer()
        topo = StarTopology(sim, num_hosts=4, link_bps=1 * GBPS,
                            rtt=100 * USEC,
                            queue_factory=lambda: DropTailQueue(capacity_pkts=2))
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=150 * KB,
                    start_time=0.0)
        ReceiverAgent(sim, topo.hosts[1], flow)
        TcpSender(sim, topo.hosts[0], flow,
                  TcpConfig(initial_rtt=100 * USEC, init_cwnd=30)).start()
        sim.run(until=2.0)
        assert flow.completed
        assert sim.tracer.count("retransmit") == flow.retransmissions

    def test_pase_queue_changes_recorded(self):
        cfg = PaseConfig()
        sim = Simulator()
        sim.tracer = Tracer(categories=["queue-change"])
        topo = StarTopology(sim, num_hosts=4, link_bps=1 * GBPS,
                            rtt=100 * USEC,
                            queue_factory=pase_queue_factory(cfg))
        cp = PaseControlPlane(sim, topo, cfg)
        flows = []
        for i, size in enumerate([50 * KB, 400 * KB]):
            f = Flow(flow_id=i + 1, src=topo.hosts[i].node_id,
                     dst=topo.hosts[3].node_id, size_bytes=size,
                     start_time=0.0)
            PaseReceiver(sim, topo.hosts[3], f)
            PaseSender(sim, topo.hosts[i], f, cp).start()
            flows.append(f)
        sim.run(until=0.1)
        # The long flow was demoted then promoted: >= 2 transitions.
        changes = sim.tracer.flow_timeline(2)
        assert len(changes) >= 2
        assert changes[-1].detail("new") == 0  # ends in the top queue

    def test_no_tracer_no_overhead_errors(self):
        sim = Simulator()
        assert sim.tracer is None
        topo = StarTopology(sim, num_hosts=2)
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=10 * KB,
                    start_time=0.0)
        ReceiverAgent(sim, topo.hosts[1], flow)
        TcpSender(sim, topo.hosts[0], flow).start()
        sim.run(until=1.0)
        assert flow.completed
