"""Tests for DCTCP, D2TCP, and L2DCT control laws."""

import pytest

from repro.sim import Simulator, StarTopology
from repro.sim.packet import Packet, PacketKind
from repro.transports import (
    D2tcpConfig,
    D2tcpSender,
    DctcpConfig,
    DctcpSender,
    Flow,
    L2dctConfig,
    L2dctSender,
    ReceiverAgent,
)
from repro.transports.dctcp import DctcpAlphaEstimator
from repro.utils.units import GBPS, KB, MB, USEC


class TestAlphaEstimator:
    def test_starts_at_zero(self):
        est = DctcpAlphaEstimator()
        assert est.alpha == 0.0

    def test_no_marks_keeps_alpha_zero(self):
        est = DctcpAlphaEstimator()
        est.begin_window(4)
        for _ in range(10):
            est.observe(False, 4)
        assert est.alpha == 0.0

    def test_all_marked_converges_to_one(self):
        est = DctcpAlphaEstimator(g=0.5)
        est.begin_window(2)
        for _ in range(40):
            est.observe(True, 2)
        assert est.alpha > 0.99

    def test_window_rollover_returns_true(self):
        est = DctcpAlphaEstimator()
        est.begin_window(3)
        assert not est.observe(False, 3)
        assert not est.observe(False, 3)
        assert est.observe(False, 3)

    def test_partial_marks_track_fraction(self):
        est = DctcpAlphaEstimator(g=1.0)  # no smoothing: alpha = fraction
        est.begin_window(4)
        for marked in (True, False, False, False):
            est.observe(marked, 4)
        assert est.alpha == pytest.approx(0.25)


def build(sender_cls, config, size=200 * KB, deadline=None):
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=3, link_bps=1 * GBPS, rtt=100 * USEC)
    flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                dst=topo.hosts[1].node_id, size_bytes=size, start_time=0.0,
                deadline=deadline)
    ReceiverAgent(sim, topo.hosts[1], flow)
    sender = sender_cls(sim, topo.hosts[0], flow, config)
    return sim, topo, flow, sender


class TestDctcp:
    def test_completes_clean(self):
        sim, _, flow, _ = build(DctcpSender, DctcpConfig(initial_rtt=100 * USEC))
        sim.schedule(0.0, lambda: None)
        sim.run(until=0.0)
        # start manually
        sim2, _, flow2, sender2 = build(DctcpSender, DctcpConfig(initial_rtt=100 * USEC))
        sender2.start()
        sim2.run(until=1.0)
        assert flow2.completed

    def test_mark_reduces_window(self):
        _, _, _, sender = build(DctcpSender, DctcpConfig(initial_rtt=100 * USEC))
        sender.start()
        sender.cwnd = 10.0
        sender.estimator.alpha = 0.5
        sender._last_reduction_seq = -1
        ack = Packet(PacketKind.ACK, 1, 0, 1, seq=0)
        ack.ack_sacks = 0
        ack.ecn_echo = True
        before = sender.cwnd
        sender.on_ack_window_update(ack, newly_acked=True)
        assert sender.cwnd < before
        # alpha=0.5 (approx; the estimator folded in this window's sample)
        assert sender.cwnd == pytest.approx(before * (1 - sender.alpha / 2), rel=0.2)

    def test_one_reduction_per_window(self):
        _, _, _, sender = build(DctcpSender, DctcpConfig(initial_rtt=100 * USEC))
        sender.start()
        sender.cwnd = 16.0
        sender.next_new = 20
        sender.estimator.alpha = 1.0
        ack = Packet(PacketKind.ACK, 1, 0, 1, seq=0)
        ack.ecn_echo = True
        ack.ack_sacks = 0
        sender.on_ack_window_update(ack, newly_acked=True)
        first = sender.cwnd
        sender.on_ack_window_update(ack, newly_acked=True)
        # Second marked ACK in the same window: no further reduction
        # (it falls through to the increase path instead).
        assert sender.cwnd >= first

    def test_unmarked_acks_grow_window(self):
        _, _, _, sender = build(DctcpSender, DctcpConfig(
            initial_rtt=100 * USEC, slow_start=False))
        sender.start()
        sender.cwnd = 4.0
        sender.ssthresh = 1.0
        ack = Packet(PacketKind.ACK, 1, 0, 1, seq=0)
        ack.ack_sacks = 0
        before = sender.cwnd
        sender.on_ack_window_update(ack, newly_acked=True)
        assert sender.cwnd == pytest.approx(before + 1 / before)


class TestD2tcp:
    def test_no_deadline_degenerates_to_dctcp(self):
        _, _, _, sender = build(D2tcpSender, D2tcpConfig(initial_rtt=100 * USEC))
        assert sender.deadline_imminence() == 1.0
        sender.estimator.alpha = 0.4
        assert sender.backoff_factor() == pytest.approx(0.4)

    def test_imminence_clamped(self):
        _, _, _, sender = build(
            D2tcpSender, D2tcpConfig(initial_rtt=100 * USEC),
            deadline=100.0)  # very far deadline
        sender.start()
        assert sender.deadline_imminence() == pytest.approx(0.5)

    def test_expired_deadline_most_aggressive(self):
        sim, _, _, sender = build(
            D2tcpSender, D2tcpConfig(initial_rtt=100 * USEC),
            deadline=1e-9)
        sender.start()
        sim.run(until=0.01)
        assert sender.deadline_imminence() == pytest.approx(2.0)

    def test_near_deadline_backs_off_less(self):
        _, _, _, far = build(D2tcpSender, D2tcpConfig(initial_rtt=100 * USEC),
                             deadline=100.0)
        far.start()
        far.estimator.alpha = 0.5
        # d = 0.5 -> p = alpha^0.5 > alpha; far flows back off MORE.
        assert far.backoff_factor() > 0.5
        _, _, _, near = build(D2tcpSender, D2tcpConfig(initial_rtt=100 * USEC))
        near.estimator.alpha = 0.5
        near_p = near.backoff_factor()  # d = 1
        assert near_p == pytest.approx(0.5)
        assert far.backoff_factor() > near_p

    def test_invalid_clamp_config(self):
        with pytest.raises(ValueError):
            D2tcpConfig(d_min=2.0, d_max=0.5)


class TestL2dct:
    def test_weight_starts_at_max(self):
        _, _, _, sender = build(L2dctSender, L2dctConfig(initial_rtt=100 * USEC))
        assert sender.weight() == pytest.approx(2.5)

    def test_weight_decreases_with_attained_service(self):
        _, _, _, sender = build(L2dctSender, L2dctConfig(initial_rtt=100 * USEC),
                                size=2 * MB)
        w0 = sender.weight()
        sender.pkts_acked = 100  # 150 KB attained
        w1 = sender.weight()
        sender.pkts_acked = 500  # 750 KB attained
        w2 = sender.weight()
        assert w0 > w1 > w2

    def test_weight_floors_at_min(self):
        _, _, _, sender = build(L2dctSender, L2dctConfig(initial_rtt=100 * USEC),
                                size=10 * MB)
        sender.pkts_acked = 10_000  # 15 MB >> ramp_high
        assert sender.weight() == pytest.approx(0.125)

    def test_long_flows_back_off_more(self):
        _, _, _, sender = build(L2dctSender, L2dctConfig(initial_rtt=100 * USEC),
                                size=10 * MB)
        sender.estimator.alpha = 0.5
        short_backoff = sender.backoff_factor()
        sender.pkts_acked = 10_000
        long_backoff = sender.backoff_factor()
        assert long_backoff > short_backoff

    def test_completes(self):
        sim, _, flow, sender = build(L2dctSender,
                                     L2dctConfig(initial_rtt=100 * USEC))
        sender.start()
        sim.run(until=1.0)
        assert flow.completed
