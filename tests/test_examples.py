"""Smoke tests: every example script runs to completion.

The examples double as executable documentation; a refactor that breaks
them breaks the README's promises.  Each runs in a subprocess with the
repository's source tree on the path.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_complete():
    assert "quickstart.py" in ALL_EXAMPLES
    assert len(ALL_EXAMPLES) >= 4


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stderr[-2000:]}")
    assert result.stdout.strip(), f"{script} printed nothing"


def test_quickstart_demonstrates_sjf():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert "shortest-flow-first confirmed" in result.stdout
    assert "beat plain DCTCP" in result.stdout
