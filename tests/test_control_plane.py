"""Tests for the bottom-up arbitration control plane (§3.1)."""

import pytest

from repro.core import PaseConfig, PaseControlPlane
from repro.core.control_plane import LEVEL_AGG, LEVEL_HOST, LEVEL_TOR
from repro.sim import Simulator, StarTopology, TreeTopology, TreeTopologyConfig
from repro.transports import Flow
from repro.utils.units import GBPS, KB, USEC


def star_cp(config=None, num_hosts=4):
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=num_hosts, rtt=100 * USEC)
    cp = PaseControlPlane(sim, topo, config or PaseConfig())
    return sim, topo, cp


def tree_cp(config=None, hosts_per_rack=2):
    sim = Simulator()
    topo = TreeTopology(sim, TreeTopologyConfig(hosts_per_rack=hosts_per_rack))
    cp = PaseControlPlane(sim, topo, config or PaseConfig())
    return sim, topo, cp


def flow_between(topo, src_host, dst_host, size=100 * KB, fid=1):
    return Flow(flow_id=fid, src=src_host.node_id, dst=dst_host.node_id,
                size_bytes=size, start_time=0.0)


class TestIntraRack:
    def test_local_result_is_synchronous(self):
        sim, topo, cp = star_cp()
        flow = flow_between(topo, topo.hosts[0], topo.hosts[1])
        result = cp.request(flow, 100 * KB, 1 * GBPS, lambda h, r: None)
        assert result.queue == 0
        assert result.reference_rate == pytest.approx(1 * GBPS)

    def test_intra_rack_costs_zero_messages(self):
        sim, topo, cp = star_cp()
        flow = flow_between(topo, topo.hosts[0], topo.hosts[1])
        cp.request(flow, 100 * KB, 1 * GBPS, lambda h, r: None)
        sim.run(until=0.01)
        assert cp.messages_sent == 0

    def test_dst_half_arrives_after_transfer_latency(self):
        sim, topo, cp = star_cp()
        flow = flow_between(topo, topo.hosts[0], topo.hosts[1])
        arrivals = []
        cp.request(flow, 100 * KB, 1 * GBPS,
                   lambda h, r: arrivals.append((sim.now, h)))
        sim.run(until=0.01)
        halves = {h for _, h in arrivals}
        assert halves == {"src", "dst"}
        dst_time = next(t for t, h in arrivals if h == "dst")
        # One-way out (piggybacked) + one-way back: about one RTT.
        assert dst_time == pytest.approx(100 * USEC, rel=0.01)

    def test_dst_half_reflects_downlink_contention(self):
        sim, topo, cp = star_cp()
        # Flow 9 already saturates host 1's downlink with higher priority.
        other = flow_between(topo, topo.hosts[2], topo.hosts[1], size=5 * KB, fid=9)
        cp.request(other, 5 * KB, 1 * GBPS, lambda h, r: None)
        flow = flow_between(topo, topo.hosts[0], topo.hosts[1], size=500 * KB)
        results = {}
        cp.request(flow, 500 * KB, 1 * GBPS, lambda h, r: results.setdefault(h, r))
        sim.run(until=0.01)
        assert results["src"].queue == 0  # own uplink is idle
        assert results["dst"].queue == 1  # behind flow 9 on the downlink


class TestInterRack:
    def test_cross_agg_with_delegation_stops_at_tor(self):
        cfg = PaseConfig(delegation_enabled=True)
        sim, topo, cp = tree_cp(cfg)
        src = topo.rack_hosts(0)[0]
        dst = topo.rack_hosts(2)[0]  # other aggregation switch
        flow = flow_between(topo, src, dst)
        chains = cp.chains_for(flow)
        levels = [h.level for h in chains.src_hops]
        assert LEVEL_AGG not in levels  # delegated to the ToR
        assert levels.count(LEVEL_TOR) == 2  # real ToR link + virtual core link

    def test_cross_agg_without_delegation_reaches_agg(self):
        cfg = PaseConfig(delegation_enabled=False)
        sim, topo, cp = tree_cp(cfg)
        src = topo.rack_hosts(0)[0]
        dst = topo.rack_hosts(2)[0]
        chains = cp.chains_for(flow_between(topo, src, dst))
        assert [h.level for h in chains.src_hops] == [LEVEL_HOST, LEVEL_TOR, LEVEL_AGG]

    def test_same_agg_needs_no_core_hop(self):
        sim, topo, cp = tree_cp()
        src = topo.rack_hosts(0)[0]
        dst = topo.rack_hosts(1)[0]  # same aggregation switch
        chains = cp.chains_for(flow_between(topo, src, dst))
        assert len(chains.src_hops) == 2  # host + ToR only

    def test_inter_rack_messages_counted(self):
        sim, topo, cp = tree_cp(PaseConfig(delegation_enabled=False))
        src = topo.rack_hosts(0)[0]
        dst = topo.rack_hosts(2)[0]
        flow = flow_between(topo, src, dst)
        cp.request(flow, 100 * KB, 1 * GBPS, lambda h, r: None)
        sim.run(until=0.01)
        # Both halves consult a ToR (2 msgs) and an Agg (2 msgs) each.
        assert cp.messages_sent == 8

    def test_delegation_reduces_messages(self):
        flows_args = (100 * KB, 1 * GBPS)

        def messages(delegation):
            cfg = PaseConfig(delegation_enabled=delegation,
                             pruning_queues=0,
                             delegation_update_interval=1.0)
            sim, topo, cp = tree_cp(cfg)
            src = topo.rack_hosts(0)[0]
            dst = topo.rack_hosts(2)[0]
            cp.request(flow_between(topo, src, dst), *flows_args,
                       lambda h, r: None)
            sim.run(until=0.01)
            return cp.messages_sent

        assert messages(True) < messages(False)

    def test_pruning_stops_low_priority_climb(self):
        cfg = PaseConfig(delegation_enabled=False, pruning_queues=1)
        sim, topo, cp = tree_cp(cfg, hosts_per_rack=3)
        rack0 = topo.rack_hosts(0)
        dst = topo.rack_hosts(2)[0]
        # Saturate the shared source uplink path with a higher-priority flow
        # from the same host so the second flow maps below the top queue at
        # its first (local) arbitrator.
        f1 = flow_between(topo, rack0[0], dst, size=5 * KB, fid=1)
        cp.request(f1, 5 * KB, 1 * GBPS, lambda h, r: None)
        f2 = flow_between(topo, rack0[0], dst, size=500 * KB, fid=2)
        cp.request(f2, 500 * KB, 1 * GBPS, lambda h, r: None)
        sim.run(until=0.01)
        assert cp.prunes >= 1

    def test_completion_clears_arbitrators(self):
        sim, topo, cp = tree_cp()
        src = topo.rack_hosts(0)[0]
        dst = topo.rack_hosts(2)[0]
        flow = flow_between(topo, src, dst)
        cp.request(flow, 100 * KB, 1 * GBPS, lambda h, r: None)
        sim.run(until=0.01)
        cp.notify_complete(flow)
        for arb in list(cp.arbitrators.values()) + list(cp.virtual.values()):
            assert flow.flow_id not in arb.flows


class TestDelegationRebalance:
    def test_shares_follow_demand(self):
        cfg = PaseConfig(delegation_enabled=True,
                         delegation_update_interval=1e-3)
        sim, topo, cp = tree_cp(cfg)
        agg_up = topo.network.link_between(topo.aggs[0], topo.core)
        busy_tor = topo.tors[0]
        idle_tor = topo.tors[1]
        busy = cp.virtual[(agg_up.name, busy_tor.node_id)]
        idle = cp.virtual[(agg_up.name, idle_tor.node_id)]
        # Register load only on the busy ToR's virtual slice.
        busy.arbitrate(1, 10 * KB, demand=5 * GBPS, now=0.0)
        sim.run(until=2e-3)  # one rebalance period
        assert busy.share > idle.share
        assert idle.share >= cfg.delegation_min_share - 1e-9

    def test_rebalance_messages_counted(self):
        cfg = PaseConfig(delegation_enabled=True,
                         delegation_update_interval=1e-3)
        sim, topo, cp = tree_cp(cfg)
        before = cp.messages_sent
        sim.run(until=2.5e-3)
        assert cp.messages_sent > before


class TestLocalArbitrationAblation:
    def test_local_mode_has_no_fabric_hops(self):
        cfg = PaseConfig(end_to_end_arbitration=False)
        sim, topo, cp = tree_cp(cfg)
        src = topo.rack_hosts(0)[0]
        dst = topo.rack_hosts(2)[0]
        chains = cp.chains_for(flow_between(topo, src, dst))
        assert len(chains.src_hops) == 1
        assert len(chains.dst_hops) == 1


class TestProcessingLoad:
    def test_delegation_moves_processing_off_aggregation(self):
        from repro.transports import Flow as _Flow
        sim, topo, cp = tree_cp(PaseConfig(delegation_enabled=True))
        src = topo.rack_hosts(0)[0]
        dst = topo.rack_hosts(2)[0]
        cp.request(flow_between(topo, src, dst), 100 * KB, 1 * GBPS,
                   lambda h, r: None)
        sim.run(until=0.01)
        assert cp.processed_by_level[LEVEL_AGG] == 0
        assert cp.processed_by_level[LEVEL_TOR] > 0

    def test_no_delegation_loads_aggregation(self):
        sim, topo, cp = tree_cp(PaseConfig(delegation_enabled=False,
                                           pruning_queues=0))
        src = topo.rack_hosts(0)[0]
        dst = topo.rack_hosts(2)[0]
        cp.request(flow_between(topo, src, dst), 100 * KB, 1 * GBPS,
                   lambda h, r: None)
        sim.run(until=0.01)
        assert cp.processed_by_level[LEVEL_AGG] == 2  # both halves' core hop

    def test_host_level_counts_local_decisions(self):
        sim, topo, cp = star_cp()
        flow = flow_between(topo, topo.hosts[0], topo.hosts[1])
        cp.request(flow, 100 * KB, 1 * GBPS, lambda h, r: None)
        sim.run(until=0.01)
        assert cp.processed_by_level[LEVEL_HOST] == 2  # src + dst access links
