"""Tests for multi-seed replication and the significance helpers."""

import pytest

from repro.harness import intra_rack
from repro.harness.replication import (
    Replication,
    compare_protocols,
    replicate,
    significantly_better,
)


class TestReplicationStats:
    def test_mean_and_std(self):
        r = Replication([1.0, 2.0, 3.0])
        assert r.mean == pytest.approx(2.0)
        assert r.std == pytest.approx(1.0)

    def test_single_value_degenerate(self):
        r = Replication([5.0])
        assert r.mean == 5.0
        assert r.std == 0.0
        assert r.ci_halfwidth == 0.0

    def test_ci_narrows_with_more_samples(self):
        wide = Replication([1.0, 3.0])
        narrow = Replication([1.0, 3.0] * 8)
        assert narrow.ci_halfwidth < wide.ci_halfwidth

    def test_confidence_levels(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert (Replication(vals, confidence=0.99).ci_halfwidth
                > Replication(vals, confidence=0.90).ci_halfwidth)
        with pytest.raises(ValueError):
            Replication(vals, confidence=0.42).ci_halfwidth

    def test_overlap_detection(self):
        a = Replication([1.0, 1.1, 0.9])
        b = Replication([1.05, 1.15, 0.95])
        far = Replication([9.0, 9.1, 8.9])
        assert a.overlaps(b)
        assert not a.overlaps(far)

    def test_significantly_better(self):
        fast = Replication([1.0, 1.1, 0.9])
        slow = Replication([5.0, 5.2, 4.8])
        assert significantly_better(fast, slow)
        assert not significantly_better(slow, fast)
        assert not significantly_better(fast, fast)


class TestReplicatedExperiments:
    def test_replicate_runs_all_seeds(self):
        rep = replicate("dctcp", lambda: intra_rack(num_hosts=6), 0.5,
                        seeds=(1, 2, 3), num_flows=25)
        assert rep.n == 3
        assert rep.mean > 0
        assert rep.std > 0  # different seeds, different workloads

    def test_compare_pase_beats_dctcp_significantly(self):
        results = compare_protocols(
            ("pase", "dctcp"), lambda: intra_rack(num_hosts=8), 0.7,
            seeds=(1, 2, 3, 4), num_flows=60)
        assert significantly_better(results["pase"], results["dctcp"])

    def test_custom_metric(self):
        rep = replicate("pase", lambda: intra_rack(num_hosts=6), 0.5,
                        seeds=(1, 2), num_flows=25,
                        metric=lambda r: r.stats.completion_fraction)
        assert rep.mean == pytest.approx(1.0)
