"""Coverage for corners not reached by the behavior-focused suites."""

import math

import pytest

from repro.core import ArbitrationResult, PaseConfig
from repro.harness import format_series_table, improvement_row, series_from_results
from repro.sim import Simulator
from repro.sim.queues import PFabricQueue, PriorityQueueBank
from repro.transports import TransportConfig
from repro.transports.base import SenderAgent
from repro.utils.units import KB, MSEC, USEC
from repro.workloads import DEADLINE_SIZES, QUERY_SIZES


class TestEngineCorners:
    def test_schedule_at_exactly_now_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.5, lambda: sim.schedule_at(sim.now, fired.append, 1))
        sim.run()
        assert fired == [1]

    def test_run_empty_heap_returns_zero(self):
        sim = Simulator()
        assert sim.run() == 0
        assert sim.now == 0.0

    def test_run_until_before_first_event(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=0.5) == 0
        assert sim.now == 0.5
        assert sim.pending_events == 1

    def test_event_repr_mentions_state(self):
        sim = Simulator()
        event = sim.schedule(0.1, lambda: None)
        assert "pending" in repr(event)
        event.cancel()
        assert "cancelled" in repr(event)


class TestQueueCorners:
    def test_priority_bank_dequeue_empty(self):
        assert PriorityQueueBank().dequeue() is None

    def test_pfabric_dequeue_empty(self):
        assert PFabricQueue().dequeue() is None

    def test_pfabric_byte_depth(self):
        q = PFabricQueue(capacity_pkts=4)
        from repro.sim.packet import Packet, PacketKind
        p = Packet(PacketKind.DATA, 0, 1, 1, size=700, priority=1.0)
        q.enqueue(p)
        assert q.byte_depth == 700
        q.dequeue()
        assert q.byte_depth == 0

    def test_counters_accumulate(self):
        q = PriorityQueueBank(num_queues=2, capacity_pkts=1)
        from repro.sim.packet import Packet, PacketKind
        q.enqueue(Packet(PacketKind.DATA, 0, 1, 1))
        q.enqueue(Packet(PacketKind.DATA, 0, 1, 2))
        assert q.enqueued_total == 1
        assert q.drops == 1
        assert q.drop_bytes > 0


class TestPaseConfigProperties:
    def test_num_data_queues_with_reserved_background(self):
        cfg = PaseConfig(num_queues=8)
        assert cfg.num_data_queues == 7
        assert cfg.background_queue == 7

    def test_no_reserved_background(self):
        cfg = PaseConfig(num_queues=4, reserve_background_queue=False)
        assert cfg.num_data_queues == 4

    def test_entry_timeout_scales_with_interval(self):
        cfg = PaseConfig(arbitration_interval=1 * MSEC,
                         entry_timeout_intervals=3.0)
        assert cfg.entry_timeout == pytest.approx(3 * MSEC)

    def test_pruning_disabled_at_zero(self):
        assert not PaseConfig(pruning_queues=0).pruning_enabled
        assert PaseConfig(pruning_queues=2).pruning_enabled

    def test_two_queue_minimum_with_background(self):
        with pytest.raises(ValueError):
            PaseConfig(num_queues=1)

    def test_invalid_delegation_share(self):
        with pytest.raises(ValueError):
            PaseConfig(delegation_min_share=1.0)

    def test_invalid_criterion(self):
        with pytest.raises(ValueError):
            PaseConfig(criterion="magic")


class TestArbitrationResult:
    def test_merge_identity(self):
        r = ArbitrationResult(queue=1, reference_rate=5e8)
        assert r.merge(r) == r

    def test_merge_associative(self):
        a = ArbitrationResult(0, 1e9)
        b = ArbitrationResult(2, 4e8)
        c = ArbitrationResult(1, 7e8)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))


class TestPaperDistributionConstants:
    def test_query_sizes_interval(self):
        assert QUERY_SIZES.low == 2 * KB
        assert QUERY_SIZES.high == 198 * KB
        assert QUERY_SIZES.mean_bytes == 100 * KB

    def test_deadline_sizes_interval(self):
        assert DEADLINE_SIZES.low == 100 * KB
        assert DEADLINE_SIZES.high == 500 * KB


class TestSenderAgentCorners:
    def _sender(self, **cfg):
        from repro.sim import StarTopology
        from repro.transports import Flow
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=2)
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=30 * KB,
                    start_time=0.0)
        return SenderAgent(sim, topo.hosts[0], flow,
                           TransportConfig(**cfg))

    def test_rto_exponential_backoff_capped(self):
        sender = self._sender(min_rto=10 * MSEC, max_rto=0.1)
        base = sender.rto_value()
        sender._rto_backoff = 3
        assert sender.rto_value() == pytest.approx(min(0.1, base * 8))
        sender._rto_backoff = 20
        assert sender.rto_value() == 0.1  # capped at max_rto

    def test_usable_window_never_negative(self):
        sender = self._sender()
        sender.cwnd = 1.0
        sender._inflight.update({0, 1, 2})
        assert sender.usable_window() == 0

    def test_start_idempotent(self):
        sender = self._sender()
        sender.start()
        sent = sender.flow.pkts_sent
        sender.start()
        assert sender.flow.pkts_sent == sent

    def test_default_special_ack_is_noop(self):
        sender = self._sender()
        from repro.sim.packet import Packet, PacketKind
        ack = Packet(PacketKind.ACK, 1, 0, 1)
        assert sender.handle_special_ack(ack) is False

    def test_base_rtt_before_samples_is_initial(self):
        sender = self._sender(initial_rtt=250 * USEC)
        assert sender.base_rtt == pytest.approx(250 * USEC)


class TestReportHelpers:
    def _result(self, afct_ms):
        class FakeStats:
            pass

        class FakeResult:
            afct = afct_ms * 1e-3
        return FakeResult()

    def test_improvement_row(self):
        loads = [0.5]
        baseline = {0.5: self._result(10.0)}
        candidate = {0.5: self._result(4.0)}
        (imp,) = improvement_row(loads, baseline, candidate)
        assert imp == pytest.approx(60.0)

    def test_series_table_handles_missing_points(self):
        table = format_series_table("t", [0.1, 0.9], {"p": {0.1: 1.0}},
                                    unit="ms")
        assert "nan" in table  # missing 0.9 shown explicitly, not dropped

    def test_series_from_results_scaling(self):
        series = series_from_results({"p": {0.5: self._result(2.0)}},
                                     "afct", scale=1e3)
        assert series["p"][0.5] == pytest.approx(2.0)
