"""Tests for the command-line runner."""

import pytest

from repro.harness.cli import (build_parser, build_pase_config, main,
                               scenario_kwargs)
from repro.harness.scenarios import build_scenario


def _scenario(args):
    return build_scenario(args.scenario, **scenario_kwargs(args))


class TestParser:
    def test_required_arguments(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_minimal_invocation(self):
        args = build_parser().parse_args(
            ["--protocol", "pase", "--scenario", "intra-rack", "--load", "0.5"])
        assert args.protocol == "pase"
        assert args.load == [0.5]
        assert args.jobs == 1
        assert args.flows == 200

    def test_load_accepts_comma_separated_sweep(self):
        args = build_parser().parse_args(
            ["--protocol", "pase", "--scenario", "intra-rack",
             "--load", "0.1,0.5,0.9", "--jobs", "2"])
        assert args.load == [0.1, 0.5, 0.9]
        assert args.jobs == 2

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--protocol", "quic", "--scenario", "intra-rack",
                 "--load", "0.5"])


class TestScenarioBuilding:
    def _args(self, scenario, hosts=None, fanin=8):
        argv = ["--protocol", "pase", "--scenario", scenario, "--load", "0.5"]
        if hosts:
            argv += ["--hosts", str(hosts)]
        return build_parser().parse_args(argv)

    def test_each_scenario_constructs(self):
        for name in ("intra-rack", "intra-rack-deadlines", "all-to-all",
                     "left-right", "testbed"):
            scenario = _scenario(self._args(name, hosts=4))
            assert scenario.name

    def test_deadline_scenario_criterion(self):
        scenario = _scenario(self._args("intra-rack-deadlines", hosts=4))
        assert scenario.criterion == "deadline"
        assert scenario.deadline_dist is not None


class TestPaseOverrides:
    def test_no_overrides_returns_none(self):
        args = build_parser().parse_args(
            ["--protocol", "pase", "--scenario", "intra-rack", "--load", "0.5"])
        scenario = _scenario(args)
        assert build_pase_config(args, scenario) is None

    def test_criterion_override(self):
        args = build_parser().parse_args(
            ["--protocol", "pase", "--scenario", "intra-rack",
             "--load", "0.5", "--criterion", "las"])
        cfg = build_pase_config(args, _scenario(args))
        assert cfg.criterion == "las"

    def test_early_termination_flag(self):
        args = build_parser().parse_args(
            ["--protocol", "pase", "--scenario", "intra-rack-deadlines",
             "--load", "0.5", "--early-termination"])
        cfg = build_pase_config(args, _scenario(args))
        assert cfg.early_termination
        assert cfg.criterion == "deadline"  # inherited from the scenario

    def test_num_queues_override(self):
        args = build_parser().parse_args(
            ["--protocol", "pase", "--scenario", "intra-rack",
             "--load", "0.5", "--num-queues", "4"])
        cfg = build_pase_config(args, _scenario(args))
        assert cfg.num_queues == 4


class TestEndToEnd:
    def test_main_runs_and_prints(self, capsys):
        rc = main(["--protocol", "dctcp", "--scenario", "intra-rack",
                   "--load", "0.4", "--flows", "20", "--hosts", "5",
                   "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "AFCT" in out
        assert "completed 100.0%" in out

    def test_main_with_buckets_and_pase(self, capsys):
        rc = main(["--protocol", "pase", "--scenario", "all-to-all",
                   "--load", "0.4", "--flows", "20", "--hosts", "5",
                   "--fanin", "3", "--buckets"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "control:" in out
        assert "size bucket" in out

    def test_profile_dumps_stats_and_ledger_names_it(self, tmp_path, capsys):
        import json

        profile = tmp_path / "run.prof.txt"
        ledger = tmp_path / "run.jsonl"
        rc = main(["--protocol", "pase", "--scenario", "intra-rack",
                   "--load", "0.4", "--flows", "10", "--hosts", "4",
                   "--seed", "2", "--profile", str(profile),
                   "--output", str(ledger)])
        assert rc == 0
        text = profile.read_text()
        assert "cumulative" in text       # sorted by cumulative time
        assert "run_experiment" in text   # the wrapped call shows up
        rows = [json.loads(line) for line in ledger.read_text().splitlines()]
        run_rows = [r for r in rows if r["type"] == "run"]
        prof_rows = [r for r in rows if r["type"] == "profile"]
        assert len(run_rows) == 1 and run_rows[0]["status"] == "ok"
        assert len(prof_rows) == 1
        assert prof_rows[0]["path"] == str(profile)
        assert prof_rows[0]["run"] == run_rows[0]["hash"]

    def test_profile_sweep_forces_serial(self, tmp_path, capsys):
        import json

        profile = tmp_path / "sweep.prof.txt"
        ledger = tmp_path / "sweep.jsonl"
        rc = main(["--protocol", "dctcp", "--scenario", "intra-rack",
                   "--load", "0.3,0.5", "--flows", "10", "--hosts", "4",
                   "--jobs", "4", "--profile", str(profile),
                   "--output", str(ledger)])
        assert rc == 0
        assert "forces --jobs 1" in capsys.readouterr().err
        assert "run_experiment" in profile.read_text()
        rows = [json.loads(line) for line in ledger.read_text().splitlines()]
        types = [r["type"] for r in rows]
        assert types.count("run") == 2
        assert "profile" in types
