"""Tests for the extension features: LAS / task-aware criteria, deadline
early termination, and production workload distributions."""

import random

import pytest

from repro.core import (
    PaseConfig,
    PaseControlPlane,
    PaseReceiver,
    PaseSender,
    pase_queue_factory,
)
from repro.harness import ExperimentSpec, all_to_all_intra_rack, intra_rack, run_experiment
from repro.sim import Simulator, StarTopology
from repro.transports import Flow
from repro.utils.units import GBPS, KB, MB, MSEC, USEC
from repro.workloads import (
    IncastAllToAll,
    UniformSizeDistribution,
    WorkloadConfig,
    data_mining_sizes,
    generate_workload,
    web_search_sizes,
)


def build(config):
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=6, link_bps=1 * GBPS, rtt=100 * USEC,
                        queue_factory=pase_queue_factory(config))
    cp = PaseControlPlane(sim, topo, config)
    return sim, topo, cp


def launch(sim, topo, cp, fid, src, dst, size, start=0.0, deadline=None,
           task_id=None):
    flow = Flow(flow_id=fid, src=topo.hosts[src].node_id,
                dst=topo.hosts[dst].node_id, size_bytes=size,
                start_time=start, deadline=deadline, task_id=task_id)
    box = []

    def go():
        PaseReceiver(sim, topo.hosts[dst], flow)
        s = PaseSender(sim, topo.hosts[src], flow, cp)
        box.append(s)
        s.start()

    sim.schedule_at(start, go)
    return flow, box


class TestLasCriterion:
    def test_config_accepts_las(self):
        assert PaseConfig(criterion="las").criterion == "las"

    def test_criterion_is_attained_service(self):
        cfg = PaseConfig(criterion="las")
        sim, topo, cp = build(cfg)
        flow, box = launch(sim, topo, cp, 1, 0, 1, 300 * KB)
        sim.run(until=0.3e-3)
        sender = box[0]
        assert sender._criterion_value() == pytest.approx(
            sender.pkts_acked * sender.mtu)

    def test_fresh_flow_preempts_old_without_size_knowledge(self):
        cfg = PaseConfig(criterion="las")
        sim, topo, cp = build(cfg)
        old, _ = launch(sim, topo, cp, 1, 0, 2, 2 * MB)
        young, _ = launch(sim, topo, cp, 2, 1, 2, 50 * KB, start=3e-3)
        sim.run(until=0.1)
        assert young.completed
        # The young flow (less attained service) cut through the old one.
        assert young.fct < 2e-3


class TestTaskCriterion:
    def test_earlier_task_wins(self):
        cfg = PaseConfig(criterion="task")
        sim, topo, cp = build(cfg)
        # Task 1 arrives first but its flow is larger; task 2's flow is
        # smaller.  SRPT would favour task 2; task-aware FIFO favours 1.
        f1, _ = launch(sim, topo, cp, 1, 0, 2, 400 * KB, task_id=1)
        f2, _ = launch(sim, topo, cp, 2, 1, 2, 100 * KB, start=0.2e-3,
                       task_id=2)
        sim.run(until=0.1)
        assert f1.completed and f2.completed
        assert f1.completion_time < f2.completion_time

    def test_within_task_srpt(self):
        cfg = PaseConfig(criterion="task")
        sim, topo, cp = build(cfg)
        big, _ = launch(sim, topo, cp, 1, 0, 2, 500 * KB, task_id=1)
        small, _ = launch(sim, topo, cp, 2, 1, 2, 60 * KB, task_id=1)
        sim.run(until=0.1)
        assert small.completion_time < big.completion_time

    def test_taskless_flows_sort_last(self):
        cfg = PaseConfig(criterion="task")
        sim, topo, cp = build(cfg)
        tasked, _ = launch(sim, topo, cp, 1, 0, 2, 300 * KB, task_id=5)
        taskless, _ = launch(sim, topo, cp, 2, 1, 2, 50 * KB)
        sim.run(until=0.1)
        # Strict completion ordering is not guaranteed — work conservation
        # lets the (tiny) taskless flow trickle through queue-1 gaps — but
        # the tasked flow must keep nearly all of the bottleneck: its FCT
        # stays close to its solo time, while the taskless flow is slowed
        # to a multiple of its own.
        tasked_solo = tasked.size_bytes * 8 / 1e9 + 100 * USEC
        taskless_solo = taskless.size_bytes * 8 / 1e9 + 100 * USEC
        assert tasked.fct < 1.3 * tasked_solo
        assert taskless.fct > 2.0 * taskless_solo

    def test_generator_assigns_task_ids_to_bursts(self):
        pattern = IncastAllToAll(list(range(6)), 1 * GBPS, fanin=3)
        cfg = WorkloadConfig(pattern=pattern,
                             size_dist=UniformSizeDistribution(2 * KB, 20 * KB),
                             load=0.4, num_flows=12, seed=1)
        flows = generate_workload(cfg)
        tasks = {}
        for f in flows:
            assert f.task_id is not None
            tasks.setdefault(f.task_id, []).append(f)
        assert all(len(members) == 3 for members in tasks.values())
        # All members of one task share destination and start time.
        for members in tasks.values():
            assert len({f.dst for f in members}) == 1
            assert len({f.start_time for f in members}) == 1

    def test_singleton_patterns_stay_taskless(self):
        from repro.workloads import IntraRackRandom
        cfg = WorkloadConfig(pattern=IntraRackRandom(list(range(6)), 1 * GBPS),
                             size_dist=UniformSizeDistribution(2 * KB, 20 * KB),
                             load=0.4, num_flows=5, seed=1)
        assert all(f.task_id is None for f in generate_workload(cfg))


class TestEarlyTermination:
    def test_infeasible_flow_terminated(self):
        cfg = PaseConfig(criterion="deadline", early_termination=True)
        sim, topo, cp = build(cfg)
        # 500 KB in 1 ms needs 4 Gbps; the NIC has 1 Gbps: infeasible.
        flow, box = launch(sim, topo, cp, 1, 0, 1, 500 * KB,
                           deadline=1 * MSEC)
        sim.run(until=0.05)
        assert flow.terminated
        assert not flow.completed
        assert flow.met_deadline is False

    def test_feasible_flow_not_terminated(self):
        cfg = PaseConfig(criterion="deadline", early_termination=True)
        sim, topo, cp = build(cfg)
        flow, _ = launch(sim, topo, cp, 1, 0, 1, 100 * KB, deadline=20 * MSEC)
        sim.run(until=0.05)
        assert flow.completed
        assert not flow.terminated

    def test_termination_clears_arbitrators(self):
        cfg = PaseConfig(criterion="deadline", early_termination=True)
        sim, topo, cp = build(cfg)
        flow, _ = launch(sim, topo, cp, 1, 0, 1, 500 * KB, deadline=1 * MSEC)
        sim.run(until=0.05)
        for arb in cp.arbitrators.values():
            assert flow.flow_id not in arb.flows

    def test_termination_frees_capacity_for_feasible_flows(self):
        """With ET on, hopeless flows stop competing; the survivors' met
        fraction cannot be lower than without it."""
        scn = lambda: intra_rack(num_hosts=10, with_deadlines=True)
        base = PaseConfig(criterion="deadline")
        on = run_experiment(ExperimentSpec("pase", scn(), 0.9, num_flows=80, seed=2,
                            pase_config=PaseConfig(criterion="deadline",
                                                   early_termination=True)))
        off = run_experiment(ExperimentSpec("pase", scn(), 0.9, num_flows=80, seed=2,
                             pase_config=base))
        assert on.application_throughput >= off.application_throughput - 0.05
        assert any(f.terminated for f in on.flows)

    def test_harness_counts_terminated_flows(self):
        result = run_experiment(ExperimentSpec(
            "pase", intra_rack(num_hosts=8, with_deadlines=True), 0.9,
            num_flows=40, seed=2,
            pase_config=PaseConfig(criterion="deadline", early_termination=True)))
        # The run ends promptly (no horizon stall): every foreground flow
        # either completed or terminated.
        fg = [f for f in result.flows if not f.background]
        assert all(f.completed or f.terminated for f in fg)


class TestProductionWorkloads:
    def test_web_search_shape(self):
        dist = web_search_sizes()
        rng = random.Random(3)
        samples = [dist.sample(rng) for _ in range(3000)]
        small = sum(1 for s in samples if s <= 100 * KB) / len(samples)
        assert 0.4 < small < 0.75  # most flows are short
        assert max(samples) > 3 * MB  # but the tail is heavy

    def test_data_mining_heavier_tail_than_web_search(self):
        assert data_mining_sizes().mean_bytes > web_search_sizes().mean_bytes
        rng = random.Random(3)
        dm = [data_mining_sizes().sample(rng) for _ in range(3000)]
        tiny = sum(1 for s in dm if s <= 10 * KB) / len(dm)
        assert tiny > 0.6  # most flows tiny

    def test_sampling_deterministic_by_seed(self):
        a = [web_search_sizes().sample(random.Random(9)) for _ in range(10)]
        b = [web_search_sizes().sample(random.Random(9)) for _ in range(10)]
        assert a == b
