"""Scheduled fault injection: the repro.faults subsystem end to end.

Covers the declarative schedule (JSON round-trip), the loss models, link
down/up semantics, the injector's link resolution, and the PASE degradation
story the paper argues in §3.1: arbitrators crash, control messages vanish,
links flap — and flows still complete because arbitration is soft state and
the endpoints stay self-adjusting (DCTCP fallback), with everything
deterministic under a fixed seed.
"""

import pytest

from repro.core import (
    PaseConfig,
    PaseControlPlane,
    PaseReceiver,
    PaseSender,
    pase_queue_factory,
)
from repro.faults import (
    ArbitratorCrash,
    BernoulliLoss,
    ControlDegrade,
    DataLoss,
    FaultInjector,
    FaultSchedule,
    GilbertElliottLoss,
    LinkDown,
)
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.scenarios import build_scenario
from repro.sim import Simulator, StarTopology
from repro.sim.queues import REDQueue
from repro.sim.trace import Tracer
from repro.transports import DctcpConfig, DctcpSender, Flow, ReceiverAgent
from repro.utils.units import KB, MSEC, USEC


def red_factory():
    return REDQueue(225, 65)


# ----------------------------------------------------------------------
# Schedules: plain data, JSON round-trip
# ----------------------------------------------------------------------
class TestFaultSchedule:
    def test_json_round_trip(self):
        schedule = FaultSchedule(events=(
            LinkDown(at=0.01, links=("h0->sw0",), duration=0.005, flush=False),
            ArbitratorCrash(at=0.02, duration=0.05),
            ControlDegrade(at=0.03, duration=0.01, loss_rate=0.3,
                           extra_delay=50 * USEC),
            DataLoss(at=0.04, links=("sw0->h1",), duration=0.02,
                     model="gilbert-elliott",
                     params=(("loss_bad", 0.5), ("p_enter_bad", 0.01))),
        ), seed=7)
        rebuilt = FaultSchedule.from_jsonable(schedule.to_jsonable())
        assert rebuilt == schedule

    def test_lists_normalize_to_tuples(self):
        schedule = FaultSchedule(events=(
            LinkDown(at=0.0, links=["a->b", "b->a"]),
            DataLoss(at=0.0, params={"p": 0.02}),
        ))
        assert schedule.events[0].links == ("a->b", "b->a")
        assert schedule.events[1].params == (("p", 0.02),)

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule()
        assert FaultSchedule(events=(LinkDown(at=0.0),))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSchedule.from_jsonable(
                {"events": [{"kind": "meteor-strike", "at": 0.0}]})

    def test_touches_control_plane(self):
        assert FaultSchedule(events=(ArbitratorCrash(at=0.0),)
                             ).touches_control_plane()
        assert not FaultSchedule(events=(LinkDown(at=0.0),)
                                 ).touches_control_plane()


# ----------------------------------------------------------------------
# Loss models
# ----------------------------------------------------------------------
class TestLossModels:
    def test_bernoulli_deterministic_and_calibrated(self):
        a = BernoulliLoss(0.1, seed=5)
        b = BernoulliLoss(0.1, seed=5)
        seq = [a.drop() for _ in range(5000)]
        assert seq == [b.drop() for _ in range(5000)]
        rate = sum(seq) / len(seq)
        assert 0.07 < rate < 0.13

    def test_gilbert_elliott_is_bursty(self):
        ge = GilbertElliottLoss(p_enter_bad=0.01, p_exit_bad=0.2,
                                loss_good=0.0, loss_bad=1.0, seed=3)
        seq = [ge.drop() for _ in range(20000)]
        losses = sum(seq)
        assert losses > 0
        # Burstiness: the chance a loss follows a loss must far exceed the
        # marginal loss rate (that's the point of the model).
        pairs = sum(1 for i in range(1, len(seq)) if seq[i - 1] and seq[i])
        p_loss_given_loss = pairs / max(losses, 1)
        assert p_loss_given_loss > 3 * (losses / len(seq))

    def test_gilbert_elliott_deterministic(self):
        kw = dict(p_enter_bad=0.02, p_exit_bad=0.3, loss_good=0.001,
                  loss_bad=0.6, seed=11)
        a, b = GilbertElliottLoss(**kw), GilbertElliottLoss(**kw)
        assert [a.drop() for _ in range(2000)] == [b.drop() for _ in range(2000)]


# ----------------------------------------------------------------------
# Link down/up semantics
# ----------------------------------------------------------------------
class TestLinkOutage:
    def _one_flow(self, sim, topo, size=60 * KB):
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=size,
                    start_time=0.0)
        ReceiverAgent(sim, topo.hosts[1], flow)
        DctcpSender(sim, topo.hosts[0], flow,
                    DctcpConfig(initial_rtt=100 * USEC)).start()
        return flow

    def test_sender_rides_out_flap_via_rto(self):
        sim = Simulator()
        sim.tracer = Tracer()
        topo = StarTopology(sim, num_hosts=3, queue_factory=red_factory)
        flow = self._one_flow(sim, topo, size=800 * KB)
        link = topo.host_uplink(topo.hosts[0])
        schedule = FaultSchedule(events=(
            LinkDown(at=1 * MSEC, links=(link.name,), duration=5 * MSEC),))
        FaultInjector(sim, topo.network, schedule)
        sim.run(until=30.0)
        assert flow.completed
        assert link.down_drops > 0
        assert link.down_transitions == 1
        assert flow.timeouts > 0  # the outage was survived via RTO
        reasons = [e for e in sim.tracer.of("drop")
                   if e.detail("reason") == "link-down"]
        assert len(reasons) == link.down_drops

    def test_unflushed_outage_holds_packets(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3, queue_factory=red_factory)
        flow = self._one_flow(sim, topo, size=800 * KB)
        link = topo.host_uplink(topo.hosts[0])
        schedule = FaultSchedule(events=(
            LinkDown(at=1 * MSEC, links=(link.name,), duration=5 * MSEC,
                     flush=False),))
        FaultInjector(sim, topo.network, schedule)
        sim.run(until=30.0)
        assert flow.completed

    def test_permanent_outage_strands_flow_but_sim_keeps_going(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3, queue_factory=red_factory)
        flow = self._one_flow(sim, topo, size=800 * KB)
        link = topo.host_uplink(topo.hosts[0])
        FaultInjector(sim, topo.network, FaultSchedule(events=(
            LinkDown(at=1 * MSEC, links=(link.name,)),)))
        sim.run(until=5.0)
        assert not flow.completed
        assert link.down_drops > 0


# ----------------------------------------------------------------------
# Injector mechanics
# ----------------------------------------------------------------------
class TestInjector:
    def test_wildcard_selector_resolution(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=4, queue_factory=red_factory)
        schedule = FaultSchedule(events=(
            LinkDown(at=1 * MSEC, links=("h*->sw0",), duration=1 * MSEC),))
        inj = FaultInjector(sim, topo.network, schedule)
        sim.run(until=10 * MSEC)
        assert inj.injected["link-down"] == 4  # every host uplink
        assert inj.injected["link-up"] == 4

    def test_unmatched_selector_raises(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3, queue_factory=red_factory)
        with pytest.raises(ValueError, match="match no link"):
            FaultInjector(sim, topo.network, FaultSchedule(events=(
                LinkDown(at=0.0, links=("nope->nothing",)),)))

    def test_control_plane_faults_require_control_plane(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3, queue_factory=red_factory)
        with pytest.raises(ValueError, match="control plane"):
            FaultInjector(sim, topo.network, FaultSchedule(events=(
                ArbitratorCrash(at=0.0),)))

    def test_data_loss_window_wraps_and_unwraps(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3, queue_factory=red_factory)
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=200 * KB,
                    start_time=0.0)
        ReceiverAgent(sim, topo.hosts[1], flow)
        DctcpSender(sim, topo.hosts[0], flow,
                    DctcpConfig(initial_rtt=100 * USEC)).start()
        link = topo.host_uplink(topo.hosts[0])
        inj = FaultInjector(sim, topo.network, FaultSchedule(events=(
            DataLoss(at=0.0, links=(link.name,), duration=3 * MSEC,
                     model="bernoulli", params=(("p", 0.2),)),)))
        sim.run(until=30.0)
        assert flow.completed
        assert inj.injected_loss_drops > 0
        # The wrapper came off at window close; the link is clean again.
        assert type(link.queue) is REDQueue
        # Injected drops stayed visible in network-wide accounting.
        assert topo.network.total_drops() >= inj.injected_loss_drops


# ----------------------------------------------------------------------
# PASE degradation: the tentpole story
# ----------------------------------------------------------------------
class TestPaseDegradation:
    CRASH_KW = dict(num_hosts=8, crash_at=3 * MSEC, crash_duration=20 * MSEC)

    def test_arbitrator_crash_mid_experiment(self):
        """Whole control plane crashes mid-run and recovers: every flow
        still completes, fallback episodes and recovery latencies are
        recorded, and the FCT penalty is bounded."""
        clean = run_experiment(ExperimentSpec(
            "pase", build_scenario("intra-rack", num_hosts=8),
            0.5, num_flows=30, seed=3))
        crash = run_experiment(ExperimentSpec(
            "pase", build_scenario("intra-rack-arb-crash", **self.CRASH_KW),
            0.5, num_flows=30, seed=3))
        assert clean.faults is None
        assert crash.stats.completion_fraction == 1.0
        faults = crash.faults
        assert faults.injected == {"arbitrator-crash": 1,
                                   "arbitrator-recover": 1}
        assert faults.fallback_episodes > 0
        assert faults.flows_in_fallback > 0
        assert faults.fallback_time > 0
        assert faults.recovery_latencies  # some flows saw the recovery
        assert faults.requests_failed > 0
        # Degraded, not broken: DCTCP fallback keeps the penalty bounded.
        assert crash.afct < 10 * clean.afct

    def test_unrecovered_crash_still_completes_via_fallback(self):
        scenario = build_scenario("intra-rack-arb-crash", num_hosts=8,
                                  crash_at=3 * MSEC, crash_duration=None)
        result = run_experiment(ExperimentSpec("pase", scenario, 0.5, num_flows=25, seed=3))
        assert result.stats.completion_fraction == 1.0
        assert result.faults.fallback_episodes > 0
        # Nobody recovered — the crash was permanent.
        assert result.faults.injected == {"arbitrator-crash": 1}

    def test_single_arbitrator_crash_only_hits_its_flows(self):
        cfg = PaseConfig(arbitration_max_retries=1)  # fall back quickly
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=4,
                            queue_factory=pase_queue_factory(cfg))
        cp = PaseControlPlane(sim, topo, cfg)
        flows = []
        for i, (src, dst) in enumerate([(0, 3), (1, 3)]):
            f = Flow(flow_id=i + 1, src=topo.hosts[src].node_id,
                     dst=topo.hosts[dst].node_id, size_bytes=400 * KB,
                     start_time=0.0)
            PaseReceiver(sim, topo.hosts[dst], f)
            PaseSender(sim, topo.hosts[src], f, cp).start()
            flows.append(f)
        crashed = topo.host_uplink(topo.hosts[0]).name
        FaultInjector(sim, topo.network, FaultSchedule(events=(
            ArbitratorCrash(at=1 * MSEC, links=(crashed,)),)),
            control_plane=cp)
        sim.run(until=10.0)
        assert all(f.completed for f in flows)
        assert flows[0].fallback_episodes > 0  # its arbitrator died
        assert flows[1].fallback_episodes == 0  # untouched

    def test_link_flap_scenario(self):
        result = run_experiment(ExperimentSpec(
            "pase",
            build_scenario("intra-rack-link-flap", num_hosts=8,
                           down_at=2 * MSEC, outage=3 * MSEC),
            0.4, num_flows=20, seed=2))
        assert result.stats.completion_fraction == 1.0
        assert result.faults.link_down_drops > 0
        assert result.faults.injected == {"link-down": 1, "link-up": 1}

    def test_control_message_loss_on_tree(self):
        result = run_experiment(ExperimentSpec(
            "pase",
            build_scenario("left-right-lossy-control", hosts_per_rack=8,
                           loss_rate=0.5),
            0.4, num_flows=25, seed=2))
        assert result.stats.completion_fraction == 1.0
        assert result.faults.control_messages_lost > 0
        assert result.control_plane.messages_lost > 0

    def test_fallback_trace_events(self):
        cfg = PaseConfig(arbitration_max_retries=1)  # fall back quickly
        sim = Simulator()
        sim.tracer = Tracer()
        topo = StarTopology(sim, num_hosts=3,
                            queue_factory=pase_queue_factory(cfg))
        cp = PaseControlPlane(sim, topo, cfg)
        # Big enough to outlive the outage, so the sender sees the recovery
        # (and the "exit" trace) before finishing.
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=1500 * KB,
                    start_time=0.0)
        PaseReceiver(sim, topo.hosts[1], flow)
        PaseSender(sim, topo.hosts[0], flow, cp).start()
        FaultInjector(sim, topo.network, FaultSchedule(events=(
            ArbitratorCrash(at=1 * MSEC, duration=4 * MSEC),)),
            control_plane=cp)
        sim.run(until=10.0)
        assert flow.completed
        phases = [e.detail("phase") for e in sim.tracer.of("fallback")]
        assert "enter" in phases and "exit" in phases
        assert sim.tracer.count("fault") == 2  # crash + recover
        # Episode accounting is consistent.
        assert flow.fallback_episodes == phases.count("enter")
        assert len(flow.recovery_latencies) == phases.count("exit")
        assert flow.fallback_time >= sum(flow.recovery_latencies) - 1e-12


# ----------------------------------------------------------------------
# Determinism and the zero-overhead off path
# ----------------------------------------------------------------------
class TestDeterminism:
    def _crash_run(self):
        return run_experiment(ExperimentSpec(
            "pase",
            build_scenario("intra-rack-arb-crash", num_hosts=8,
                           crash_at=3 * MSEC, crash_duration=15 * MSEC),
            0.5, num_flows=25, seed=4))

    def test_same_schedule_and_seed_replays_identically(self):
        a, b = self._crash_run(), self._crash_run()
        assert a.events == b.events
        assert [f.fct for f in a.flows] == [f.fct for f in b.flows]
        assert a.faults.to_json_dict() == b.faults.to_json_dict()

    def test_clean_runs_unaffected_by_fault_machinery(self):
        """No schedule → no injector, fallible stays off, and repeated
        clean runs are event-for-event identical."""
        scenario = build_scenario("intra-rack", num_hosts=8)
        a = run_experiment(ExperimentSpec("pase", scenario, 0.5, num_flows=25, seed=4))
        b = run_experiment(ExperimentSpec("pase", build_scenario("intra-rack", num_hosts=8),
                           0.5, num_flows=25, seed=4))
        assert a.faults is None and b.faults is None
        assert a.events == b.events
        assert [f.fct for f in a.flows] == [f.fct for f in b.flows]
        assert a.control_plane.requests_failed == 0
        assert a.control_plane.messages_lost == 0

    def test_empty_schedule_is_a_no_op(self):
        scenario = build_scenario("intra-rack", num_hosts=8)
        clean = run_experiment(ExperimentSpec("pase", scenario, 0.5, num_flows=25, seed=4))
        empty = run_experiment(ExperimentSpec("pase", build_scenario("intra-rack", num_hosts=8),
                               0.5, num_flows=25, seed=4,
                               fault_schedule=FaultSchedule()))
        assert empty.faults is None
        assert clean.events == empty.events
        assert [f.fct for f in clean.flows] == [f.fct for f in empty.flows]


# ----------------------------------------------------------------------
# Satellite: the expiry sweep must not pin the event loop open
# ----------------------------------------------------------------------
class TestExpireSweepDrains:
    def test_sim_run_without_until_terminates(self):
        cfg = PaseConfig()
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=4,
                            queue_factory=pase_queue_factory(cfg))
        cp = PaseControlPlane(sim, topo, cfg)
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=50 * KB,
                    start_time=0.0)
        PaseReceiver(sim, topo.hosts[1], flow)
        PaseSender(sim, topo.hosts[0], flow, cp).start()
        sim.run()  # must drain on its own — no `until` safety net
        assert flow.completed
        assert cp._expire_event is None  # the sweep parked itself

    def test_sweep_rearms_for_late_flows(self):
        cfg = PaseConfig()
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=4,
                            queue_factory=pase_queue_factory(cfg))
        cp = PaseControlPlane(sim, topo, cfg)
        flows = []

        def launch(fid, src, dst, at):
            f = Flow(flow_id=fid, src=topo.hosts[src].node_id,
                     dst=topo.hosts[dst].node_id, size_bytes=50 * KB,
                     start_time=at)
            flows.append(f)

            def go():
                PaseReceiver(sim, topo.hosts[dst], f)
                PaseSender(sim, topo.hosts[src], f, cp).start()
            sim.schedule_at(at, go)

        launch(1, 0, 1, 0.0)
        # Second flow starts long after the first finished and every
        # arbitrator table emptied (the sweep must have parked by then).
        launch(2, 2, 3, 0.5)
        sim.run()
        assert all(f.completed for f in flows)
        # Silent-death expiry still works for flows after the re-arm.
        uplink = topo.host_uplink(topo.hosts[0])
        assert cp.arbitrators[uplink.name].active_flows == 0
