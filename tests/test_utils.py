"""Tests for unit conversions and validation helpers."""

import pytest

from repro.utils import (
    GBPS,
    KB,
    MB,
    MBPS,
    MSEC,
    USEC,
    bytes_to_bits,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    rate_to_pkts_per_sec,
    transmission_delay,
)


class TestUnits:
    def test_constants(self):
        assert KB == 1000
        assert MB == 1_000_000
        assert MBPS == 1e6
        assert GBPS == 1e9
        assert USEC == pytest.approx(1e-6)
        assert MSEC == pytest.approx(1e-3)

    def test_bytes_to_bits(self):
        assert bytes_to_bits(1500) == 12_000

    def test_transmission_delay(self):
        assert transmission_delay(1500, 1 * GBPS) == pytest.approx(12e-6)
        assert transmission_delay(1500, 10 * GBPS) == pytest.approx(1.2e-6)

    def test_transmission_delay_invalid_capacity(self):
        with pytest.raises(ValueError):
            transmission_delay(1500, 0)

    def test_rate_to_pkts_per_sec(self):
        # 1 Gbps of 1500 B packets ~ 83,333 pkt/s.
        assert rate_to_pkts_per_sec(1 * GBPS, 1500) == pytest.approx(83_333.33, rel=1e-4)

    def test_rate_to_pkts_invalid_size(self):
        with pytest.raises(ValueError):
            rate_to_pkts_per_sec(1 * GBPS, 0)


class TestValidation:
    def test_check_positive_passes_through(self):
        assert check_positive("x", 5) == 5

    def test_check_positive_rejects_zero_and_negative(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -1)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError, match="non-negative"):
            check_non_negative("x", -0.001)

    def test_check_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5
        assert check_in_range("x", 0, 0, 10) == 0  # inclusive bounds
        assert check_in_range("x", 10, 0, 10) == 10
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)
        with pytest.raises(ValueError):
            check_probability("p", -0.1)
