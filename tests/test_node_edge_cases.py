"""Edge-case tests for hosts, switches, and packet demux."""

import pytest

from repro.sim import Simulator, StarTopology
from repro.sim.packet import Packet, PacketKind, make_data_packet
from repro.transports import Flow, ReceiverAgent, TcpSender
from repro.utils.units import GBPS, KB, USEC


def star(num_hosts=3):
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=num_hosts)
    return sim, topo


class TestHostDemux:
    def test_stale_packet_counted_not_crashing(self):
        sim, topo = star()
        host = topo.hosts[1]
        pkt = make_data_packet(topo.hosts[0].node_id, host.node_id, 999, 0)
        host.receive(pkt, None)
        assert host.unroutable_packets == 1

    def test_ack_routed_to_sender_agent(self):
        sim, topo = star()
        got = []
        topo.hosts[0].attach_sender(
            7, type("A", (), {"on_packet": staticmethod(got.append)})())
        ack = Packet(PacketKind.ACK, topo.hosts[1].node_id,
                     topo.hosts[0].node_id, 7)
        topo.hosts[0].receive(ack, None)
        assert len(got) == 1

    def test_probe_routed_to_receiver_agent(self):
        sim, topo = star()
        got = []
        topo.hosts[1].attach_receiver(
            7, type("A", (), {"on_packet": staticmethod(got.append)})())
        probe = Packet(PacketKind.PROBE, topo.hosts[0].node_id,
                       topo.hosts[1].node_id, 7)
        topo.hosts[1].receive(probe, None)
        assert len(got) == 1

    def test_control_handler_invoked(self):
        sim, topo = star()
        got = []
        topo.hosts[1].control_handler = got.append
        ctrl = Packet(PacketKind.CONTROL, topo.hosts[0].node_id,
                      topo.hosts[1].node_id, 0)
        topo.hosts[1].receive(ctrl, None)
        assert len(got) == 1

    def test_control_without_handler_is_dropped_quietly(self):
        sim, topo = star()
        ctrl = Packet(PacketKind.CONTROL, topo.hosts[0].node_id,
                      topo.hosts[1].node_id, 0)
        topo.hosts[1].receive(ctrl, None)  # must not raise

    def test_detach_flow_idempotent(self):
        sim, topo = star()
        host = topo.hosts[0]
        host.attach_sender(1, object())
        host.detach_flow(1)
        host.detach_flow(1)  # second call is a no-op
        assert 1 not in host._senders

    def test_same_host_flow_delivered_locally(self):
        sim, topo = star()
        host = topo.hosts[0]
        got = []
        host.attach_receiver(
            5, type("A", (), {"on_packet": staticmethod(got.append)})())
        pkt = make_data_packet(host.node_id, host.node_id, 5, 0)
        host.send(pkt)
        sim.run()
        assert len(got) == 1


class TestFlowValidation:
    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Flow(flow_id=1, src=0, dst=1, size_bytes=0, start_time=0.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Flow(flow_id=1, src=0, dst=1, size_bytes=1, start_time=-1.0)

    def test_zero_deadline_rejected(self):
        with pytest.raises(ValueError):
            Flow(flow_id=1, src=0, dst=1, size_bytes=1, start_time=0.0,
                 deadline=0.0)

    def test_met_deadline_none_without_deadline(self):
        f = Flow(flow_id=1, src=0, dst=1, size_bytes=1, start_time=0.0)
        assert f.met_deadline is None

    def test_met_deadline_false_while_incomplete(self):
        f = Flow(flow_id=1, src=0, dst=1, size_bytes=1, start_time=0.0,
                 deadline=1.0)
        assert f.met_deadline is False

    def test_total_pkts_rounds_up(self):
        f = Flow(flow_id=1, src=0, dst=1, size_bytes=1501, start_time=0.0)
        assert f.total_pkts == 2

    def test_tiny_flow_one_packet(self):
        f = Flow(flow_id=1, src=0, dst=1, size_bytes=1, start_time=0.0)
        assert f.total_pkts == 1


class TestTwoSimultaneousFlowsSameHostPair:
    def test_independent_flow_demux(self):
        sim, topo = star()
        src, dst = topo.hosts[0], topo.hosts[1]
        flows = []
        for fid in (1, 2):
            f = Flow(flow_id=fid, src=src.node_id, dst=dst.node_id,
                     size_bytes=30 * KB, start_time=0.0)
            ReceiverAgent(sim, dst, f)
            TcpSender(sim, src, f).start()
            flows.append(f)
        sim.run(until=1.0)
        assert all(f.completed for f in flows)
