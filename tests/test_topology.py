"""Unit tests for network wiring, routing, and topology builders."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.packet import make_data_packet
from repro.sim.queues import DropTailQueue
from repro.sim.topology import (
    StarTopology,
    TreeTopology,
    TreeTopologyConfig,
)
from repro.utils.units import GBPS, USEC


def q():
    return DropTailQueue(100)


class TestNetwork:
    def test_connect_creates_both_directions(self):
        sim = Simulator()
        net = Network(sim)
        a, b = net.add_host("a"), net.add_host("b")
        ab, ba = net.connect(a, b, 1 * GBPS, 1 * USEC, q)
        assert net.link_between(a, b) is ab
        assert net.link_between(b, a) is ba

    def test_double_connect_rejected(self):
        sim = Simulator()
        net = Network(sim)
        a, b = net.add_host("a"), net.add_host("b")
        net.connect(a, b, 1 * GBPS, 1 * USEC, q)
        with pytest.raises(ValueError):
            net.connect(a, b, 1 * GBPS, 1 * USEC, q)

    def test_routing_through_switch(self):
        sim = Simulator()
        net = Network(sim)
        a, b = net.add_host("a"), net.add_host("b")
        sw = net.add_switch("sw")
        net.connect(a, sw, 1 * GBPS, 1 * USEC, q)
        net.connect(b, sw, 1 * GBPS, 1 * USEC, q)
        net.build_routes()
        path = net.path_links(a.node_id, b.node_id)
        assert [l.name for l in path] == ["a->sw", "sw->b"]

    def test_no_route_raises(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add_host("a")
        net.add_host("b")
        net.build_routes()
        with pytest.raises(KeyError):
            a.egress_for(99)


class TestStarTopology:
    def test_structure(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=5)
        assert len(topo.hosts) == 5
        assert len(topo.network.switches) == 1
        assert len(topo.network.links) == 2 * 5

    def test_rtt(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3, rtt=100 * USEC)
        a, b = topo.host_ids()[:2]
        assert topo.base_rtt(a, b) == pytest.approx(100 * USEC)

    def test_uplink_downlink(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=2)
        h = topo.hosts[0]
        assert topo.host_uplink(h).src is h
        assert topo.host_downlink(h).dst is h

    def test_end_to_end_delivery(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3)
        src, dst = topo.hosts[0], topo.hosts[2]
        received = []
        dst.attach_receiver(42, type("A", (), {"on_packet": staticmethod(received.append)})())
        src.send(make_data_packet(src.node_id, dst.node_id, 42, 0))
        sim.run()
        assert len(received) == 1


class TestTreeTopology:
    def test_default_structure_matches_paper(self):
        sim = Simulator()
        topo = TreeTopology(sim)  # Fig. 8 defaults
        cfg = topo.config
        assert cfg.num_hosts == 160
        assert len(topo.tors) == 4
        assert len(topo.aggs) == 2
        assert len(topo.hosts) == 160

    def test_oversubscription_ratio(self):
        # 40 hosts x 1 Gbps into a 10 Gbps uplink = the paper's 4:1.
        cfg = TreeTopologyConfig()
        ratio = cfg.hosts_per_rack * cfg.host_link_bps / cfg.fabric_link_bps
        assert ratio == pytest.approx(4.0)

    def test_core_rtt(self):
        sim = Simulator()
        topo = TreeTopology(sim, TreeTopologyConfig(hosts_per_rack=2))
        left = topo.left_hosts()[0]
        right = topo.right_hosts()[0]
        assert topo.base_rtt(left.node_id, right.node_id) == pytest.approx(300 * USEC)

    def test_intra_rack_path_avoids_fabric(self):
        sim = Simulator()
        topo = TreeTopology(sim, TreeTopologyConfig(hosts_per_rack=3))
        a, b = topo.rack_hosts(0)[:2]
        path = topo.path_links(a.node_id, b.node_id)
        assert len(path) == 2  # host->tor, tor->host

    def test_inter_rack_same_agg_path(self):
        sim = Simulator()
        topo = TreeTopology(sim, TreeTopologyConfig(hosts_per_rack=2))
        a = topo.rack_hosts(0)[0]
        b = topo.rack_hosts(1)[0]
        path = topo.path_links(a.node_id, b.node_id)
        assert len(path) == 4  # host->tor->agg->tor->host

    def test_cross_agg_path_goes_through_core(self):
        sim = Simulator()
        topo = TreeTopology(sim, TreeTopologyConfig(hosts_per_rack=2))
        a = topo.rack_hosts(0)[0]
        b = topo.rack_hosts(2)[0]
        path = topo.path_links(a.node_id, b.node_id)
        assert len(path) == 6
        assert any("core" in l.name for l in path)

    def test_left_right_partition(self):
        sim = Simulator()
        topo = TreeTopology(sim, TreeTopologyConfig(hosts_per_rack=2))
        left = {h.node_id for h in topo.left_hosts()}
        right = {h.node_id for h in topo.right_hosts()}
        assert left.isdisjoint(right)
        assert len(left) == len(right) == 4

    def test_same_rack_predicate(self):
        sim = Simulator()
        topo = TreeTopology(sim, TreeTopologyConfig(hosts_per_rack=2))
        a, b = (h.node_id for h in topo.rack_hosts(0))
        c = topo.rack_hosts(1)[0].node_id
        assert topo.same_rack(a, b)
        assert not topo.same_rack(a, c)

    def test_invalid_rack_grouping_rejected(self):
        with pytest.raises(ValueError):
            TreeTopologyConfig(num_racks=3, racks_per_agg=2)
