"""Tests for distributions, patterns, and the workload generator."""

import random

import pytest

from repro.utils.units import GBPS, KB
from repro.workloads import (
    AllToAllIntraRack,
    DeadlineDistribution,
    EmpiricalSizeDistribution,
    FixedSizeDistribution,
    IntraRackRandom,
    LeftRight,
    ManyToOne,
    UniformSizeDistribution,
    WorkloadConfig,
    generate_workload,
)


class TestDistributions:
    def test_uniform_bounds(self):
        dist = UniformSizeDistribution(2 * KB, 198 * KB)
        rng = random.Random(1)
        samples = [dist.sample(rng) for _ in range(500)]
        assert all(2 * KB <= s <= 198 * KB for s in samples)

    def test_uniform_mean(self):
        dist = UniformSizeDistribution(100, 300)
        assert dist.mean_bytes == 200
        rng = random.Random(2)
        mean = sum(dist.sample(rng) for _ in range(5000)) / 5000
        assert mean == pytest.approx(200, rel=0.05)

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            UniformSizeDistribution(100, 50)

    def test_fixed(self):
        dist = FixedSizeDistribution(1234)
        assert dist.sample(random.Random()) == 1234
        assert dist.mean_bytes == 1234

    def test_empirical_interpolates(self):
        dist = EmpiricalSizeDistribution([(1000, 0.0), (2000, 0.5), (10_000, 1.0)])
        rng = random.Random(3)
        samples = [dist.sample(rng) for _ in range(2000)]
        assert min(samples) >= 1000
        assert max(samples) <= 10_000
        below = sum(1 for s in samples if s <= 2000) / len(samples)
        assert below == pytest.approx(0.5, abs=0.05)

    def test_empirical_validation(self):
        with pytest.raises(ValueError):
            EmpiricalSizeDistribution([(100, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalSizeDistribution([(100, 0.5), (200, 0.4)])
        with pytest.raises(ValueError):
            EmpiricalSizeDistribution([(300, 0.0), (200, 1.0)])

    def test_deadlines_in_range(self):
        dist = DeadlineDistribution(5e-3, 25e-3)
        rng = random.Random(4)
        assert all(5e-3 <= dist.sample(rng) <= 25e-3 for _ in range(200))


class TestPatterns:
    def test_intra_rack_distinct_pairs(self):
        p = IntraRackRandom(list(range(10)), 1 * GBPS)
        rng = random.Random(1)
        for _ in range(200):
            s, d = p.pair(rng)
            assert s != d
            assert s in range(10) and d in range(10)

    def test_intra_rack_basis(self):
        p = IntraRackRandom(list(range(10)), 1 * GBPS)
        assert p.capacity_basis_bps == 10 * GBPS

    def test_all_to_all_round_robin_aggregators(self):
        hosts = list(range(4))
        p = AllToAllIntraRack(hosts, 1 * GBPS)
        rng = random.Random(1)
        dsts = [p.pair(rng)[1] for _ in range(8)]
        assert dsts == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_all_to_all_src_differs_from_dst(self):
        p = AllToAllIntraRack(list(range(4)), 1 * GBPS)
        rng = random.Random(2)
        assert all(s != d for s, d in (p.pair(rng) for _ in range(100)))

    def test_many_to_one(self):
        p = ManyToOne([1, 2, 3], 9, 1 * GBPS)
        rng = random.Random(1)
        for _ in range(50):
            s, d = p.pair(rng)
            assert d == 9 and s in (1, 2, 3)
        assert p.capacity_basis_bps == 1 * GBPS

    def test_many_to_one_receiver_not_sender(self):
        with pytest.raises(ValueError):
            ManyToOne([1, 2], 2, 1 * GBPS)

    def test_left_right_membership(self):
        p = LeftRight([1, 2], [8, 9], 10 * GBPS)
        rng = random.Random(1)
        for _ in range(50):
            s, d = p.pair(rng)
            assert s in (1, 2) and d in (8, 9)
        assert p.capacity_basis_bps == 10 * GBPS


class TestGenerator:
    def cfg(self, **kw):
        defaults = dict(
            pattern=IntraRackRandom(list(range(10)), 1 * GBPS),
            size_dist=UniformSizeDistribution(2 * KB, 198 * KB),
            load=0.5,
            num_flows=100,
            seed=7,
        )
        defaults.update(kw)
        return WorkloadConfig(**defaults)

    def test_flow_count(self):
        flows = generate_workload(self.cfg())
        assert len(flows) == 100

    def test_deterministic_by_seed(self):
        a = generate_workload(self.cfg())
        b = generate_workload(self.cfg())
        assert [(f.src, f.dst, f.size_bytes, f.start_time) for f in a] == \
               [(f.src, f.dst, f.size_bytes, f.start_time) for f in b]

    def test_different_seeds_differ(self):
        a = generate_workload(self.cfg(seed=1))
        b = generate_workload(self.cfg(seed=2))
        assert [f.size_bytes for f in a] != [f.size_bytes for f in b]

    def test_arrival_rate_realizes_load(self):
        cfg = self.cfg(num_flows=3000, load=0.5)
        flows = generate_workload(cfg)
        span = flows[-1].start_time - flows[0].start_time
        measured_rate = (len(flows) - 1) / span
        assert measured_rate == pytest.approx(cfg.arrival_rate, rel=0.1)

    def test_arrival_rate_formula(self):
        cfg = self.cfg(load=0.8)
        expected = 0.8 * 10 * GBPS / (100 * KB * 8)
        assert cfg.arrival_rate == pytest.approx(expected)

    def test_background_flows_first_and_flagged(self):
        flows = generate_workload(self.cfg(num_background_flows=2))
        assert len(flows) == 102
        assert flows[0].background and flows[1].background
        assert flows[0].start_time == 0.0
        assert not any(f.background for f in flows[2:])

    def test_start_times_sorted(self):
        flows = generate_workload(self.cfg())
        starts = [f.start_time for f in flows]
        assert starts == sorted(starts)

    def test_flow_ids_unique(self):
        flows = generate_workload(self.cfg(num_background_flows=3))
        ids = [f.flow_id for f in flows]
        assert len(set(ids)) == len(ids)

    def test_first_flow_id_offset(self):
        flows = generate_workload(self.cfg(), first_flow_id=500)
        assert flows[0].flow_id == 500

    def test_deadlines_attached(self):
        cfg = self.cfg(deadline_dist=DeadlineDistribution(5e-3, 25e-3))
        flows = generate_workload(cfg)
        assert all(5e-3 <= f.deadline <= 25e-3 for f in flows)

    def test_load_bounds_validated(self):
        with pytest.raises(ValueError):
            self.cfg(load=0.0)
        with pytest.raises(ValueError):
            self.cfg(load=2.0)
