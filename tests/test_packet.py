"""Unit tests for the packet model."""

from repro.sim.packet import (
    DEFAULT_MTU,
    HEADER_SIZE,
    Packet,
    PacketKind,
    make_ack_packet,
    make_data_packet,
)


def test_unique_packet_ids():
    a = make_data_packet(0, 1, 7, 0)
    b = make_data_packet(0, 1, 7, 1)
    assert a.packet_id != b.packet_id


def test_data_packet_defaults():
    p = make_data_packet(3, 4, 9, 5)
    assert p.kind == PacketKind.DATA
    assert p.size == DEFAULT_MTU
    assert p.src == 3 and p.dst == 4
    assert p.flow_id == 9 and p.seq == 5
    assert p.ecn_capable and not p.ecn_marked


def test_ack_reverses_direction():
    data = make_data_packet(3, 4, 9, 5)
    ack = make_ack_packet(data, ack_seq=6)
    assert ack.src == 4 and ack.dst == 3
    assert ack.kind == PacketKind.ACK
    assert ack.size == HEADER_SIZE
    assert ack.ack_seq == 6
    assert ack.ack_sacks == 5


def test_ack_echoes_ecn_mark():
    data = make_data_packet(0, 1, 2, 0)
    data.ecn_marked = True
    ack = make_ack_packet(data, 1)
    assert ack.ecn_echo
    assert not ack.ecn_capable  # ACKs are not themselves markable


def test_ack_carries_timing_for_rtt_sampling():
    data = make_data_packet(0, 1, 2, 0)
    data.sent_time = 1.25
    data.is_retransmit = True
    ack = make_ack_packet(data, 1)
    assert ack.sent_time == 1.25
    assert ack.is_retransmit


def test_ack_echoes_pdq_grant():
    data = make_data_packet(0, 1, 2, 0)
    data.pdq_rate = 5e8
    data.pdq_pause = True
    data.pdq_rank = 3
    ack = make_ack_packet(data, 1)
    assert ack.pdq_rate == 5e8
    assert ack.pdq_pause
    assert ack.pdq_rank == 3


def test_ack_inherits_queue_index_when_given():
    data = make_data_packet(0, 1, 2, 0, queue_index=5)
    ack = make_ack_packet(data, 1, queue_index=data.queue_index)
    assert ack.queue_index == 5


def test_header_only_classification():
    data = make_data_packet(0, 1, 2, 0)
    assert not data.is_header_only()
    ack = make_ack_packet(data, 1)
    assert ack.is_header_only()
    probe = Packet(PacketKind.PROBE, 0, 1, 2)
    assert probe.is_header_only()
