"""Tests for slowdown/bucket statistics and time-series probes."""

import math

import pytest

from repro.metrics import (
    Series,
    TimeSeriesProbe,
    bucket_stats,
    ideal_fct,
    jain_fairness,
    slowdowns,
    throughputs,
)
from repro.sim import Simulator, StarTopology
from repro.sim.packet import make_data_packet
from repro.transports import Flow
from repro.utils.units import GBPS, KB, USEC


def make_flow(fid, size, fct=None, background=False):
    f = Flow(flow_id=fid, src=0, dst=1, size_bytes=size, start_time=0.0,
             background=background)
    if fct is not None:
        f.completion_time = fct
    return f


class TestIdealFct:
    def test_formula(self):
        f = make_flow(1, 125_000)  # 1 Mbit
        assert ideal_fct(f, 1 * GBPS, 100 * USEC) == pytest.approx(
            100e-6 + 1e-3)

    def test_invalid_bottleneck(self):
        with pytest.raises(ValueError):
            ideal_fct(make_flow(1, 1000), 0, 1e-4)


class TestSlowdowns:
    def test_idle_path_slowdown_near_one(self):
        f = make_flow(1, 125_000, fct=1.1e-3)
        (s,) = slowdowns([f], 1 * GBPS, 100 * USEC)
        assert s == pytest.approx(1.0, rel=0.01)

    def test_background_and_incomplete_excluded(self):
        fs = [
            make_flow(1, 125_000, fct=2e-3),
            make_flow(2, 125_000, fct=2e-3, background=True),
            make_flow(3, 125_000),  # incomplete
        ]
        assert len(slowdowns(fs, 1 * GBPS, 100 * USEC)) == 1


class TestBuckets:
    def test_partitioning(self):
        fs = [make_flow(i, size, fct=1e-3)
              for i, size in enumerate([5 * KB, 50 * KB, 500 * KB])]
        buckets = bucket_stats(fs, [10 * KB, 100 * KB], 1 * GBPS, 100 * USEC)
        assert [b.count for b in buckets] == [1, 1, 1]
        assert buckets[-1].high_bytes == math.inf

    def test_empty_bucket_is_nan(self):
        fs = [make_flow(1, 5 * KB, fct=1e-3)]
        buckets = bucket_stats(fs, [10 * KB], 1 * GBPS, 100 * USEC)
        assert buckets[0].count == 1
        assert buckets[1].count == 0
        assert math.isnan(buckets[1].mean_fct)

    def test_labels(self):
        fs = [make_flow(1, 5 * KB, fct=1e-3)]
        buckets = bucket_stats(fs, [10 * KB], 1 * GBPS, 100 * USEC)
        assert buckets[0].label == "(0KB, 10KB]"
        assert "inf" in buckets[1].label

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            bucket_stats([], [100, 10], 1 * GBPS, 1e-4)


class TestJain:
    def test_equal_is_one(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_winner_is_one_over_n(self):
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            jain_fairness([])


class TestThroughputs:
    def test_goodput(self):
        f = make_flow(1, 125_000, fct=1e-3)  # 1 Mbit in 1 ms = 1 Gbps
        (t,) = throughputs([f])
        assert t == pytest.approx(1e9)


class TestTimeSeriesProbe:
    def test_sampling_cadence(self):
        sim = Simulator()
        probe = TimeSeriesProbe(sim, period=1e-3)
        ticks = probe.add_gauge("clock", lambda: sim.now)
        probe.start()
        sim.schedule(10e-3, sim.stop)
        sim.run()
        assert len(ticks.times) >= 10
        # Samples are evenly spaced.
        gaps = [b - a for a, b in zip(ticks.times, ticks.times[1:])]
        assert all(abs(g - 1e-3) < 1e-9 for g in gaps)

    def test_queue_depth_gauge(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=2)
        link = topo.host_uplink(topo.hosts[0])
        probe = TimeSeriesProbe(sim, period=1e-6)
        depth = probe.watch_queue_depth(link)
        probe.start()
        for i in range(10):
            link.send(make_data_packet(0, 1, 1, i))
        sim.schedule(20e-6, probe.stop)
        sim.run(until=1e-3)
        assert depth.peak > 0

    def test_busy_gauge_and_over(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=2)
        link = topo.host_uplink(topo.hosts[0])
        probe = TimeSeriesProbe(sim, period=1e-6)
        busy = probe.watch_busy(link)
        probe.start()
        for i in range(50):
            link.send(make_data_packet(0, 1, 1, i))
        sim.schedule(100e-6, probe.stop)
        sim.run(until=1e-3)
        assert busy.over(0.5) > 0.3  # mostly busy while draining 50 packets

    def test_duplicate_gauge_rejected(self):
        probe = TimeSeriesProbe(Simulator())
        probe.add_gauge("x", lambda: 0.0)
        with pytest.raises(ValueError):
            probe.add_gauge("x", lambda: 1.0)

    def test_series_stats_empty(self):
        s = Series("empty")
        assert math.isnan(s.mean)
        assert math.isnan(s.peak)
        assert math.isnan(s.over(0.5))
