"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arbitration import LinkArbitrator
from repro.metrics.stats import percentile
from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketKind
from repro.sim.queues import PFabricQueue, PriorityQueueBank, REDQueue
from repro.utils.units import GBPS


def pkt(flow=1, seq=0, priority=0.0, queue_index=0, size=1500):
    return Packet(PacketKind.DATA, 0, 1, flow, seq=seq, size=size,
                  priority=priority, queue_index=queue_index)


# ---------------------------------------------------------------------------
# Event engine
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                min_size=1, max_size=50))
def test_engine_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=10,
                                    allow_nan=False),
                          st.booleans()),
                min_size=1, max_size=40))
def test_engine_cancellation_only_skips_cancelled(items):
    sim = Simulator()
    fired = []
    events = []
    for i, (delay, cancel) in enumerate(items):
        events.append((sim.schedule(delay, fired.append, i), cancel))
    for event, cancel in events:
        if cancel:
            event.cancel()
    sim.run()
    expected = {i for i, (_, cancel) in enumerate(items) if not cancel}
    assert set(fired) == expected


# ---------------------------------------------------------------------------
# Queues
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                max_size=200))
def test_priority_bank_conservation_and_order(queue_indices):
    bank = PriorityQueueBank(num_queues=8, capacity_pkts=500)
    for i, q in enumerate(queue_indices):
        assert bank.enqueue(pkt(seq=i, queue_index=q))
    out = []
    while True:
        p = bank.dequeue()
        if p is None:
            break
        out.append(p)
    # Conservation: everything that went in comes out exactly once.
    assert sorted(p.seq for p in out) == list(range(len(queue_indices)))
    # Strict priority: the sequence of class indices is non-decreasing
    # whenever no new arrivals interleave (we drained in one go), except
    # FIFO order within a class keeps arrival order.
    classes = [p.queue_index for p in out]
    assert classes == sorted(classes)


@given(st.lists(st.floats(min_value=1, max_value=1e6, allow_nan=False),
                min_size=1, max_size=100),
       st.integers(min_value=2, max_value=20))
def test_pfabric_keeps_highest_priority_packets(priorities, capacity):
    q = PFabricQueue(capacity_pkts=capacity)
    for i, prio in enumerate(priorities):
        q.enqueue(pkt(flow=i, seq=i, priority=prio))
    kept = []
    while True:
        p = q.dequeue()
        if p is None:
            break
        kept.append(p.priority)
    assert len(kept) == min(len(priorities), capacity)
    # The kept set must be the lowest-priority-value (best) packets.
    assert sorted(kept) == sorted(priorities)[:len(kept)]
    # Dequeue yields non-decreasing priority values.
    assert kept == sorted(kept)


@given(st.integers(min_value=1, max_value=50),
       st.integers(min_value=1, max_value=60))
def test_red_marks_iff_at_threshold(threshold, arrivals):
    q = REDQueue(capacity_pkts=1000, mark_threshold_pkts=threshold)
    packets = [pkt(seq=i) for i in range(arrivals)]
    for p in packets:
        q.enqueue(p)
    for i, p in enumerate(packets):
        assert p.ecn_marked == (i >= threshold)


# ---------------------------------------------------------------------------
# Arbitration (Algorithm 1)
# ---------------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(min_value=1, max_value=10_000_000),
                          st.floats(min_value=1e6, max_value=1e9,
                                    allow_nan=False)),
                min_size=1, max_size=30))
def test_arbitration_exactly_one_top_flow_under_saturating_demand(flows):
    arb = LinkArbitrator("l", 1 * GBPS, 7, 1e6)
    results = {}
    for i, (size, _) in enumerate(flows):
        results[i] = arb.arbitrate(i, size, demand=1 * GBPS, now=0.0)
    # Re-query after all registrations for stable assignments.
    results = {i: arb.arbitrate(i, flows[i][0], demand=1 * GBPS, now=0.0)
               for i in range(len(flows))}
    top = [i for i, r in results.items() if r.queue == 0]
    assert len(top) == 1
    # And it is the flow with the smallest (size, id) key.
    best = min(range(len(flows)), key=lambda i: (flows[i][0], i))
    assert top == [best]


@given(st.lists(st.integers(min_value=1, max_value=10_000_000),
                min_size=2, max_size=30))
def test_arbitration_queue_monotone_in_priority_order(sizes):
    arb = LinkArbitrator("l", 1 * GBPS, 7, 1e6)
    for i, size in enumerate(sizes):
        arb.arbitrate(i, size, demand=1 * GBPS, now=0.0)
    results = [(size, i, arb.arbitrate(i, size, demand=1 * GBPS, now=0.0))
               for i, size in enumerate(sizes)]
    results.sort(key=lambda t: (t[0], t[1]))
    queues = [r.queue for _, _, r in results]
    assert queues == sorted(queues)  # better key -> never worse queue


@given(st.floats(min_value=1e5, max_value=1e9, allow_nan=False))
def test_arbitration_rate_never_exceeds_capacity_or_demand(demand):
    arb = LinkArbitrator("l", 1 * GBPS, 7, 1e6)
    r = arb.arbitrate(1, 1000, demand=demand, now=0.0)
    assert r.reference_rate <= 1 * GBPS + 1e-6
    assert r.reference_rate <= demand + 1e-6


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False),
                min_size=1, max_size=200),
       st.floats(min_value=0, max_value=100, allow_nan=False))
def test_percentile_bounded_and_monotone(values, p):
    data = sorted(values)
    v = percentile(data, p)
    assert data[0] - 1e-9 <= v <= data[-1] + 1e-9
    if p >= 50:
        assert v >= percentile(data, p / 2) - 1e-9


@given(st.lists(st.floats(min_value=1e-6, max_value=10, allow_nan=False),
                min_size=1, max_size=100))
def test_percentile_100_is_max_0_is_min(fcts):
    data = sorted(fcts)
    assert percentile(data, 100) == data[-1]
    assert percentile(data, 0) == data[0]


# ---------------------------------------------------------------------------
# End-to-end properties (small, bounded examples — these build networks)
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=2_000, max_value=150_000),
                min_size=1, max_size=5),
       st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_pase_always_delivers_any_flow_mix(sizes, seed_salt):
    """Whatever sizes a small burst has, PASE delivers all of it and the
    shortest flow is never the last to finish (weak SRPT property)."""
    from repro.core import PaseConfig, PaseControlPlane, PaseReceiver, PaseSender, pase_queue_factory
    from repro.sim import StarTopology
    from repro.transports import Flow

    cfg = PaseConfig()
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=len(sizes) + 1,
                        queue_factory=pase_queue_factory(cfg))
    cp = PaseControlPlane(sim, topo, cfg)
    flows = []
    for i, size in enumerate(sizes):
        f = Flow(flow_id=i + 1, src=topo.hosts[i].node_id,
                 dst=topo.hosts[-1].node_id, size_bytes=size, start_time=0.0)
        PaseReceiver(sim, topo.hosts[-1], f)
        PaseSender(sim, topo.hosts[i], f, cp).start()
        flows.append(f)
    sim.run(until=5.0)
    assert all(f.completed for f in flows)
    if len(flows) > 1:
        shortest = min(flows, key=lambda f: (f.size_bytes, f.flow_id))
        latest = max(f.completion_time for f in flows)
        # The shortest flow never finishes last (ties aside).  PASE
        # prioritises at packet granularity, so sizes that packetize to
        # the same number of MTUs (e.g. 2000 vs 2001 bytes) legitimately
        # tie — only require strict ordering when packet counts differ.
        distinct_pkts = len({f.total_pkts for f in flows})
        if distinct_pkts == len(flows):
            assert shortest.completion_time < latest or len(flows) == 1


@given(st.integers(min_value=1, max_value=300_000))
@settings(max_examples=20, deadline=None)
def test_flow_packetization_roundtrip(size_bytes):
    """total_pkts x MTU always covers the flow with < 1 MTU of slack."""
    from repro.transports import Flow
    f = Flow(flow_id=1, src=0, dst=1, size_bytes=size_bytes, start_time=0.0)
    assert f.total_pkts * f.mtu >= size_bytes
    assert (f.total_pkts - 1) * f.mtu < max(size_bytes, 1) + f.mtu
