"""Unit tests for the queue disciplines."""

import pytest

from repro.sim.packet import Packet, PacketKind
from repro.sim.queues import (
    DropTailQueue,
    PFabricQueue,
    PriorityQueueBank,
    REDQueue,
)


def pkt(flow=1, seq=0, size=1500, priority=0.0, queue_index=0):
    p = Packet(PacketKind.DATA, src=0, dst=1, flow_id=flow, seq=seq,
               size=size, priority=priority, queue_index=queue_index)
    return p


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(capacity_pkts=10)
        for i in range(3):
            assert q.enqueue(pkt(seq=i))
        assert [q.dequeue().seq for _ in range(3)] == [0, 1, 2]

    def test_drops_when_full(self):
        q = DropTailQueue(capacity_pkts=2)
        assert q.enqueue(pkt())
        assert q.enqueue(pkt())
        assert not q.enqueue(pkt())
        assert q.drops == 1
        assert len(q) == 2

    def test_byte_depth_tracks(self):
        q = DropTailQueue(capacity_pkts=10)
        q.enqueue(pkt(size=1000))
        q.enqueue(pkt(size=500))
        assert q.byte_depth == 1500
        q.dequeue()
        assert q.byte_depth == 500

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue().dequeue() is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity_pkts=0)


class TestRed:
    def test_no_mark_below_threshold(self):
        q = REDQueue(capacity_pkts=100, mark_threshold_pkts=5)
        for i in range(5):
            p = pkt(seq=i)
            q.enqueue(p)
            assert not p.ecn_marked
        assert q.marks == 0

    def test_marks_at_threshold(self):
        q = REDQueue(capacity_pkts=100, mark_threshold_pkts=3)
        packets = [pkt(seq=i) for i in range(5)]
        for p in packets:
            q.enqueue(p)
        # Arrivals seeing >= 3 queued packets get marked: seq 3 and 4.
        assert [p.ecn_marked for p in packets] == [False, False, False, True, True]
        assert q.marks == 2

    def test_non_ecn_capable_not_marked(self):
        q = REDQueue(capacity_pkts=100, mark_threshold_pkts=1)
        q.enqueue(pkt())
        p = pkt(seq=1)
        p.ecn_capable = False
        q.enqueue(p)
        assert not p.ecn_marked

    def test_still_drops_at_capacity(self):
        q = REDQueue(capacity_pkts=2, mark_threshold_pkts=1)
        q.enqueue(pkt())
        q.enqueue(pkt())
        assert not q.enqueue(pkt())
        assert q.drops == 1


class TestPriorityBank:
    def test_strict_priority_order(self):
        q = PriorityQueueBank(num_queues=4)
        q.enqueue(pkt(seq=0, queue_index=3))
        q.enqueue(pkt(seq=1, queue_index=1))
        q.enqueue(pkt(seq=2, queue_index=0))
        q.enqueue(pkt(seq=3, queue_index=1))
        order = [q.dequeue().seq for _ in range(4)]
        assert order == [2, 1, 3, 0]

    def test_fifo_within_class(self):
        q = PriorityQueueBank(num_queues=2)
        for i in range(4):
            q.enqueue(pkt(seq=i, queue_index=1))
        assert [q.dequeue().seq for _ in range(4)] == [0, 1, 2, 3]

    def test_out_of_range_index_clamped_to_lowest(self):
        q = PriorityQueueBank(num_queues=3)
        q.enqueue(pkt(seq=0, queue_index=99))
        q.enqueue(pkt(seq=1, queue_index=1))
        assert q.dequeue().seq == 1
        assert q.dequeue().seq == 0

    def test_negative_index_clamped_to_top(self):
        q = PriorityQueueBank(num_queues=3)
        q.enqueue(pkt(seq=0, queue_index=2))
        q.enqueue(pkt(seq=1, queue_index=-1))
        assert q.dequeue().seq == 1

    def test_shared_capacity(self):
        q = PriorityQueueBank(num_queues=2, capacity_pkts=3)
        assert q.enqueue(pkt(queue_index=0))
        assert q.enqueue(pkt(queue_index=1))
        assert q.enqueue(pkt(queue_index=1))
        assert not q.enqueue(pkt(queue_index=0))
        assert q.drops == 1

    def test_per_queue_capacity_mode(self):
        q = PriorityQueueBank(num_queues=2, capacity_pkts=1, per_queue_capacity=True)
        assert q.enqueue(pkt(queue_index=0))
        assert q.enqueue(pkt(queue_index=1))
        assert not q.enqueue(pkt(queue_index=0))

    def test_per_class_marking(self):
        q = PriorityQueueBank(num_queues=2, mark_threshold_pkts=2)
        marked = []
        for i in range(3):
            p = pkt(seq=i, queue_index=0)
            q.enqueue(p)
            marked.append(p.ecn_marked)
        assert marked == [False, False, True]
        # The other class is independent: its occupancy starts at zero.
        p = pkt(seq=9, queue_index=1)
        q.enqueue(p)
        assert not p.ecn_marked

    def test_class_depth(self):
        q = PriorityQueueBank(num_queues=3)
        q.enqueue(pkt(queue_index=1))
        q.enqueue(pkt(queue_index=1))
        assert q.class_depth(1) == 2
        assert q.class_depth(0) == 0

    def test_byte_depth(self):
        q = PriorityQueueBank(num_queues=2)
        q.enqueue(pkt(size=100, queue_index=0))
        q.enqueue(pkt(size=200, queue_index=1))
        assert q.byte_depth == 300
        q.dequeue()
        assert q.byte_depth == 200


class TestPFabricQueue:
    def test_dequeues_highest_priority_first(self):
        q = PFabricQueue(capacity_pkts=10)
        q.enqueue(pkt(flow=1, seq=0, priority=50_000))
        q.enqueue(pkt(flow=2, seq=0, priority=2_000))
        q.enqueue(pkt(flow=3, seq=0, priority=90_000))
        assert q.dequeue().flow_id == 2
        assert q.dequeue().flow_id == 1
        assert q.dequeue().flow_id == 3

    def test_starvation_rule_sends_earliest_of_winning_flow(self):
        q = PFabricQueue(capacity_pkts=10)
        q.enqueue(pkt(flow=1, seq=5, priority=10_000))
        q.enqueue(pkt(flow=1, seq=6, priority=2_000))  # smaller remaining
        out = q.dequeue()
        assert out.flow_id == 1 and out.seq == 5  # earliest of flow 1

    def test_drops_lowest_priority_when_full(self):
        q = PFabricQueue(capacity_pkts=2)
        q.enqueue(pkt(flow=1, priority=10_000))
        q.enqueue(pkt(flow=2, priority=90_000))
        assert q.enqueue(pkt(flow=3, priority=1_000))  # evicts flow 2
        assert q.drops == 1
        flows = {q.dequeue().flow_id, q.dequeue().flow_id}
        assert flows == {1, 3}

    def test_arrival_dropped_if_it_is_lowest(self):
        q = PFabricQueue(capacity_pkts=2)
        q.enqueue(pkt(flow=1, priority=1_000))
        q.enqueue(pkt(flow=2, priority=2_000))
        assert not q.enqueue(pkt(flow=3, priority=99_000))
        assert q.drops == 1
        assert len(q) == 2

    def test_tie_drop_prefers_latest(self):
        q = PFabricQueue(capacity_pkts=2)
        first = pkt(flow=1, seq=0, priority=5_000)
        second = pkt(flow=1, seq=1, priority=5_000)
        q.enqueue(first)
        q.enqueue(second)
        assert not q.enqueue(pkt(flow=1, seq=2, priority=5_000))
        # Older packets of the flow survived.
        assert q.dequeue().seq == 0
