"""Failure-injection tests: lossy links, reordering, pathological inputs.

These exercise the recovery machinery under conditions the clean-path tests
never reach, using the shared :class:`repro.faults.LossyQueue` wrapper
(promoted out of this file into :mod:`repro.faults.queues`; scheduled,
windowed fault injection lives in ``tests/test_faults.py``).
"""

import pytest

from repro.core import (
    PaseConfig,
    PaseControlPlane,
    PaseReceiver,
    PaseSender,
    pase_queue_factory,
)
from repro.faults import LossyQueue, lossy_queue_factory
from repro.sim import Simulator, StarTopology
from repro.sim.queues import REDQueue
from repro.transports import (
    DctcpConfig,
    DctcpSender,
    Flow,
    PdqConfig,
    PdqSender,
    ReceiverAgent,
    install_pdq_schedulers,
)
from repro.utils.units import GBPS, KB, MSEC, USEC


def lossy_factory(p):
    return lossy_queue_factory(lambda: REDQueue(225, 65), p)


class TestLossyQueueCounters:
    def test_injected_drops_count_in_delegated_counters(self):
        from repro.sim.packet import Packet, PacketKind

        q = LossyQueue(REDQueue(225, 65), 1.0, seed=1)  # drop everything
        pkt = Packet(PacketKind.DATA, 0, 1, flow_id=1, seq=0, size=1500)
        assert q.enqueue(pkt) is False
        assert q.injected_drops == 1
        assert q.drops == 1  # visible through the merged counter view
        ack = Packet(PacketKind.ACK, 1, 0, flow_id=1, seq=0, size=40)
        assert q.enqueue(ack) is True  # control packets pass through

    def test_factory_seeds_each_queue_distinctly(self):
        factory = lossy_factory(0.5)
        a, b = factory(), factory()
        seq_a = [a.model.drop() for _ in range(32)]
        seq_b = [b.model.drop() for _ in range(32)]
        assert seq_a != seq_b


class TestTcpFamilyUnderLoss:
    @pytest.mark.parametrize("loss", [0.01, 0.05])
    def test_dctcp_completes_despite_random_loss(self, loss):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3, queue_factory=lossy_factory(loss))
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=150 * KB,
                    start_time=0.0)
        ReceiverAgent(sim, topo.hosts[1], flow)
        DctcpSender(sim, topo.hosts[0], flow,
                    DctcpConfig(initial_rtt=100 * USEC)).start()
        sim.run(until=30.0)
        assert flow.completed
        assert flow.retransmissions > 0

    def test_heavy_loss_still_terminates(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3, queue_factory=lossy_factory(0.3))
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=30 * KB,
                    start_time=0.0)
        ReceiverAgent(sim, topo.hosts[1], flow)
        DctcpSender(sim, topo.hosts[0], flow,
                    DctcpConfig(initial_rtt=100 * USEC)).start()
        sim.run(until=120.0)
        assert flow.completed  # eventually, through many RTOs


class TestPaseUnderLoss:
    def test_pase_probe_recovery_under_loss(self):
        cfg = PaseConfig(min_rto_low=20 * MSEC)  # keep the test fast
        sim = Simulator()
        factory = lossy_queue_factory(pase_queue_factory(cfg), 0.03)
        topo = StarTopology(sim, num_hosts=4, queue_factory=factory)
        cp = PaseControlPlane(sim, topo, cfg)
        flows = []
        for i in range(3):
            f = Flow(flow_id=i + 1, src=topo.hosts[i].node_id,
                     dst=topo.hosts[3].node_id, size_bytes=100 * KB,
                     start_time=0.0)
            PaseReceiver(sim, topo.hosts[3], f)
            PaseSender(sim, topo.hosts[i], f, cp).start()
            flows.append(f)
        sim.run(until=30.0)
        assert all(f.completed for f in flows)
        # Low-priority flows recovered via probes rather than blind
        # retransmission storms.
        assert sum(f.probes_sent for f in flows) >= 0  # machinery exercised

    def test_arbitrator_entries_expire_after_silent_death(self):
        """A sender that vanishes without a completion message must not
        block the link forever: the expiry sweep reclaims its slot."""
        cfg = PaseConfig()
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3,
                            queue_factory=pase_queue_factory(cfg))
        cp = PaseControlPlane(sim, topo, cfg)
        dead = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=500 * KB,
                    start_time=0.0)
        # Register the dead flow directly with the uplink arbitrator and
        # never refresh it.
        uplink = topo.host_uplink(topo.hosts[0])
        cp.arbitrators[uplink.name].arbitrate(1, 500 * KB, 1 * GBPS, 0.0)
        assert cp.arbitrators[uplink.name].active_flows == 1
        sim.run(until=10 * cfg.entry_timeout)
        assert cp.arbitrators[uplink.name].active_flows == 0


class TestPdqUnderLoss:
    def test_pdq_completes_despite_loss(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3, queue_factory=lossy_factory(0.02))
        cfg = PdqConfig(initial_rtt=100 * USEC, probe_interval=100 * USEC,
                        base_rtt=100 * USEC, entry_timeout=1 * MSEC)
        install_pdq_schedulers(topo.network, cfg)
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=100 * KB,
                    start_time=0.0)
        ReceiverAgent(sim, topo.hosts[1], flow)
        PdqSender(sim, topo.hosts[0], flow, cfg).start()
        sim.run(until=30.0)
        assert flow.completed
