"""Failure-injection tests: lossy links, reordering, pathological inputs.

These exercise the recovery machinery under conditions the clean-path tests
never reach, using a Bernoulli-loss queue discipline wrapped around the
normal ones.
"""

import random

import pytest

from repro.core import (
    PaseConfig,
    PaseControlPlane,
    PaseReceiver,
    PaseSender,
    pase_queue_factory,
)
from repro.sim import Simulator, StarTopology
from repro.sim.queues import QueueDiscipline, REDQueue
from repro.transports import (
    DctcpConfig,
    DctcpSender,
    Flow,
    PdqConfig,
    PdqSender,
    ReceiverAgent,
    install_pdq_schedulers,
)
from repro.utils.units import GBPS, KB, MSEC, USEC


class LossyQueue(QueueDiscipline):
    """Wraps another discipline and drops data packets with probability p
    (ACKs/probes pass through so control loops limp along, which is the
    harder case for loss recovery)."""

    def __init__(self, inner: QueueDiscipline, p: float, seed: int = 0) -> None:
        super().__init__()
        self.inner = inner
        self.p = p
        self.rng = random.Random(seed)

    def enqueue(self, pkt) -> bool:
        if pkt.kind == 0 and self.rng.random() < self.p:  # DATA
            return self._record_drop(pkt)
        return self.inner.enqueue(pkt)

    def dequeue(self):
        return self.inner.dequeue()

    def __len__(self):
        return len(self.inner)

    @property
    def byte_depth(self):
        return self.inner.byte_depth


def lossy_factory(p, seed_box=[0]):
    def factory():
        seed_box[0] += 1
        return LossyQueue(REDQueue(225, 65), p, seed=seed_box[0])
    return factory


class TestTcpFamilyUnderLoss:
    @pytest.mark.parametrize("loss", [0.01, 0.05])
    def test_dctcp_completes_despite_random_loss(self, loss):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3, queue_factory=lossy_factory(loss))
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=150 * KB,
                    start_time=0.0)
        ReceiverAgent(sim, topo.hosts[1], flow)
        DctcpSender(sim, topo.hosts[0], flow,
                    DctcpConfig(initial_rtt=100 * USEC)).start()
        sim.run(until=30.0)
        assert flow.completed
        assert flow.retransmissions > 0

    def test_heavy_loss_still_terminates(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3, queue_factory=lossy_factory(0.3))
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=30 * KB,
                    start_time=0.0)
        ReceiverAgent(sim, topo.hosts[1], flow)
        DctcpSender(sim, topo.hosts[0], flow,
                    DctcpConfig(initial_rtt=100 * USEC)).start()
        sim.run(until=120.0)
        assert flow.completed  # eventually, through many RTOs


class TestPaseUnderLoss:
    def test_pase_probe_recovery_under_loss(self):
        cfg = PaseConfig(min_rto_low=20 * MSEC)  # keep the test fast
        sim = Simulator()
        inner_factory = pase_queue_factory(cfg)
        counter = [0]

        def factory():
            counter[0] += 1
            return LossyQueue(inner_factory(), 0.03, seed=counter[0])

        topo = StarTopology(sim, num_hosts=4, queue_factory=factory)
        cp = PaseControlPlane(sim, topo, cfg)
        flows = []
        for i in range(3):
            f = Flow(flow_id=i + 1, src=topo.hosts[i].node_id,
                     dst=topo.hosts[3].node_id, size_bytes=100 * KB,
                     start_time=0.0)
            PaseReceiver(sim, topo.hosts[3], f)
            PaseSender(sim, topo.hosts[i], f, cp).start()
            flows.append(f)
        sim.run(until=30.0)
        assert all(f.completed for f in flows)
        # Low-priority flows recovered via probes rather than blind
        # retransmission storms.
        assert sum(f.probes_sent for f in flows) >= 0  # machinery exercised

    def test_arbitrator_entries_expire_after_silent_death(self):
        """A sender that vanishes without a completion message must not
        block the link forever: the expiry sweep reclaims its slot."""
        cfg = PaseConfig()
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3,
                            queue_factory=pase_queue_factory(cfg))
        cp = PaseControlPlane(sim, topo, cfg)
        dead = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=500 * KB,
                    start_time=0.0)
        # Register the dead flow directly with the uplink arbitrator and
        # never refresh it.
        uplink = topo.host_uplink(topo.hosts[0])
        cp.arbitrators[uplink.name].arbitrate(1, 500 * KB, 1 * GBPS, 0.0)
        assert cp.arbitrators[uplink.name].active_flows == 1
        sim.run(until=10 * cfg.entry_timeout)
        assert cp.arbitrators[uplink.name].active_flows == 0


class TestPdqUnderLoss:
    def test_pdq_completes_despite_loss(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3, queue_factory=lossy_factory(0.02))
        cfg = PdqConfig(initial_rtt=100 * USEC, probe_interval=100 * USEC,
                        base_rtt=100 * USEC, entry_timeout=1 * MSEC)
        install_pdq_schedulers(topo.network, cfg)
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=100 * KB,
                    start_time=0.0)
        ReceiverAgent(sim, topo.hosts[1], flow)
        PdqSender(sim, topo.hosts[0], flow, cfg).start()
        sim.run(until=30.0)
        assert flow.completed
