"""Tests for the D3 rebuild (deadline-driven rate reservation)."""

import pytest

from repro.sim import Simulator, StarTopology
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import make_data_packet
from repro.sim.queues import DropTailQueue
from repro.transports import (
    D3Config,
    D3LinkAllocator,
    D3Sender,
    Flow,
    ReceiverAgent,
    install_d3_allocators,
)
from repro.harness import ExperimentSpec, intra_rack, run_experiment
from repro.utils.units import GBPS, KB, MSEC, USEC


def make_allocator(capacity=1 * GBPS, config=None):
    sim = Simulator()
    a, b = Node(sim, 0, "a"), Node(sim, 1, "b")
    link = Link(sim, "a->b", a, b, capacity, 10 * USEC, DropTailQueue(100))
    cfg = config or D3Config(initial_rtt=100 * USEC)
    return sim, link, D3LinkAllocator(link, cfg)


def request(flow, remaining, deadline=None):
    p = make_data_packet(0, 1, flow, 0)
    p.remaining_bytes = remaining
    p.deadline = deadline
    return p


class TestAllocator:
    def test_deadline_flow_reserves_required_rate(self):
        sim, link, alloc = make_allocator()
        # 500 KB in 10 ms needs 400 Mbps.
        p = request(1, 500 * KB, deadline=0.010)
        alloc.process(p, link)
        assert p.pdq_rate >= 400e6 * 0.99  # reservation + leftover share

    def test_best_effort_gets_leftover_share(self):
        sim, link, alloc = make_allocator()
        p = request(1, 500 * KB, deadline=None)
        alloc.process(p, link)
        # No reservation: the grant is the leftover share (full link here).
        assert 0 < p.pdq_rate <= 1 * GBPS

    def test_greedy_fcfs_starves_later_urgent_flow(self):
        """The pathology PDQ fixed: an earlier reservation wins even when a
        later flow's deadline is tighter."""
        sim, link, alloc = make_allocator()
        relaxed = request(1, 900 * KB, deadline=0.008)   # needs 900 Mbps
        alloc.process(relaxed, link)
        urgent = request(2, 900 * KB, deadline=0.0075)   # needs 960 Mbps
        alloc.process(urgent, link)
        granted_urgent = alloc.reservations[2].rate
        assert granted_urgent < 960e6 * 0.5  # cannot reserve what it needs

    def test_reservations_capped_at_capacity(self):
        sim, link, alloc = make_allocator()
        for fid in range(4):
            p = request(fid, 900 * KB, deadline=0.008)
            alloc.process(p, link)
            assert p.pdq_rate <= 1 * GBPS + 1
        total = sum(r.rate for r in alloc.reservations.values())
        assert total <= 1 * GBPS * 1.001

    def test_fin_clears_reservation(self):
        sim, link, alloc = make_allocator()
        alloc.process(request(1, 500 * KB, deadline=0.01), link)
        assert 1 in alloc.reservations
        alloc.process(request(1, 0), link)
        assert 1 not in alloc.reservations

    def test_expiry(self):
        cfg = D3Config(initial_rtt=100 * USEC, entry_timeout=1 * MSEC)
        sim, link, alloc = make_allocator(config=cfg)
        alloc.process(request(1, 500 * KB, deadline=0.01), link)
        sim.schedule(0.01, lambda: None)
        sim.run()
        alloc.process(request(2, 100 * KB, deadline=0.02), link)
        assert 1 not in alloc.reservations

    def test_expired_deadline_treated_as_best_effort(self):
        sim, link, alloc = make_allocator()
        p = request(1, 500 * KB, deadline=-1.0)
        alloc.process(p, link)
        assert alloc.reservations[1].rate == 0.0


class TestD3EndToEnd:
    def test_single_deadline_flow_meets_it(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=3, rtt=100 * USEC)
        cfg = D3Config(initial_rtt=100 * USEC, probe_interval=100 * USEC,
                       base_rtt=100 * USEC, entry_timeout=1 * MSEC)
        install_d3_allocators(topo.network, cfg)
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=200 * KB,
                    start_time=0.0, deadline=10 * MSEC)
        ReceiverAgent(sim, topo.hosts[1], flow)
        D3Sender(sim, topo.hosts[0], flow, cfg).start()
        sim.run(until=0.1)
        assert flow.met_deadline

    def test_never_pauses(self):
        sim = Simulator()
        topo = StarTopology(sim, num_hosts=4, rtt=100 * USEC)
        cfg = D3Config(initial_rtt=100 * USEC, probe_interval=100 * USEC,
                       base_rtt=100 * USEC, entry_timeout=1 * MSEC)
        install_d3_allocators(topo.network, cfg)
        flows = []
        for i in range(3):
            f = Flow(flow_id=i + 1, src=topo.hosts[i].node_id,
                     dst=topo.hosts[3].node_id, size_bytes=300 * KB,
                     start_time=0.0, deadline=30 * MSEC)
            ReceiverAgent(sim, topo.hosts[3], f)
            D3Sender(sim, topo.hosts[i], f, cfg).start()
            flows.append(f)
        sim.run(until=0.2)
        assert all(f.completed for f in flows)

    def test_harness_integration(self):
        r = run_experiment(ExperimentSpec("d3", intra_rack(num_hosts=8, with_deadlines=True),
                           0.5, num_flows=40, seed=2))
        assert r.stats.completion_fraction == 1.0
        assert r.application_throughput > 0.7

    def test_d3_beats_dctcp_on_deadlines(self):
        scn = lambda: intra_rack(num_hosts=10, with_deadlines=True)
        d3 = run_experiment(ExperimentSpec("d3", scn(), 0.7, num_flows=80, seed=4))
        dctcp = run_experiment(ExperimentSpec("dctcp", scn(), 0.7, num_flows=80, seed=4))
        assert d3.application_throughput >= dctcp.application_throughput
