"""Tests for the pFabric rebuild."""

import pytest

from repro.sim import Simulator, StarTopology
from repro.transports import (
    Flow,
    PfabricConfig,
    PfabricSender,
    ReceiverAgent,
    pfabric_queue_factory,
)
from repro.utils.units import GBPS, KB, USEC


def run_pfabric(specs, until=5.0, num_hosts=4, queue_pkts=16, init_cwnd=8.0):
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=num_hosts, link_bps=1 * GBPS,
                        rtt=100 * USEC,
                        queue_factory=pfabric_queue_factory(queue_pkts))
    cfg = PfabricConfig(initial_rtt=100 * USEC, init_cwnd=init_cwnd)
    flows = []
    for i, (s, d, size, start) in enumerate(specs):
        f = Flow(flow_id=i + 1, src=topo.hosts[s].node_id,
                 dst=topo.hosts[d].node_id, size_bytes=size, start_time=start)
        flows.append(f)

    def launch(f):
        ReceiverAgent(sim, topo.network.nodes[f.dst], f)
        PfabricSender(sim, topo.network.nodes[f.src], f, cfg).start()

    for f in flows:
        sim.schedule_at(f.start_time, launch, f)
    sim.run(until=until)
    return topo, flows


def test_priority_is_remaining_bytes():
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=2,
                        queue_factory=pfabric_queue_factory())
    f = Flow(flow_id=1, src=topo.hosts[0].node_id,
             dst=topo.hosts[1].node_id, size_bytes=30 * KB, start_time=0.0)
    sender = PfabricSender(sim, topo.hosts[0], f,
                           PfabricConfig(initial_rtt=100 * USEC))
    from repro.sim.packet import make_data_packet
    pkt = make_data_packet(0, 1, 1, 0)
    sender.decorate_packet(pkt)
    assert pkt.priority == pytest.approx(30 * KB)
    assert not pkt.ecn_capable


def test_window_capped_by_flow_size():
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=2,
                        queue_factory=pfabric_queue_factory())
    f = Flow(flow_id=1, src=topo.hosts[0].node_id,
             dst=topo.hosts[1].node_id, size_bytes=3 * KB, start_time=0.0)
    sender = PfabricSender(sim, topo.hosts[0], f,
                           PfabricConfig(initial_rtt=100 * USEC, init_cwnd=38))
    assert sender.cwnd == 2  # 3 KB = 2 packets


def test_single_flow_completes_at_line_rate():
    _, flows = run_pfabric([(0, 1, 100 * KB, 0.0)])
    f = flows[0]
    assert f.completed
    # No slow start: one BDP-window blast, ~0.9 ms.
    assert f.fct < 1.2e-3


def test_short_flow_preempts_in_network():
    _, flows = run_pfabric([
        (0, 3, 1_000 * KB, 0.0),
        (1, 3, 20 * KB, 0.001),
    ])
    short, long_flow = flows[1], flows[0]
    assert short.completed
    assert short.fct < 1e-3  # cuts straight through the long flow


def test_contention_causes_drops_but_flows_complete():
    _, flows = run_pfabric([
        (0, 3, 300 * KB, 0.0),
        (1, 3, 300 * KB, 0.0),
        (2, 3, 300 * KB, 0.0),
    ], queue_pkts=12)
    assert all(f.completed for f in flows)
    total_retx = sum(f.retransmissions for f in flows)
    assert total_retx > 0  # line-rate start into a shallow buffer drops


def test_sjf_completion_order():
    _, flows = run_pfabric([
        (0, 3, 500 * KB, 0.0),
        (1, 3, 50 * KB, 0.0),
        (2, 3, 200 * KB, 0.0),
    ])
    by_size = sorted(flows, key=lambda f: f.size_bytes)
    fcts = [f.fct for f in by_size]
    assert fcts[0] < fcts[1] < fcts[2]


def test_loss_rate_grows_with_fanin():
    topo_small, _ = run_pfabric(
        [(i, 5, 200 * KB, 0.0) for i in range(2)], num_hosts=6)
    topo_big, _ = run_pfabric(
        [(i, 5, 200 * KB, 0.0) for i in range(5)], num_hosts=6)
    assert topo_big.network.data_loss_rate() >= topo_small.network.data_loss_rate()


def test_persistence_threshold_validation():
    with pytest.raises(ValueError):
        PfabricConfig(persistence_threshold=0)


def test_probe_mode_engages_after_persistent_timeouts():
    """pFabric 4.3: after probe_mode_threshold consecutive timeouts the
    sender stops retransmitting payloads and emits header-only probes."""
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=2,
                        queue_factory=pfabric_queue_factory())
    f = Flow(flow_id=1, src=topo.hosts[0].node_id,
             dst=topo.hosts[1].node_id, size_bytes=100 * KB, start_time=0.0)
    cfg = PfabricConfig(initial_rtt=100 * USEC, probe_mode_threshold=3)
    sender = PfabricSender(sim, topo.hosts[0], f, cfg)
    sender.start()
    sim.run(until=0.2e-3)
    sent_before = f.pkts_sent
    for _ in range(3):
        sender.on_timeout_window_update()
    assert sender.probe_mode
    sender._inflight.add(sender.cum_ack)
    sender.handle_timeout()
    assert f.probes_sent == 1
    # A probe reply saying "missing" exits probe mode and requeues data.
    from repro.sim.packet import Packet, PacketKind
    reply = Packet(PacketKind.ACK, f.dst, f.src, f.flow_id, seq=sender.cum_ack)
    reply.ack_sacks = -1
    assert sender.handle_special_ack(reply)
    assert not sender.probe_mode


def test_probe_mode_threshold_validation():
    with pytest.raises(ValueError):
        PfabricConfig(persistence_threshold=3, probe_mode_threshold=2)
