"""Tests for the PDQ rebuild: link schedulers, pause/resume, preemption."""

import pytest

from repro.sim import Simulator, StarTopology
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import Packet, PacketKind, make_data_packet
from repro.sim.queues import DropTailQueue
from repro.transports import (
    Flow,
    PdqConfig,
    PdqLinkScheduler,
    PdqSender,
    ReceiverAgent,
    install_pdq_schedulers,
)
from repro.utils.units import GBPS, KB, USEC


def make_scheduler(capacity=1 * GBPS, config=None):
    sim = Simulator()
    a = Node(sim, 0, "a")
    b = Node(sim, 1, "b")
    link = Link(sim, "a->b", a, b, capacity, 10 * USEC, DropTailQueue(100))
    sched = PdqLinkScheduler(link, config or PdqConfig(initial_rtt=100 * USEC))
    return sim, link, sched


def data(flow, remaining, deadline=None):
    p = make_data_packet(0, 1, flow, 0)
    p.remaining_bytes = remaining
    p.deadline = deadline
    return p


class TestScheduler:
    def test_single_flow_gets_line_rate(self):
        _, link, sched = make_scheduler()
        p = data(1, 100 * KB)
        sched.process(p, link)
        assert p.pdq_rate == pytest.approx(1 * GBPS)
        assert not p.pdq_pause

    def test_shorter_flow_preempts(self):
        _, link, sched = make_scheduler()
        sched.process(data(1, 900 * KB), link)
        short = data(2, 300 * KB)
        sched.process(short, link)
        assert short.pdq_rate == pytest.approx(1 * GBPS)
        # The long flow is now paused (the short one needs 2.4 ms, well
        # beyond the Early Start overlap window).
        long_again = data(1, 900 * KB)
        sched.process(long_again, link)
        assert long_again.pdq_pause

    def test_early_start_overlaps_draining_head(self):
        _, link, sched = make_scheduler()
        sched.process(data(1, 10 * KB), link)  # drains in 80 us
        runner_up = data(2, 500 * KB)
        sched.process(runner_up, link)
        assert not runner_up.pdq_pause  # streams while the head drains

    def test_deadline_beats_size(self):
        _, link, sched = make_scheduler()
        sched.process(data(1, 10 * KB, deadline=None), link)
        urgent = data(2, 500 * KB, deadline=0.005)
        sched.process(urgent, link)
        assert not urgent.pdq_pause  # EDF: any deadline beats no deadline

    def test_min_rate_across_hops(self):
        _, link, sched = make_scheduler(capacity=1 * GBPS)
        p = data(1, 100 * KB)
        p.pdq_rate = 0.5 * GBPS  # stamped by an upstream hop
        sched.process(p, link)
        assert p.pdq_rate == pytest.approx(0.5 * GBPS)

    def test_fin_removes_entry(self):
        _, link, sched = make_scheduler()
        sched.process(data(1, 100 * KB), link)
        assert 1 in sched.flows
        fin = data(1, 0)
        sched.process(fin, link)
        assert 1 not in sched.flows

    def test_entry_expiry(self):
        sim, link, sched = make_scheduler(
            config=PdqConfig(initial_rtt=100 * USEC, entry_timeout=1e-3))
        sched.process(data(1, 100 * KB), link)
        sim.schedule(0.01, lambda: None)
        sim.run()
        sched.process(data(2, 50 * KB), link)
        assert 1 not in sched.flows  # expired; only flow 2 remains

    def test_rank_stamped(self):
        _, link, sched = make_scheduler()
        sched.process(data(1, 10 * KB), link)
        p = data(2, 100 * KB)
        sched.process(p, link)
        assert p.pdq_rank == 1

    def test_ack_packets_not_processed(self):
        _, link, sched = make_scheduler()
        ack = Packet(PacketKind.ACK, 0, 1, 3)
        ack.remaining_bytes = 50 * KB
        sched.process(ack, link)
        assert 3 not in sched.flows


def run_pdq_flows(specs, until=5.0, num_hosts=4):
    """specs: list of (src_idx, dst_idx, size, start)."""
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=num_hosts, link_bps=1 * GBPS,
                        rtt=100 * USEC,
                        queue_factory=lambda: DropTailQueue(100))
    cfg = PdqConfig(initial_rtt=100 * USEC, probe_interval=100 * USEC,
                    base_rtt=100 * USEC, entry_timeout=1e-3)
    install_pdq_schedulers(topo.network, cfg)
    flows = []
    for i, (s, d, size, start) in enumerate(specs):
        f = Flow(flow_id=i + 1, src=topo.hosts[s].node_id,
                 dst=topo.hosts[d].node_id, size_bytes=size, start_time=start)
        flows.append(f)

    def launch(f):
        ReceiverAgent(sim, topo.network.nodes[f.dst], f)
        PdqSender(sim, topo.network.nodes[f.src], f, cfg).start()

    for f in flows:
        sim.schedule_at(f.start_time, launch, f)
    sim.run(until=until)
    return flows


class TestPdqEndToEnd:
    def test_single_flow_completes_near_line_rate(self):
        flows = run_pdq_flows([(0, 1, 100 * KB, 0.0)])
        f = flows[0]
        assert f.completed
        # 0.8 ms serialization + ~1 RTT arbitration startup + RTT delivery.
        assert f.fct < 1.6e-3

    def test_sjf_order_under_contention(self):
        flows = run_pdq_flows([
            (0, 3, 500 * KB, 0.0),
            (1, 3, 50 * KB, 0.0),
            (2, 3, 200 * KB, 0.0),
        ])
        assert all(f.completed for f in flows)
        by_size = sorted(flows, key=lambda f: f.size_bytes)
        fcts = [f.fct for f in by_size]
        assert fcts[0] < fcts[1] < fcts[2]

    def test_short_flow_barely_delayed_by_long(self):
        flows = run_pdq_flows([
            (0, 3, 2_000 * KB, 0.0),
            (1, 3, 20 * KB, 0.002),
        ])
        short = flows[1]
        assert short.completed
        # Short flow preempts: its FCT is a few RTTs, not the 16 ms the
        # long flow needs.
        assert short.fct < 2e-3

    def test_paused_flow_probes(self):
        flows = run_pdq_flows([
            (0, 3, 1_000 * KB, 0.0),
            (1, 3, 1_000 * KB, 0.0),
        ])
        assert all(f.completed for f in flows)
        assert max(f.probes_sent for f in flows) > 3
