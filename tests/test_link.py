"""Unit tests for the link model."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import make_data_packet
from repro.sim.queues import DropTailQueue
from repro.utils.units import GBPS, USEC


class SinkNode(Node):
    def __init__(self, sim, node_id=1, name="sink"):
        super().__init__(sim, node_id, name)
        self.received = []

    def receive(self, pkt, from_link):
        self.received.append((self.sim.now, pkt))


def make_link(sim, capacity=1 * GBPS, delay=10 * USEC, queue=None):
    src = SinkNode(sim, 0, "src")
    dst = SinkNode(sim, 1, "dst")
    link = Link(sim, "src->dst", src, dst, capacity, delay,
                queue if queue is not None else DropTailQueue(100))
    return link, dst


def test_delivery_time_is_serialization_plus_propagation():
    sim = Simulator()
    link, dst = make_link(sim)
    link.send(make_data_packet(0, 1, 1, 0, size=1500))
    sim.run()
    # 1500 B at 1 Gbps = 12 us, plus 10 us propagation.
    assert dst.received[0][0] == pytest.approx(22 * USEC)


def test_back_to_back_packets_serialize():
    sim = Simulator()
    link, dst = make_link(sim)
    for i in range(3):
        link.send(make_data_packet(0, 1, 1, i, size=1500))
    sim.run()
    times = [t for t, _ in dst.received]
    assert times[1] - times[0] == pytest.approx(12 * USEC)
    assert times[2] - times[1] == pytest.approx(12 * USEC)


def test_delivery_preserves_fifo_order():
    sim = Simulator()
    link, dst = make_link(sim)
    for i in range(5):
        link.send(make_data_packet(0, 1, 1, i))
    sim.run()
    assert [p.seq for _, p in dst.received] == list(range(5))


def test_send_returns_false_on_drop():
    sim = Simulator()
    link, _ = make_link(sim, queue=DropTailQueue(capacity_pkts=1))
    # First packet starts transmitting immediately (dequeued), second sits in
    # the queue, third is dropped.
    assert link.send(make_data_packet(0, 1, 1, 0))
    assert link.send(make_data_packet(0, 1, 1, 1))
    assert not link.send(make_data_packet(0, 1, 1, 2))


def test_counters_and_utilization():
    sim = Simulator()
    link, _ = make_link(sim)
    for i in range(4):
        link.send(make_data_packet(0, 1, 1, i, size=1500))
    sim.run()
    assert link.pkts_sent == 4
    assert link.bytes_sent == 6000
    assert link.data_pkts_offered == 4
    assert 0 < link.utilization(elapsed=1.0) < 1e-3


def test_loss_rate():
    sim = Simulator()
    link, _ = make_link(sim, queue=DropTailQueue(capacity_pkts=1))
    for i in range(4):
        link.send(make_data_packet(0, 1, 1, i))
    sim.run()
    assert link.loss_rate == pytest.approx(2 / 4)


def test_processors_run_on_send():
    sim = Simulator()
    link, _ = make_link(sim)
    seen = []

    class Recorder:
        def process(self, pkt, lnk):
            seen.append((pkt.seq, lnk.name))

    link.processors.append(Recorder())
    link.send(make_data_packet(0, 1, 1, 7))
    assert seen == [(7, "src->dst")]


def test_invalid_parameters():
    sim = Simulator()
    src, dst = SinkNode(sim, 0), SinkNode(sim, 1)
    with pytest.raises(ValueError):
        Link(sim, "bad", src, dst, 0, 1e-6, DropTailQueue())
    with pytest.raises(ValueError):
        Link(sim, "bad", src, dst, 1e9, -1e-6, DropTailQueue())
