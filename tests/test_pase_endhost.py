"""Tests for PASE's end-host transport (Algorithm 2)."""

import pytest

from repro.core import (
    PaseConfig,
    PaseControlPlane,
    PaseReceiver,
    PaseSender,
    pase_queue_factory,
)
from repro.sim import Simulator, StarTopology
from repro.transports import Flow
from repro.utils.units import GBPS, KB, MSEC, USEC, bytes_to_bits


def build(num_hosts=6, config=None, rtt=100 * USEC):
    cfg = config or PaseConfig()
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=num_hosts, link_bps=1 * GBPS, rtt=rtt,
                        queue_factory=pase_queue_factory(cfg))
    cp = PaseControlPlane(sim, topo, cfg)
    return sim, topo, cp, cfg


def launch(sim, topo, cp, fid, src, dst, size, start=0.0, deadline=None,
           background=False, config=None):
    flow = Flow(flow_id=fid, src=topo.hosts[src].node_id,
                dst=topo.hosts[dst].node_id, size_bytes=size,
                start_time=start, deadline=deadline, background=background)
    sender_box = []

    def go():
        PaseReceiver(sim, topo.hosts[dst], flow)
        s = PaseSender(sim, topo.hosts[src], flow, cp, config)
        sender_box.append(s)
        s.start()

    sim.schedule_at(start, go)
    return flow, sender_box


class TestRateControl:
    def test_lone_flow_runs_in_top_queue(self):
        sim, topo, cp, cfg = build()
        flow, box = launch(sim, topo, cp, 1, 0, 1, 100 * KB)
        sim.run(until=0.05)
        assert flow.completed
        sender = box[0]
        assert sender.queue_index == 0
        # Near line rate: ~0.9 ms for 100 KB.
        assert flow.fct < 1.3e-3

    def test_reference_window_matches_rref(self):
        sim, topo, cp, cfg = build()
        flow, box = launch(sim, topo, cp, 1, 0, 1, 500 * KB)
        sim.run(until=0.3e-3)
        sender = box[0]
        expected = sender.reference_rate * sender.base_rtt / bytes_to_bits(1500)
        assert sender.cwnd == pytest.approx(max(1.0, expected), rel=0.3)

    def test_second_flow_lands_in_lower_queue(self):
        sim, topo, cp, cfg = build()
        f1, b1 = launch(sim, topo, cp, 1, 0, 2, 50 * KB)
        f2, b2 = launch(sim, topo, cp, 2, 1, 2, 800 * KB)
        sim.run(until=0.4e-3)
        assert b1[0].queue_index == 0
        assert b2[0].queue_index >= 1
        assert b2[0]._is_intermediate  # running DCTCP laws, not Rref-pinned

    def test_sjf_completion_order(self):
        sim, topo, cp, cfg = build()
        flows = []
        for i, size in enumerate([600 * KB, 60 * KB, 250 * KB]):
            f, _ = launch(sim, topo, cp, i + 1, i, 5, size)
            flows.append(f)
        sim.run(until=0.1)
        assert all(f.completed for f in flows)
        by_size = sorted(flows, key=lambda f: f.size_bytes)
        assert by_size[0].fct < by_size[1].fct < by_size[2].fct

    def test_promotion_after_completion(self):
        sim, topo, cp, cfg = build()
        f1, _ = launch(sim, topo, cp, 1, 0, 2, 50 * KB)
        f2, b2 = launch(sim, topo, cp, 2, 1, 2, 300 * KB)
        sim.run(until=0.05)
        assert f1.completed and f2.completed
        # After f1 finished, f2 must have been promoted to the top queue.
        assert b2[0].queue_index == 0

    def test_background_flow_pinned_to_bottom_queue(self):
        sim, topo, cp, cfg = build()
        flow, box = launch(sim, topo, cp, 1, 0, 1, 500 * KB, background=True)
        sim.run(until=1e-3)
        sender = box[0]
        assert sender.queue_index == cfg.background_queue
        # Background flows never contact arbitrators.
        assert cp.requests_started == 0

    def test_background_does_not_delay_short_flow(self):
        sim, topo, cp, cfg = build()
        bg, _ = launch(sim, topo, cp, 1, 0, 2, 10_000 * KB, background=True)
        short, _ = launch(sim, topo, cp, 2, 1, 2, 50 * KB, start=2e-3)
        sim.run(until=0.05)
        assert short.completed
        assert short.fct < 1.5e-3  # cuts through the background flow


class TestDeadlineCriterion:
    def test_edf_beats_sjf_order(self):
        cfg = PaseConfig(criterion="deadline")
        sim, topo, cp, _ = build(config=cfg)
        # The larger flow has the earlier deadline.
        f_big, _ = launch(sim, topo, cp, 1, 0, 2, 400 * KB, deadline=4 * MSEC)
        f_small, _ = launch(sim, topo, cp, 2, 1, 2, 100 * KB, deadline=50 * MSEC)
        sim.run(until=0.05)
        assert f_big.met_deadline
        assert f_small.completed

    def test_expired_deadline_demoted(self):
        cfg = PaseConfig(criterion="deadline")
        sim, topo, cp, _ = build(config=cfg)
        flow, box = launch(sim, topo, cp, 1, 0, 1, 400 * KB, deadline=1e-6)
        sim.run(until=1e-3)
        sender = box[0]
        assert sender._criterion_value() > 1e8  # demoted past real deadlines


class TestLossRecovery:
    def test_rto_floor_depends_on_queue(self):
        cfg = PaseConfig()
        sim, topo, cp, _ = build(config=cfg)
        flow, box = launch(sim, topo, cp, 1, 0, 1, 100 * KB)
        sim.run(until=0.2e-3)
        sender = box[0]
        sender.queue_index = 0
        assert sender.rto_value() >= cfg.min_rto_top
        sender.queue_index = 2
        assert sender.rto_value() >= cfg.min_rto_low

    def test_low_priority_timeout_sends_probe_not_data(self):
        cfg = PaseConfig()
        sim, topo, cp, _ = build(config=cfg)
        flow, box = launch(sim, topo, cp, 1, 0, 1, 100 * KB)
        sim.run(until=0.2e-3)
        sender = box[0]
        sender.queue_index = 3
        sent_before = flow.pkts_sent
        sender.handle_timeout()
        assert flow.probes_sent == 1
        assert flow.pkts_sent == sent_before  # no data retransmission

    def test_probing_disabled_falls_back_to_retransmit(self):
        cfg = PaseConfig(probing_enabled=False)
        sim, topo, cp, _ = build(config=cfg)
        flow, box = launch(sim, topo, cp, 1, 0, 1, 100 * KB)
        sim.run(until=0.2e-3)
        sender = box[0]
        sender.queue_index = 3
        sender._inflight.add(min(sender.next_new, sender.total_pkts - 1))
        sender.handle_timeout()
        assert flow.probes_sent == 0

    def test_probe_reply_missing_triggers_retransmit(self):
        cfg = PaseConfig()
        sim, topo, cp, _ = build(config=cfg)
        flow, box = launch(sim, topo, cp, 1, 0, 1, 100 * KB)
        sim.run(until=0.2e-3)
        sender = box[0]
        from repro.sim.packet import Packet, PacketKind
        reply = Packet(PacketKind.ACK, flow.dst, flow.src, flow.flow_id,
                       seq=sender.cum_ack)
        reply.ack_sacks = -1
        probed = reply.seq
        consumed = sender.handle_special_ack(reply)
        assert consumed
        # The probed packet was declared lost and handled: it is either
        # already retransmitted (back in flight), still queued, or (if an
        # ACK raced in) acknowledged.
        assert (probed in sender._inflight
                or probed in sender._retx_queue
                or sender._acked[probed])


class TestPromotionGuard:
    def test_promotion_waits_for_inflight(self):
        cfg = PaseConfig()
        sim, topo, cp, _ = build(config=cfg)
        flow, box = launch(sim, topo, cp, 1, 0, 1, 400 * KB)
        sim.run(until=0.2e-3)
        sender = box[0]
        sender.queue_index = 2
        sender._is_intermediate = True
        sender._inflight.add(0)
        from repro.core.arbitration import ArbitrationResult
        sender._half_results.clear()
        sender._on_arbitration("src", ArbitrationResult(0, 1 * GBPS))
        assert sender._pending_queue == 0
        assert sender.queue_index == 2  # unchanged while draining
        sender._inflight.clear()
        sender.send_window()
        assert sender.queue_index == 0

    def test_demotion_is_immediate(self):
        cfg = PaseConfig()
        sim, topo, cp, _ = build(config=cfg)
        flow, box = launch(sim, topo, cp, 1, 0, 1, 400 * KB)
        sim.run(until=0.2e-3)
        sender = box[0]
        sender._inflight.add(0)
        from repro.core.arbitration import ArbitrationResult
        sender._half_results.clear()
        sender._on_arbitration("src", ArbitrationResult(4, 1e6))
        assert sender.queue_index == 4
