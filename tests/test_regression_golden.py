"""Golden-value regression tests.

Seeded runs whose headline metrics are pinned to (generous) bands.  Unit
tests catch broken invariants; these catch *silent drift* — a change that
keeps everything green but quietly makes PASE 2x slower, or DCTCP
mysteriously lossless where it should mark, would trip one of these.
Bands are deliberately wide (±40-60%) so legitimate tuning doesn't thrash
them; order-of-magnitude regressions do.
"""

import pytest

from repro.harness import (
    ExperimentSpec,
    all_to_all_intra_rack,
    intra_rack,
    left_right,
    run_experiment,
)

SEED = 42


class TestSingleFlowFloors:
    """A lone 100 KB flow on an idle 1 Gbps path: every protocol should be
    within a small factor of the 0.8 ms serialization floor."""

    @pytest.mark.parametrize("protocol,limit_ms", [
        ("pase", 1.4),
        ("pfabric", 1.3),
        ("pdq", 1.8),      # pays one probe RTT at startup
        ("dctcp", 2.2),    # slow start
        ("l2dct", 2.2),
    ])
    def test_lone_flow_fct(self, protocol, limit_ms):
        from repro.sim import Simulator, StarTopology
        from repro.harness.protocols import make_binding
        from repro.transports import Flow
        from repro.utils.units import GBPS, KB, USEC

        scn = intra_rack(num_hosts=4, num_background_flows=0)
        binding = make_binding(protocol, scn)
        sim = Simulator()
        topo = scn.build_topology(sim, binding.queue_factory())
        binding.setup_network(sim, topo)
        flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                    dst=topo.hosts[1].node_id, size_bytes=100 * KB,
                    start_time=0.0)
        binding.make_receiver(sim, topo.hosts[1], flow, None)
        binding.make_sender(sim, topo.hosts[0], flow).start()
        sim.run(until=1.0)
        assert flow.completed
        assert 0.8 <= flow.fct * 1e3 <= limit_ms


class TestScenarioBands:
    def test_pase_left_right_70(self):
        r = run_experiment(ExperimentSpec("pase", left_right(), 0.7, num_flows=150, seed=SEED))
        assert 1.0 < r.afct * 1e3 < 3.5
        assert r.loss_rate < 0.005
        assert r.stats.completion_fraction == 1.0

    def test_dctcp_left_right_70(self):
        r = run_experiment(ExperimentSpec("dctcp", left_right(), 0.7, num_flows=150, seed=SEED))
        assert 1.8 < r.afct * 1e3 < 5.5

    def test_pfabric_incast_loss_band(self):
        r = run_experiment(ExperimentSpec("pfabric", all_to_all_intra_rack(num_hosts=20, fanin=16),
                           0.8, num_flows=200, seed=SEED))
        assert 0.08 < r.loss_rate < 0.35

    def test_pase_control_overhead_band(self):
        r = run_experiment(ExperimentSpec("pase", left_right(), 0.7, num_flows=150, seed=SEED))
        cp = r.control_plane
        # Messages per flow: a handful of consultations per interval over a
        # few-ms lifetime; runaway chatter or dead arbitration both fail.
        per_flow = cp.messages / 150
        assert 3 < per_flow < 300

    def test_deadline_scenario_band(self):
        r = run_experiment(ExperimentSpec("pase", intra_rack(num_hosts=20, with_deadlines=True),
                           0.7, num_flows=150, seed=SEED))
        assert 0.7 < r.application_throughput <= 1.0

    def test_event_count_stability(self):
        """Event count is a deterministic fingerprint of the whole run."""
        a = run_experiment(ExperimentSpec("pase", intra_rack(num_hosts=8), 0.5,
                           num_flows=40, seed=SEED))
        b = run_experiment(ExperimentSpec("pase", intra_rack(num_hosts=8), 0.5,
                           num_flows=40, seed=SEED))
        assert a.events == b.events
        assert a.afct == b.afct


def _fingerprint(result) -> str:
    """sha256 over every flow's (id, start, completion, size, pkts_sent):
    any change to scheduling order, timing arithmetic, or retransmission
    behavior shifts at least one completion time and flips the digest."""
    import hashlib

    lines = []
    for f in sorted(result.flows, key=lambda f: f.flow_id):
        lines.append(f"{f.flow_id}:{f.start_time!r}:{f.completion_time!r}"
                     f":{f.size_bytes}:{f.pkts_sent}\n")
    return hashlib.sha256("".join(lines).encode()).hexdigest()


class TestByteIdenticalGoldens:
    """Exact pinned fingerprints, captured before the event-engine fast
    path landed (list heap entries, pooled ``post()``, batched link
    serialization).  These prove the optimizations are *byte-identical*:
    same seeds → same event count → same per-flow FCTs, to the last bit.
    An intentional semantic change to the simulator must re-pin these.
    """

    def test_pase_intra_rack_golden(self):
        r = run_experiment(ExperimentSpec(
            "pase", intra_rack(num_hosts=8), 0.5, num_flows=40, seed=42))
        assert r.events == 80663
        assert _fingerprint(r) == ("f78233a1e5f7e1f8297349a24ff0077d"
                                   "3cf92c4a1d45cd3295161e0fa36e4dca")

    def test_dctcp_intra_rack_golden(self):
        r = run_experiment(ExperimentSpec(
            "dctcp", intra_rack(num_hosts=8), 0.6, num_flows=40, seed=7))
        assert r.events == 91645
        assert _fingerprint(r) == ("2ac54cbb0aa53700e9dfefb00356ee15"
                                   "394c00d7382bd3aef8544622a66db7d0")

    def test_pfabric_left_right_golden(self):
        r = run_experiment(ExperimentSpec(
            "pfabric", left_right(hosts_per_rack=4), 0.7,
            num_flows=60, seed=3))
        assert r.events == 168191
        assert _fingerprint(r) == ("d9d1441d4de48168288cbd7f07a9e9c5"
                                   "52e30902aa24ccca497d75682fb1d8d1")

    def test_pase_delegation_golden(self):
        """Delegation-heavy: every left-right flow crosses the core, so the
        virtual arbitrators and the periodic share rebalancer are on the
        hot path.  Pinned immediately before the sorted-table fast path and
        the epoch-batch ``decide_all`` landed, so it proves the rebalance
        path (``aggregate_demand(top_queues=1)`` → ``set_share`` →
        ``decide_all``) is byte-identical too."""
        r = run_experiment(ExperimentSpec(
            "pase", left_right(hosts_per_rack=4), 0.7,
            num_flows=80, seed=11))
        assert r.events == 185199
        assert r.stats.completion_fraction == 1.0
        assert _fingerprint(r) == ("d87f7b897b4bc74b6dc0855be8fa5e60"
                                   "db195269f045cf8d4d825375a1065341")
