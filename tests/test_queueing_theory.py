"""Validation of the simulator core against queueing theory.

A discrete-event simulator that disagrees with M/D/1 on a single link is
wrong everywhere else too.  These tests drive one link with an open-loop
Poisson packet process (no transport feedback) and compare measured delays
and utilization against the analytic results:

* M/D/1 mean wait:  W = rho / (2 * mu * (1 - rho))  (service rate mu)
* utilization:      rho = lambda / mu
* Little's law:     mean queue length = lambda * W
"""

import random

import pytest

from repro.sim import Simulator
from repro.sim.engine import Simulator as Sim
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import make_data_packet
from repro.sim.queues import DropTailQueue
from repro.utils.units import GBPS, USEC

PKT_SIZE = 1500
SERVICE_TIME = PKT_SIZE * 8 / (1 * GBPS)  # 12 us at 1 Gbps
MU = 1.0 / SERVICE_TIME


class RecordingSink(Node):
    def __init__(self, sim):
        super().__init__(sim, 1, "sink")
        self.delays = []

    def receive(self, pkt, from_link):
        self.delays.append(self.sim.now - pkt.sent_time)


def run_md1(rho: float, num_pkts: int = 40_000, seed: int = 7):
    """Open-loop Poisson arrivals into one 1 Gbps link; returns
    (per-packet delays minus propagation, link, horizon)."""
    sim = Simulator()
    src = Node(sim, 0, "src")
    sink = RecordingSink(sim)
    link = Link(sim, "l", src, sink, 1 * GBPS, 0.0, DropTailQueue(10_000_000))
    rng = random.Random(seed)
    lam = rho * MU
    t = 0.0

    def send_at(i):
        pkt = make_data_packet(0, 1, 1, i, size=PKT_SIZE)
        pkt.sent_time = sim.now
        link.send(pkt)

    for i in range(num_pkts):
        t += rng.expovariate(lam)
        sim.schedule_at(t, send_at, i)
    sim.run()
    return sink.delays, link, sim.now


@pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
def test_md1_mean_wait(rho):
    delays, _, _ = run_md1(rho)
    # Total sojourn = wait + service; compare waits against M/D/1.
    waits = [d - SERVICE_TIME for d in delays]
    measured = sum(waits) / len(waits)
    analytic = rho / (2 * MU * (1 - rho))
    assert measured == pytest.approx(analytic, rel=0.08)


@pytest.mark.parametrize("rho", [0.4, 0.9])
def test_utilization_matches_offered_load(rho):
    _, link, horizon = run_md1(rho, num_pkts=20_000)
    assert link.utilization(horizon) == pytest.approx(rho, rel=0.05)


def test_littles_law():
    rho = 0.7
    delays, link, horizon = run_md1(rho, num_pkts=40_000)
    lam = rho * MU
    mean_sojourn = sum(delays) / len(delays)
    # L = lambda * W (time-average number in system).
    expected_l = lam * mean_sojourn
    # Estimate L from the busy-time integral: for M/D/1, L = rho + lam*Wq.
    analytic_l = rho + lam * (rho / (2 * MU * (1 - rho)))
    assert expected_l == pytest.approx(analytic_l, rel=0.08)


def test_deterministic_arrivals_see_no_queueing():
    """Packets spaced wider than the service time never wait."""
    sim = Simulator()
    src = Node(sim, 0, "src")
    sink = RecordingSink(sim)
    link = Link(sim, "l", src, sink, 1 * GBPS, 0.0, DropTailQueue(1000))

    def send_at(i):
        pkt = make_data_packet(0, 1, 1, i, size=PKT_SIZE)
        pkt.sent_time = sim.now
        link.send(pkt)

    for i in range(200):
        sim.schedule_at(i * (SERVICE_TIME * 2), send_at, i)
    sim.run()
    assert all(d == pytest.approx(SERVICE_TIME) for d in sink.delays)


def test_overload_queue_grows_linearly():
    """At rho > 1 the backlog grows ~ (lambda - mu) * t."""
    sim = Simulator()
    src = Node(sim, 0, "src")
    sink = RecordingSink(sim)
    link = Link(sim, "l", src, sink, 1 * GBPS, 0.0, DropTailQueue(10_000_000))
    rng = random.Random(3)
    rho = 1.5
    lam = rho * MU
    t = 0.0
    n = 30_000
    for i in range(n):
        t += rng.expovariate(lam)
        sim.schedule_at(t, lambda i=i: link.send(
            make_data_packet(0, 1, 1, i, size=PKT_SIZE)))
    sim.run(until=t)
    expected_backlog = (lam - MU) * sim.now
    assert len(link.queue) == pytest.approx(expected_backlog, rel=0.15)
