"""Tests for the experiment harness: bindings, runner, sweeps, reports."""

import pytest

from repro.core import PaseConfig
from repro.harness import (
    ExperimentResult,
    ExperimentSpec,
    all_to_all_intra_rack,
    format_cdf,
    format_series_table,
    intra_rack,
    left_right,
    make_binding,
    run_experiment,
    series_from_results,
    sweep_loads,
)
from repro.harness import testbed as scn_testbed
from repro.harness.protocols import PROTOCOL_NAMES


SMALL = dict(load=0.5, num_flows=30, seed=2)


class TestBindings:
    def test_all_protocols_constructible(self):
        scn = intra_rack(num_hosts=4)
        for name in PROTOCOL_NAMES:
            binding = make_binding(name, scn)
            assert binding.queue_factory() is not None

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            make_binding("quic", intra_rack(num_hosts=4))

    def test_pase_variants_configure_correctly(self):
        scn = left_right(hosts_per_rack=2)
        local = make_binding("pase-local", scn)
        assert not local.config.end_to_end_arbitration
        noopt = make_binding("pase-noopt", scn)
        assert noopt.config.pruning_queues == 0
        assert not noopt.config.delegation_enabled
        noprobe = make_binding("pase-noprobe", scn)
        assert not noprobe.config.probing_enabled

    def test_deadline_scenario_sets_edf(self):
        scn = intra_rack(num_hosts=4, with_deadlines=True)
        binding = make_binding("pase", scn)
        assert binding.config.criterion == "deadline"


class TestRunExperiment:
    @pytest.mark.parametrize("protocol", ["dctcp", "d2tcp", "l2dct", "pdq",
                                          "pfabric", "pase", "pase-dctcp"])
    def test_protocol_completes_intra_rack(self, protocol):
        result = run_experiment(ExperimentSpec(protocol, intra_rack(num_hosts=6), **SMALL))
        assert result.stats.completion_fraction == 1.0
        assert result.afct > 0

    def test_left_right_runs(self):
        result = run_experiment(ExperimentSpec("pase", left_right(hosts_per_rack=2),
                                load=0.4, num_flows=20, seed=2))
        assert result.stats.completion_fraction == 1.0
        assert result.control_plane is not None
        assert result.control_plane.messages > 0

    def test_all_to_all_runs(self):
        result = run_experiment(ExperimentSpec("pfabric", all_to_all_intra_rack(num_hosts=6),
                                **SMALL))
        assert result.stats.completion_fraction == 1.0

    def test_testbed_scenario(self):
        result = run_experiment(ExperimentSpec("dctcp", scn_testbed(num_hosts=5),
                                load=0.4, num_flows=20, seed=2))
        assert result.stats.completion_fraction == 1.0

    def test_deadline_metrics_present(self):
        result = run_experiment(ExperimentSpec(
            "d2tcp", intra_rack(num_hosts=6, with_deadlines=True), **SMALL))
        assert 0.0 <= result.application_throughput <= 1.0

    def test_deterministic_given_seed(self):
        a = run_experiment(ExperimentSpec("dctcp", intra_rack(num_hosts=6), **SMALL))
        b = run_experiment(ExperimentSpec("dctcp", intra_rack(num_hosts=6), **SMALL))
        assert a.afct == b.afct
        assert a.events == b.events

    def test_seeds_change_results(self):
        a = run_experiment(ExperimentSpec("dctcp", intra_rack(num_hosts=6), load=0.5,
                           num_flows=30, seed=1))
        b = run_experiment(ExperimentSpec("dctcp", intra_rack(num_hosts=6), load=0.5,
                           num_flows=30, seed=9))
        assert a.afct != b.afct

    def test_horizon_caps_stuck_runs(self):
        result = run_experiment(ExperimentSpec("tcp", intra_rack(num_hosts=6),
                                load=0.5, num_flows=10, seed=2, horizon=0.05))
        assert result.sim_duration <= result.flows[-1].start_time + 0.05 + 1e-9


class TestSweep:
    def test_sweep_returns_per_load(self):
        results = sweep_loads("dctcp", lambda: intra_rack(num_hosts=6),
                              loads=[0.2, 0.5], num_flows=20, seed=2)
        assert set(results) == {0.2, 0.5}
        assert all(isinstance(r, ExperimentResult) for r in results.values())


class TestReport:
    def _results(self):
        return {
            "pase": {0.5: run_experiment(ExperimentSpec("pase", intra_rack(num_hosts=6), **SMALL))},
            "dctcp": {0.5: run_experiment(ExperimentSpec("dctcp", intra_rack(num_hosts=6), **SMALL))},
        }

    def test_series_extraction(self):
        series = series_from_results(self._results(), "afct", scale=1e3)
        assert set(series) == {"pase", "dctcp"}
        assert series["pase"][0.5] > 0

    def test_table_formatting(self):
        series = series_from_results(self._results(), "afct", scale=1e3)
        table = format_series_table("AFCT (ms)", [0.5], series, unit="ms")
        assert "AFCT (ms)" in table
        assert "50" in table
        assert "pase" in table and "dctcp" in table

    def test_cdf_formatting(self):
        results = self._results()
        cdfs = {name: by_load[0.5].stats.fct_cdf()
                for name, by_load in results.items()}
        text = format_cdf("FCT CDF at 50% load", cdfs)
        assert "0.50" in text and "1.00" in text
