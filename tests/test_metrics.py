"""Tests for FCT statistics, deadline accounting, and overhead metrics."""

import math

import pytest

from repro.metrics import (
    ControlPlaneCounters,
    FlowStats,
    NetworkCounters,
    afct_improvement,
    overhead_reduction,
    percentile,
)
from repro.transports import Flow


def make_flow(fid, size=10_000, start=0.0, fct=None, deadline=None,
              background=False):
    f = Flow(flow_id=fid, src=0, dst=1, size_bytes=size, start_time=start,
             deadline=deadline, background=background)
    if fct is not None:
        f.completion_time = start + fct
    return f


class TestPercentile:
    def test_endpoints(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 4.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_against_numpy(self):
        import numpy as np
        data = sorted([3.1, 0.2, 9.9, 5.5, 4.4, 1.1, 8.8])
        for p in (10, 25, 50, 75, 90, 99):
            assert percentile(data, p) == pytest.approx(
                float(np.percentile(data, p)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestFlowStats:
    def test_afct(self):
        flows = [make_flow(i, fct=ms * 1e-3) for i, ms in enumerate([1, 2, 3])]
        stats = FlowStats.from_flows(flows)
        assert stats.afct == pytest.approx(2e-3)

    def test_background_excluded(self):
        flows = [
            make_flow(1, fct=1e-3),
            make_flow(2, fct=100e-3, background=True),
        ]
        stats = FlowStats.from_flows(flows)
        assert stats.num_flows == 1
        assert stats.afct == pytest.approx(1e-3)

    def test_incomplete_tracked(self):
        flows = [make_flow(1, fct=1e-3), make_flow(2)]
        stats = FlowStats.from_flows(flows)
        assert stats.num_completed == 1
        assert stats.completion_fraction == 0.5

    def test_incomplete_deadline_counts_as_missed(self):
        flows = [
            make_flow(1, fct=1e-3, deadline=5e-3),   # met
            make_flow(2, fct=9e-3, deadline=5e-3),   # missed
            make_flow(3, deadline=5e-3),             # never completed
        ]
        stats = FlowStats.from_flows(flows)
        assert stats.application_throughput == pytest.approx(1 / 3)

    def test_no_deadline_flows_gives_nan(self):
        stats = FlowStats.from_flows([make_flow(1, fct=1e-3)])
        assert math.isnan(stats.application_throughput)

    def test_p99(self):
        flows = [make_flow(i, fct=(i + 1) * 1e-3) for i in range(100)]
        stats = FlowStats.from_flows(flows)
        assert stats.p99_fct == pytest.approx(percentile(sorted(stats.fcts), 99))

    def test_cdf_monotonic_and_complete(self):
        flows = [make_flow(i, fct=(i % 17 + 1) * 1e-3) for i in range(50)]
        cdf = FlowStats.from_flows(flows).fct_cdf()
        fracs = [fr for _, fr in cdf]
        assert fracs == sorted(fracs)
        assert fracs[-1] == 1.0
        values = [v for v, _ in cdf]
        assert values == sorted(values)

    def test_empty_stats(self):
        stats = FlowStats.from_flows([])
        assert math.isnan(stats.afct)
        assert stats.fct_cdf() == []

    def test_afct_improvement(self):
        base = FlowStats.from_flows([make_flow(1, fct=10e-3)])
        cand = FlowStats.from_flows([make_flow(1, fct=4e-3)])
        assert afct_improvement(base, cand) == pytest.approx(60.0)


class TestCounters:
    def test_network_loss_rate(self):
        c = NetworkCounters(data_pkts_offered=200, data_pkts_dropped=10,
                            duration=1.0)
        assert c.loss_rate == pytest.approx(0.05)

    def test_zero_offered(self):
        c = NetworkCounters(0, 0, 1.0)
        assert c.loss_rate == 0.0

    def test_messages_per_sec(self):
        c = ControlPlaneCounters(messages=500, messages_by_level={},
                                 requests=100, prunes=5, duration=0.5)
        assert c.messages_per_sec == pytest.approx(1000.0)

    def test_overhead_reduction(self):
        assert overhead_reduction(1000, 400) == pytest.approx(60.0)
        assert overhead_reduction(0, 10) == 0.0
