"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(0.3, fired.append, "c")
    sim.schedule(0.1, fired.append, "a")
    sim.schedule(0.2, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(0.5, fired.append, name)
    sim.run()
    assert fired == list("abcde")


def test_now_tracks_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(0.25, lambda: seen.append(sim.now))
    sim.schedule(0.75, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [0.25, 0.75]


def test_zero_delay_runs_after_current_instant_fifo():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(0.0, fired.append, "inner")

    sim.schedule(0.1, outer)
    sim.schedule(0.1, fired.append, "sibling")
    sim.run()
    assert fired == ["outer", "sibling", "inner"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.now == 1.0
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(0.1, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.events_processed == 0


def test_cancel_one_of_many():
    sim = Simulator()
    fired = []
    keep = sim.schedule(0.1, fired.append, "keep")
    drop = sim.schedule(0.2, fired.append, "drop")
    drop.cancel()
    sim.run()
    assert fired == ["keep"]
    assert keep.time == 0.1


def test_run_until_stops_at_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(0.1, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=1.0)
    assert fired == ["early"]
    assert sim.now == 1.0  # clock advanced to the horizon
    sim.run(until=10.0)
    assert fired == ["early", "late"]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(0.1 * (i + 1), fired.append, i)
    processed = sim.run(max_events=3)
    assert processed == 3
    assert fired == [0, 1, 2]


def test_stop_inside_callback():
    sim = Simulator()
    fired = []

    def stopper():
        fired.append(2)
        sim.stop()

    sim.schedule(0.1, fired.append, 1)
    sim.schedule(0.2, stopper)
    sim.schedule(0.3, fired.append, 3)
    sim.run()
    assert fired == [1, 2]


def test_events_processed_accumulates_across_runs():
    sim = Simulator()
    sim.schedule(0.1, lambda: None)
    sim.schedule(0.2, lambda: None)
    sim.run(until=0.15)
    assert sim.events_processed == 1
    sim.run()
    assert sim.events_processed == 2


def test_peek_time_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(0.1, lambda: None)
    sim.schedule(0.2, lambda: None)
    first.cancel()
    assert sim.peek_time() == 0.2


def test_peek_time_empty_heap():
    sim = Simulator()
    assert sim.peek_time() is None


def test_callbacks_can_schedule_recursively():
    sim = Simulator()
    ticks = []

    def tick(n):
        ticks.append(sim.now)
        if n > 0:
            sim.schedule(1.0, tick, n - 1)

    sim.schedule(0.0, tick, 4)
    sim.run()
    assert ticks == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_determinism_same_schedule_same_order():
    def run_once():
        sim = Simulator()
        out = []
        delays = [0.5, 0.1, 0.5, 0.3, 0.1]
        for i, d in enumerate(delays):
            sim.schedule(d, out.append, i)
        sim.run()
        return out

    assert run_once() == run_once()


# ---------------------------------------------------------------------------
# post() / post_at(): the pooled fire-and-forget fast path
# ---------------------------------------------------------------------------

def test_post_fires_like_schedule():
    sim = Simulator()
    fired = []
    sim.post(0.2, fired.append, "b")
    sim.post(0.1, fired.append, "a")
    sim.post_at(0.3, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.events_processed == 3


def test_post_returns_no_handle():
    sim = Simulator()
    assert sim.post(0.1, lambda: None) is None
    assert sim.post_at(0.2, lambda: None) is None


def test_post_rejects_past_times():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.post(-0.1, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.post_at(0.5, lambda: None)


def test_post_and_schedule_share_tiebreak_order():
    """Mixing the two APIs at one timestamp fires in call order — they draw
    from the same sequence counter, so replacing schedule() with post() on
    a hot path can never perturb determinism."""
    sim = Simulator()
    fired = []
    sim.schedule(0.5, fired.append, "s1")
    sim.post(0.5, fired.append, "p1")
    sim.schedule(0.5, fired.append, "s2")
    sim.post(0.5, fired.append, "p2")
    sim.run()
    assert fired == ["s1", "p1", "s2", "p2"]


def test_post_entries_are_recycled():
    """Fired post() entries return to the free list and are reused, so a
    long chain keeps the heap at depth 1 with no entry churn."""
    sim = Simulator()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < 100:
            sim.post(0.01, tick)

    sim.post(0.0, tick)
    sim.run()
    assert count[0] == 100
    # Two entries ping-pong through the free list (the in-flight entry is
    # only recycled after its callback returns), regardless of chain length.
    assert len(sim._free) == 2
    assert sim.pending_events == 0


def test_stale_cancel_after_fire_cannot_kill_recycled_entry():
    """schedule() entries are never pooled: cancelling a handle after its
    event fired must not affect any later event (the lazy-cancel trap a
    shared free list would create)."""
    sim = Simulator()
    fired = []
    handle = sim.schedule(0.1, fired.append, "first")
    sim.run()
    assert fired == ["first"]
    # Recycle-heavy traffic after the fire...
    for _ in range(5):
        sim.post(0.1, fired.append, "posted")
    # ...then a stale cancel on the already-fired handle.
    handle.cancel()
    sim.run()
    assert fired == ["first"] + ["posted"] * 5


def test_event_handle_reports_cancelled_state():
    sim = Simulator()
    event = sim.schedule(0.1, lambda: None)
    assert not event.cancelled
    event.cancel()
    assert event.cancelled
    event.cancel()  # idempotent
    sim.run()
    assert sim.events_processed == 0


def test_run_until_with_post_only_heap():
    sim = Simulator()
    fired = []
    sim.post(0.1, fired.append, "early")
    sim.post(5.0, fired.append, "late")
    sim.run(until=1.0)
    assert fired == ["early"]
    assert sim.now == 1.0
    sim.run()
    assert fired == ["early", "late"]


def test_max_events_counts_fired_not_cancelled():
    sim = Simulator()
    fired = []
    keep1 = sim.schedule(0.1, fired.append, 1)
    drop = sim.schedule(0.2, fired.append, 2)
    sim.schedule(0.3, fired.append, 3)
    sim.schedule(0.4, fired.append, 4)
    drop.cancel()
    processed = sim.run(max_events=2)
    assert processed == 2
    assert fired == [1, 3]
    assert keep1.time == 0.1
