"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(0.3, fired.append, "c")
    sim.schedule(0.1, fired.append, "a")
    sim.schedule(0.2, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(0.5, fired.append, name)
    sim.run()
    assert fired == list("abcde")


def test_now_tracks_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(0.25, lambda: seen.append(sim.now))
    sim.schedule(0.75, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [0.25, 0.75]


def test_zero_delay_runs_after_current_instant_fifo():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(0.0, fired.append, "inner")

    sim.schedule(0.1, outer)
    sim.schedule(0.1, fired.append, "sibling")
    sim.run()
    assert fired == ["outer", "sibling", "inner"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.now == 1.0
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(0.1, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.events_processed == 0


def test_cancel_one_of_many():
    sim = Simulator()
    fired = []
    keep = sim.schedule(0.1, fired.append, "keep")
    drop = sim.schedule(0.2, fired.append, "drop")
    drop.cancel()
    sim.run()
    assert fired == ["keep"]
    assert keep.time == 0.1


def test_run_until_stops_at_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(0.1, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=1.0)
    assert fired == ["early"]
    assert sim.now == 1.0  # clock advanced to the horizon
    sim.run(until=10.0)
    assert fired == ["early", "late"]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(0.1 * (i + 1), fired.append, i)
    processed = sim.run(max_events=3)
    assert processed == 3
    assert fired == [0, 1, 2]


def test_stop_inside_callback():
    sim = Simulator()
    fired = []

    def stopper():
        fired.append(2)
        sim.stop()

    sim.schedule(0.1, fired.append, 1)
    sim.schedule(0.2, stopper)
    sim.schedule(0.3, fired.append, 3)
    sim.run()
    assert fired == [1, 2]


def test_events_processed_accumulates_across_runs():
    sim = Simulator()
    sim.schedule(0.1, lambda: None)
    sim.schedule(0.2, lambda: None)
    sim.run(until=0.15)
    assert sim.events_processed == 1
    sim.run()
    assert sim.events_processed == 2


def test_peek_time_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(0.1, lambda: None)
    sim.schedule(0.2, lambda: None)
    first.cancel()
    assert sim.peek_time() == 0.2


def test_peek_time_empty_heap():
    sim = Simulator()
    assert sim.peek_time() is None


def test_callbacks_can_schedule_recursively():
    sim = Simulator()
    ticks = []

    def tick(n):
        ticks.append(sim.now)
        if n > 0:
            sim.schedule(1.0, tick, n - 1)

    sim.schedule(0.0, tick, 4)
    sim.run()
    assert ticks == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_determinism_same_schedule_same_order():
    def run_once():
        sim = Simulator()
        out = []
        delays = [0.5, 0.1, 0.5, 0.3, 0.1]
        for i, d in enumerate(delays):
            sim.schedule(d, out.append, i)
        sim.run()
        return out

    assert run_once() == run_once()
