"""Tests for ECMP multipath routing on the dual-homed tree."""

import pytest

from repro.core import PaseConfig, PaseControlPlane
from repro.sim import Simulator, TreeTopology, TreeTopologyConfig
from repro.transports import DctcpConfig, DctcpSender, Flow, ReceiverAgent
from repro.utils.units import GBPS, KB, USEC


def tree(multipath=True, hosts_per_rack=2):
    sim = Simulator()
    topo = TreeTopology(sim, TreeTopologyConfig(
        hosts_per_rack=hosts_per_rack, multipath=multipath))
    return sim, topo


class TestEcmpRouting:
    def test_multipath_routes_populated(self):
        sim, topo = tree()
        src_tor = topo.tors[0]
        dst = topo.rack_hosts(2)[0]  # other side of the core
        assert dst.node_id in src_tor.multipath_routes
        assert len(src_tor.multipath_routes[dst.node_id]) == 2

    def test_singlepath_has_no_ecmp_sets(self):
        sim, topo = tree(multipath=False)
        for switch in topo.network.switches:
            assert not switch.multipath_routes

    def test_flow_pinned_to_one_path(self):
        sim, topo = tree()
        src_tor = topo.tors[0]
        dst = topo.rack_hosts(2)[0]
        picks = {src_tor.egress_for(dst.node_id, flow_id=77).name
                 for _ in range(20)}
        assert len(picks) == 1  # same flow always hashes the same way

    def test_flows_spread_across_paths(self):
        sim, topo = tree()
        src_tor = topo.tors[0]
        dst = topo.rack_hosts(2)[0]
        picks = {src_tor.egress_for(dst.node_id, flow_id=f).name
                 for f in range(50)}
        assert len(picks) == 2  # both uplinks get used

    def test_paths_are_loop_free_and_terminate(self):
        sim, topo = tree()
        src = topo.rack_hosts(0)[0]
        dst = topo.rack_hosts(3)[1]
        for flow_id in range(10):
            path = topo.network.path_links(src.node_id, dst.node_id, flow_id)
            assert path[0].src is src
            assert path[-1].dst is dst
            assert len(path) <= 6

    def test_end_to_end_transfer_over_ecmp(self):
        sim, topo = tree()
        flows = []
        for i in range(6):
            src = topo.rack_hosts(0)[i % 2]
            dst = topo.rack_hosts(2)[i % 2]
            f = Flow(flow_id=100 + i, src=src.node_id, dst=dst.node_id,
                     size_bytes=50 * KB, start_time=0.0)
            ReceiverAgent(sim, dst, f)
            DctcpSender(sim, src, f, DctcpConfig(initial_rtt=300 * USEC)).start()
            flows.append(f)
        sim.run(until=1.0)
        assert all(f.completed for f in flows)

    def test_pase_rejects_multipath(self):
        sim, topo = tree()
        with pytest.raises(ValueError, match="single-path"):
            PaseControlPlane(sim, topo, PaseConfig())

    def test_host_uplinks_unaffected(self):
        sim, topo = tree()
        host = topo.rack_hosts(0)[0]
        assert not host.multipath_routes  # hosts still have one uplink
