"""Tests for the Table 2 switch profiles and PASE's portability onto them."""

import pytest

from repro.core import PaseConfig
from repro.harness import ExperimentSpec, intra_rack, run_experiment
from repro.sim.switch_models import TABLE2, get_switch_model, pase_config_for


class TestTable2:
    def test_all_five_models_present(self):
        assert set(TABLE2) == {"BCM56820", "G8264", "7050S", "EX3300", "S4810"}

    def test_queue_counts_match_paper(self):
        assert TABLE2["BCM56820"].num_queues == 10
        assert TABLE2["G8264"].num_queues == 8
        assert TABLE2["7050S"].num_queues == 7
        assert TABLE2["EX3300"].num_queues == 5
        assert TABLE2["S4810"].num_queues == 3

    def test_only_ex3300_lacks_ecn(self):
        no_ecn = [m.name for m in TABLE2.values() if not m.ecn]
        assert no_ecn == ["EX3300"]

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="unknown switch model"):
            get_switch_model("nexus9000")


class TestConfigDerivation:
    def test_queue_count_carries_over(self):
        cfg = pase_config_for(get_switch_model("S4810"))
        assert cfg.num_queues == 3
        assert cfg.num_data_queues == 2

    def test_no_ecn_disables_marking(self):
        cfg = pase_config_for(get_switch_model("EX3300"))
        # Threshold == capacity means the instantaneous queue can never
        # strictly exceed it at enqueue time: no CE marks.
        assert cfg.mark_threshold_pkts == cfg.queue_capacity_pkts

    def test_base_config_respected(self):
        base = PaseConfig(arbitration_interval=150e-6)
        cfg = pase_config_for(get_switch_model("G8264"), base)
        assert cfg.arbitration_interval == 150e-6
        assert cfg.num_queues == 8


class TestPaseOnEveryTable2Switch:
    @pytest.mark.parametrize("model_name", sorted(TABLE2))
    def test_pase_runs_and_completes(self, model_name):
        cfg = pase_config_for(get_switch_model(model_name))
        result = run_experiment(ExperimentSpec(
            "pase", intra_rack(num_hosts=8), 0.6, num_flows=50, seed=6,
            pase_config=cfg))
        assert result.stats.completion_fraction == 1.0

    def test_more_queues_never_hurt_much(self):
        """BCM56820 (10 queues) should be at least as good as S4810 (3)."""
        results = {}
        for name in ("BCM56820", "S4810"):
            cfg = pase_config_for(get_switch_model(name))
            results[name] = run_experiment(ExperimentSpec(
                "pase", intra_rack(num_hosts=10), 0.8, num_flows=80, seed=6,
                pase_config=cfg))
        assert results["BCM56820"].afct <= 1.1 * results["S4810"].afct
