"""Tests for repro.runner: specs, cache, executor isolation, parity.

The executor tests inject module-level work functions (sleepers, crashers,
flaky workers) instead of real simulations, so timeout/retry/crash paths
run in well under a second each.  The cache and parity tests use real—but
tiny—experiments.
"""

import json
import os
import pickle
import time
from dataclasses import replace

import pytest

from repro.harness import ExperimentSpec, intra_rack, run_experiment, sweep_loads
from repro.harness.experiment import ExperimentResult
from repro.harness.replication import replicate
from repro.runner import (
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    ProcessPoolRunner,
    ResultCache,
    RunDescriptor,
    RunnerConfig,
    ScenarioSpec,
    SweepFailure,
    SweepSpec,
    results_by_load,
    run_sweep,
)

TINY = ScenarioSpec("intra-rack", {"num_hosts": 5})


def tiny_descriptor(load=0.3, seed=1, num_flows=12, **kwargs):
    return RunDescriptor(protocol="dctcp", scenario=TINY, load=load,
                         seed=seed, num_flows=num_flows, **kwargs)


# -- injected work functions (module-level so fork children see them) ------

def _echo_work(descriptor):
    return ("ran", descriptor.load, descriptor.seed)


def _slow_work(descriptor):
    time.sleep(30.0)
    return "never"


def _always_raises(descriptor):
    raise ValueError(f"boom at load {descriptor.load}")


def _raise_on_half(descriptor):
    if descriptor.load == 0.5:
        raise ValueError("boom at 0.5")
    return descriptor.load


def _hard_crash(descriptor):
    os._exit(17)  # simulates a segfault: no exception, no report


class TestSpec:
    def test_expand_is_protocol_major_grid(self):
        spec = SweepSpec(protocols=("a", "b"), scenario=TINY,
                         loads=(0.1, 0.9), seeds=(1, 2))
        labels = [(d.protocol, d.load, d.seed) for d in spec.expand()]
        assert labels == [("a", 0.1, 1), ("a", 0.1, 2), ("a", 0.9, 1),
                          ("a", 0.9, 2), ("b", 0.1, 1), ("b", 0.1, 2),
                          ("b", 0.9, 1), ("b", 0.9, 2)]

    def test_content_hash_stable_and_sensitive(self):
        d = tiny_descriptor()
        assert d.content_hash() == tiny_descriptor().content_hash()
        assert d.content_hash() != tiny_descriptor(load=0.4).content_hash()
        assert d.content_hash() != tiny_descriptor(seed=2).content_hash()
        assert (d.content_hash() !=
                tiny_descriptor(num_flows=13).content_hash())

    def test_factory_scenarios_are_uncacheable(self):
        d = RunDescriptor(protocol="dctcp",
                          scenario=lambda: intra_rack(num_hosts=5), load=0.3)
        assert not d.cacheable
        assert d.content_hash() is None

    def test_spec_scenario_builds(self):
        scenario = TINY.build()
        assert scenario.name == "intra_rack[5]"

    def test_unknown_scenario_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            ScenarioSpec("no-such-scenario").build()


class TestExecutorIsolation:
    def test_parallel_echo_preserves_order(self):
        runner = ProcessPoolRunner(jobs=2, work_fn=_echo_work)
        descriptors = [tiny_descriptor(load=l) for l in (0.1, 0.3, 0.5, 0.7)]
        records = runner.run(descriptors)
        assert [r.status for r in records] == [STATUS_OK] * 4
        assert [r.result[1] for r in records] == [0.1, 0.3, 0.5, 0.7]
        assert all(r.peak_rss_kb and r.peak_rss_kb > 0 for r in records)

    def test_timeout_fires_and_sweep_completes(self):
        runner = ProcessPoolRunner(jobs=2, timeout=0.5, work_fn=_slow_work)
        records = runner.run([tiny_descriptor(load=0.1)])
        assert records[0].status == STATUS_TIMEOUT
        assert "budget" in records[0].error

    def test_raising_worker_is_retried_then_failed_without_aborting(self):
        runner = ProcessPoolRunner(jobs=2, retries=1, backoff=0.01,
                                   work_fn=_raise_on_half)
        records = runner.run([tiny_descriptor(load=l)
                              for l in (0.1, 0.5, 0.9)])
        by_load = {r.descriptor.load: r for r in records}
        assert by_load[0.5].status == STATUS_FAILED
        assert by_load[0.5].attempts == 2  # original + one retry
        assert "boom at 0.5" in by_load[0.5].error
        # The sick point did not take down its neighbors.
        assert by_load[0.1].status == STATUS_OK
        assert by_load[0.9].status == STATUS_OK

    def test_hard_crash_is_isolated(self):
        runner = ProcessPoolRunner(jobs=2, work_fn=_hard_crash)
        records = runner.run([tiny_descriptor(load=0.1),
                              tiny_descriptor(load=0.3)])
        assert all(r.status == STATUS_CRASHED for r in records)
        assert "exit code 17" in records[0].error

    def test_serial_mode_retries_and_records(self):
        runner = ProcessPoolRunner(jobs=1, retries=2, backoff=0.0,
                                   work_fn=_always_raises)
        records = runner.run([tiny_descriptor()])
        assert records[0].status == STATUS_FAILED
        assert records[0].attempts == 3


class TestCache:
    def test_hit_after_store_and_invalidation_on_config_change(self, tmp_path):
        config = RunnerConfig(jobs=1, cache_dir=tmp_path)
        d = [tiny_descriptor(load=0.3)]
        first = run_sweep(d, config)
        assert first.stats.cache_misses == 1 and first.stats.cached == 0
        again = run_sweep(d, config)
        assert again.stats.cached == 1 and again.stats.cache_hits == 1
        assert (pickle.dumps(again.records[0].result.stats) ==
                pickle.dumps(first.records[0].result.stats))
        # Any config change (here: flow count) must miss.
        changed = run_sweep([tiny_descriptor(load=0.3, num_flows=13)], config)
        assert changed.stats.cached == 0

    def test_code_version_salt_invalidates(self, tmp_path):
        d = [tiny_descriptor(load=0.3)]
        run_sweep(d, RunnerConfig(cache_dir=tmp_path, cache_salt="v1"))
        stale = run_sweep(d, RunnerConfig(cache_dir=tmp_path, cache_salt="v2"))
        assert stale.stats.cached == 0
        warm = run_sweep(d, RunnerConfig(cache_dir=tmp_path, cache_salt="v1"))
        assert warm.stats.cached == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        h = tiny_descriptor().content_hash()
        path = cache.path_for(h)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(h) is None
        assert not path.exists()
        assert cache.misses == 1

    def test_no_cache_mode_always_computes(self, tmp_path):
        config = RunnerConfig(use_cache=False, cache_dir=tmp_path)
        run_sweep([tiny_descriptor()], config)
        out = run_sweep([tiny_descriptor()], config)
        assert out.stats.cached == 0


class TestParity:
    """--jobs 1 through the runner must equal the legacy serial path."""

    def test_serial_runner_matches_direct_run(self):
        outcome = run_sweep([tiny_descriptor(load=0.4)],
                            RunnerConfig(jobs=1, use_cache=False))
        direct = run_experiment(ExperimentSpec("dctcp", intra_rack(num_hosts=5), 0.4,
                                num_flows=12, seed=1))
        got = outcome.records[0].result
        # wallclock is machine timing, never deterministic; everything else
        # must be byte-identical.
        assert (pickle.dumps(replace(got, wallclock=0.0)) ==
                pickle.dumps(replace(direct.detach(), wallclock=0.0)))

    def test_parallel_results_equal_serial(self):
        loads = (0.2, 0.4)
        serial = sweep_loads("dctcp", lambda: intra_rack(num_hosts=5),
                             loads, num_flows=12, seed=3)
        parallel = sweep_loads("dctcp", lambda: intra_rack(num_hosts=5),
                               loads, num_flows=12, seed=3, jobs=2)
        for load in loads:
            assert (pickle.dumps(serial[load].stats) ==
                    pickle.dumps(parallel[load].stats))
            assert serial[load].events == parallel[load].events

    def test_sweep_loads_raises_on_worker_failure(self):
        with pytest.raises(SweepFailure):
            sweep_loads("no-such-protocol", lambda: intra_rack(num_hosts=5),
                        (0.3,), num_flows=12, jobs=2)

    def test_replicate_parallel_matches_serial(self):
        serial = replicate("dctcp", lambda: intra_rack(num_hosts=5), 0.4,
                           seeds=(1, 2), num_flows=12)
        parallel = replicate("dctcp", lambda: intra_rack(num_hosts=5), 0.4,
                             seeds=(1, 2), num_flows=12, jobs=2)
        assert serial.values == parallel.values


class TestDetach:
    def test_detach_strips_foreign_flow_attributes(self):
        result = run_experiment(ExperimentSpec("dctcp", intra_rack(num_hosts=5), 0.3,
                                num_flows=12, seed=1))
        # Simulate a transport stashing a simulator back-reference.
        result.flows[0].agent = object()
        detached = result.detach()
        assert not hasattr(detached.flows[0], "agent")
        pickle.dumps(detached)  # must not drag the stash along
        assert detached.flows[0].fct == result.flows[0].fct

    def test_experiment_result_round_trips_pickle(self):
        result = run_experiment(ExperimentSpec("pase", intra_rack(num_hosts=5), 0.3,
                                num_flows=12, seed=1))
        clone = pickle.loads(pickle.dumps(result.detach()))
        assert isinstance(clone, ExperimentResult)
        assert clone.afct == result.afct
        assert clone.control_plane.messages == result.control_plane.messages


class TestJsonlOutput:
    def test_records_and_summary_lines(self, tmp_path):
        out = tmp_path / "sweep.jsonl"
        config = RunnerConfig(jobs=1, use_cache=False, jsonl_path=out)
        run_sweep([tiny_descriptor(load=0.3)], config)
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert [l["type"] for l in lines] == ["run", "sweep_summary"]
        run_line, summary = lines
        assert run_line["status"] == "ok"
        assert run_line["wallclock_s"] > 0
        assert run_line["peak_rss_kb"] > 0
        assert run_line["metrics"]["afct_s"] > 0
        assert run_line["metrics"]["application_throughput"] is None  # NaN
        assert summary["total"] == 1 and summary["failed"] == 0
        assert summary["cache_misses"] == 1

    def test_failed_point_lands_in_ledger_not_exception(self, tmp_path):
        out = tmp_path / "sweep.jsonl"
        outcome = run_sweep(
            [tiny_descriptor(load=0.1), tiny_descriptor(load=0.5)],
            RunnerConfig(jobs=2, use_cache=False, jsonl_path=out),
            work_fn=_raise_on_half,
        )
        assert outcome.stats.failed == 1
        rows = [json.loads(l) for l in out.read_text().splitlines()]
        statuses = {r["load"]: r["status"] for r in rows if r["type"] == "run"}
        assert statuses == {0.1: "ok", 0.5: "failed"}


class TestRunnerCli:
    def test_end_to_end_sweep(self, tmp_path, capsys):
        from repro.runner.cli import main

        out = tmp_path / "out.jsonl"
        rc = main(["--protocols", "dctcp", "--scenario", "intra-rack",
                   "--hosts", "5", "--loads", "0.2,0.4", "--flows", "12",
                   "--jobs", "2", "--no-cache", "--output", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "2 runs" in printed and "0 failed" in printed
        assert "afct" in printed
        rows = [json.loads(l) for l in out.read_text().splitlines()]
        assert sum(1 for r in rows if r["type"] == "run") == 2

    def test_cache_round_trip_via_cli(self, tmp_path, capsys):
        from repro.runner.cli import main

        argv = ["--protocols", "dctcp", "--scenario", "intra-rack",
                "--hosts", "5", "--loads", "0.3", "--flows", "12",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "1 cached" in capsys.readouterr().out

    def test_unknown_protocol_is_an_error(self, capsys):
        from repro.runner.cli import main

        rc = main(["--protocols", "quic", "--scenario", "intra-rack",
                   "--loads", "0.3"])
        assert rc == 2


class TestHarnessCliJobs:
    def test_multi_load_sweep_prints_each_summary(self, capsys):
        from repro.harness.cli import main

        rc = main(["--protocol", "dctcp", "--scenario", "intra-rack",
                   "--load", "0.2,0.4", "--flows", "12", "--hosts", "5",
                   "--jobs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("AFCT") == 2
        assert "2 runs" in out
