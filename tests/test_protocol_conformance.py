"""Protocol conformance matrix: every transport must satisfy the same
basic contract across edge-case flow sizes and conditions.

These are deliberately uniform: a new protocol added to the registry gets
this safety net for free.
"""

import pytest

from repro.harness.protocols import PROTOCOL_NAMES, make_binding
from repro.harness.scenarios import intra_rack
from repro.sim import Simulator
from repro.transports import Flow
from repro.utils.units import KB, MB

#: Protocols exercised by the matrix (the ablation variants share code
#: paths with "pase" and are covered elsewhere).
MATRIX = ("tcp", "dctcp", "d2tcp", "l2dct", "pdq", "d3", "pfabric",
          "pase", "pase-dctcp")

EDGE_SIZES = (1, 100, 1500, 1501, 10 * KB, 1 * MB)


def run_one_flow(protocol, size_bytes, deadline=None, until=30.0):
    scn = intra_rack(num_hosts=4, num_background_flows=0)
    binding = make_binding(protocol, scn)
    sim = Simulator()
    topo = scn.build_topology(sim, binding.queue_factory())
    binding.setup_network(sim, topo)
    flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                dst=topo.hosts[1].node_id, size_bytes=size_bytes,
                start_time=0.0, deadline=deadline)
    binding.make_receiver(sim, topo.hosts[1], flow, None)
    binding.make_sender(sim, topo.hosts[0], flow).start()
    sim.run(until=until)
    return flow


@pytest.mark.parametrize("protocol", MATRIX)
@pytest.mark.parametrize("size", EDGE_SIZES)
def test_every_protocol_delivers_every_size(protocol, size):
    flow = run_one_flow(protocol, size)
    assert flow.completed, f"{protocol} failed to deliver {size} bytes"
    assert flow.fct > 0


@pytest.mark.parametrize("protocol", MATRIX)
def test_fct_monotone_in_size(protocol):
    small = run_one_flow(protocol, 10 * KB)
    large = run_one_flow(protocol, 1 * MB)
    assert large.fct > small.fct


@pytest.mark.parametrize("protocol", MATRIX)
def test_no_spurious_retransmissions_on_idle_path(protocol):
    flow = run_one_flow(protocol, 100 * KB)
    assert flow.retransmissions == 0
    assert flow.timeouts == 0


@pytest.mark.parametrize("protocol", ("pase", "pdq", "d3", "d2tcp"))
def test_deadline_flows_work_everywhere(protocol):
    flow = run_one_flow(protocol, 100 * KB, deadline=0.05)
    assert flow.completed
    assert flow.met_deadline
