"""Integration tests: end-to-end invariants across modules and the paper's
qualitative claims at small scale."""

import pytest

from repro.core import PaseConfig
from repro.harness import (
    ExperimentSpec,
    all_to_all_intra_rack,
    intra_rack,
    left_right,
    run_experiment,
)


MEDIUM = dict(num_flows=80, seed=11)


class TestCrossProtocolInvariants:
    @pytest.mark.parametrize("protocol", ["dctcp", "pase", "pfabric", "pdq"])
    def test_moderate_load_all_complete(self, protocol):
        result = run_experiment(ExperimentSpec(protocol, all_to_all_intra_rack(num_hosts=8),
                                load=0.6, **MEDIUM))
        assert result.stats.completion_fraction == 1.0

    @pytest.mark.parametrize("protocol", ["dctcp", "pase", "pfabric"])
    def test_afct_grows_with_load(self, protocol):
        low = run_experiment(ExperimentSpec(protocol, all_to_all_intra_rack(num_hosts=8),
                             load=0.2, **MEDIUM))
        high = run_experiment(ExperimentSpec(protocol, all_to_all_intra_rack(num_hosts=8),
                              load=0.9, **MEDIUM))
        assert high.afct > low.afct

    def test_fct_at_least_serialization_floor(self):
        result = run_experiment(ExperimentSpec("pase", intra_rack(num_hosts=8), load=0.3,
                                **MEDIUM))
        for flow in result.flows:
            if flow.background or not flow.completed:
                continue
            floor = flow.size_bytes * 8 / 1e9  # bottleneck serialization
            assert flow.fct >= floor * 0.99


class TestPaperClaims:
    """Small-scale versions of the headline comparisons."""

    def test_pase_beats_dctcp_and_l2dct_left_right(self):
        """Fig. 9a: PASE improves AFCT substantially over deployment-friendly
        protocols in the inter-rack scenario."""
        scn = lambda: left_right(hosts_per_rack=3)
        pase = run_experiment(ExperimentSpec("pase", scn(), load=0.6, **MEDIUM))
        dctcp = run_experiment(ExperimentSpec("dctcp", scn(), load=0.6, **MEDIUM))
        l2dct = run_experiment(ExperimentSpec("l2dct", scn(), load=0.6, **MEDIUM))
        assert pase.afct < 0.6 * dctcp.afct   # >= 40% better
        assert pase.afct < 0.8 * l2dct.afct   # clearly better

    def test_pase_beats_pfabric_tail_at_high_load(self):
        """Fig. 10a: at high load PASE's 99th percentile beats pFabric's."""
        scn = lambda: left_right(hosts_per_rack=3)
        pase = run_experiment(ExperimentSpec("pase", scn(), load=0.9, num_flows=150, seed=11))
        pfab = run_experiment(ExperimentSpec("pfabric", scn(), load=0.9, num_flows=150, seed=11))
        assert pase.p99_fct < pfab.p99_fct

    def test_pfabric_loss_grows_with_load(self):
        """Fig. 4: pFabric's loss rate rises sharply with load."""
        low = run_experiment(ExperimentSpec("pfabric", all_to_all_intra_rack(num_hosts=8),
                             load=0.2, **MEDIUM))
        high = run_experiment(ExperimentSpec("pfabric", all_to_all_intra_rack(num_hosts=8),
                              load=0.9, **MEDIUM))
        assert high.loss_rate > low.loss_rate
        assert high.loss_rate > 0.01

    def test_pase_loss_stays_negligible(self):
        """PASE's guided rate control keeps drops near zero where pFabric
        pays heavily."""
        result = run_experiment(ExperimentSpec("pase", all_to_all_intra_rack(num_hosts=8),
                                load=0.9, **MEDIUM))
        assert result.loss_rate < 0.01

    def test_pdq_advantage_shrinks_with_load(self):
        """Fig. 2: PDQ's AFCT advantage over DCTCP erodes as load grows."""
        scn = lambda: intra_rack(num_hosts=8)
        ratios = {}
        for load in (0.2, 0.9):
            pdq = run_experiment(ExperimentSpec("pdq", scn(), load=load, **MEDIUM))
            dctcp = run_experiment(ExperimentSpec("dctcp", scn(), load=load, **MEDIUM))
            ratios[load] = pdq.afct / dctcp.afct
        assert ratios[0.9] > ratios[0.2]

    def test_reference_rate_helps(self):
        """Fig. 13a: PASE beats PASE-DCTCP (no Rref seeding)."""
        scn = lambda: intra_rack(num_hosts=8)
        pase = run_experiment(ExperimentSpec("pase", scn(), load=0.7, **MEDIUM))
        nodref = run_experiment(ExperimentSpec("pase-dctcp", scn(), load=0.7, **MEDIUM))
        assert pase.afct < nodref.afct

    def test_end_to_end_arbitration_helps_inter_rack(self):
        """Fig. 12a: local-only arbitration misses fabric contention.  The
        effect needs the paper's geometry, high load, and shared port
        buffers (where un-arbitrated flows overrun the fabric); see the
        fig12a benchmark for the per-class-buffer regime."""
        from repro.core import PaseConfig
        cfg = PaseConfig(shared_queue_capacity=True)
        scn = lambda: left_right(hosts_per_rack=40)
        e2e = run_experiment(ExperimentSpec("pase", scn(), load=0.9, num_flows=250, seed=11,
                             pase_config=cfg))
        local = run_experiment(ExperimentSpec("pase-local", scn(), load=0.9, num_flows=250,
                               seed=11, pase_config=cfg))
        assert e2e.p99_fct < local.p99_fct
        assert e2e.network.data_pkts_dropped <= local.network.data_pkts_dropped

    def test_optimizations_cut_control_messages(self):
        """Fig. 11b: pruning + delegation reduce arbitration overhead."""
        scn = lambda: left_right(hosts_per_rack=3)
        opt = run_experiment(ExperimentSpec("pase", scn(), load=0.7, **MEDIUM))
        noopt = run_experiment(ExperimentSpec("pase-noopt", scn(), load=0.7, **MEDIUM))
        assert opt.control_plane.messages < noopt.control_plane.messages

    def test_deadline_scenario_pase_leads(self):
        """Fig. 9c: PASE meets at least as many deadlines as D2TCP/DCTCP."""
        scn = lambda: intra_rack(num_hosts=10, with_deadlines=True)
        pase = run_experiment(ExperimentSpec("pase", scn(), load=0.8, **MEDIUM))
        d2tcp = run_experiment(ExperimentSpec("d2tcp", scn(), load=0.8, **MEDIUM))
        dctcp = run_experiment(ExperimentSpec("dctcp", scn(), load=0.8, **MEDIUM))
        assert pase.application_throughput >= d2tcp.application_throughput
        assert pase.application_throughput >= dctcp.application_throughput


class TestConservation:
    def test_no_flow_delivers_more_than_sent(self):
        result = run_experiment(ExperimentSpec("pfabric", all_to_all_intra_rack(num_hosts=8),
                                load=0.8, **MEDIUM))
        for flow in result.flows:
            if flow.background:
                continue
            assert flow.pkts_sent >= flow.total_pkts

    def test_drops_only_with_shallow_buffers(self):
        deep = run_experiment(ExperimentSpec("dctcp", all_to_all_intra_rack(num_hosts=8),
                              load=0.7, **MEDIUM))
        assert deep.network.data_pkts_dropped == 0
