"""Tests for Algorithm 1 (per-link arbitration)."""

import pytest

from repro.core.arbitration import (
    ArbitrationResult,
    LinkArbitrator,
    VirtualLinkArbitrator,
)
from repro.utils.units import GBPS, KB, MBPS

C = 1 * GBPS
BASE = 40 * MBPS  # one packet per RTT at these scales


def arb(num_queues=7):
    return LinkArbitrator("test", C, num_queues, BASE)


class TestAlgorithmOne:
    def test_single_flow_top_queue_full_demand(self):
        a = arb()
        r = a.arbitrate(1, criterion_value=100 * KB, demand=C, now=0.0)
        assert r.queue == 0
        assert r.reference_rate == pytest.approx(C)

    def test_small_demand_gets_demand(self):
        a = arb()
        r = a.arbitrate(1, 10 * KB, demand=50 * MBPS, now=0.0)
        assert r.queue == 0
        assert r.reference_rate == pytest.approx(50 * MBPS)

    def test_second_flow_gets_spare_capacity(self):
        a = arb()
        a.arbitrate(1, 10 * KB, demand=300 * MBPS, now=0.0)
        r = a.arbitrate(2, 50 * KB, demand=C, now=0.0)
        # ADH = 300 Mbps < C: still top queue, rate = spare 700 Mbps.
        assert r.queue == 0
        assert r.reference_rate == pytest.approx(C - 300 * MBPS)

    def test_saturated_link_pushes_to_second_queue(self):
        a = arb()
        a.arbitrate(1, 10 * KB, demand=C, now=0.0)
        r = a.arbitrate(2, 50 * KB, demand=C, now=0.0)
        assert r.queue == 1
        assert r.reference_rate == pytest.approx(BASE)

    def test_each_intermediate_queue_holds_one_c_of_demand(self):
        a = arb()
        queues = []
        for i in range(5):
            r = a.arbitrate(i, (i + 1) * 10 * KB, demand=C, now=0.0)
            queues.append(r.queue)
        assert queues == [0, 1, 2, 3, 4]

    def test_clamped_to_lowest_queue(self):
        a = arb(num_queues=3)
        for i in range(6):
            r = a.arbitrate(i, (i + 1) * 10 * KB, demand=C, now=0.0)
        assert r.queue == 2  # lowest data queue

    def test_sjf_order_is_by_criterion_not_arrival(self):
        a = arb()
        a.arbitrate(1, 500 * KB, demand=C, now=0.0)  # long flow first
        r_short = a.arbitrate(2, 5 * KB, demand=C, now=0.0)
        assert r_short.queue == 0  # shortest wins regardless of arrival
        r_long = a.arbitrate(1, 500 * KB, demand=C, now=0.0)
        assert r_long.queue == 1

    def test_update_resorts(self):
        a = arb()
        a.arbitrate(1, 500 * KB, demand=C, now=0.0)
        a.arbitrate(2, 100 * KB, demand=C, now=0.0)
        # Flow 1 drains below flow 2's remaining size.
        r = a.arbitrate(1, 50 * KB, demand=C, now=1.0)
        assert r.queue == 0

    def test_tie_broken_by_flow_id(self):
        a = arb()
        r1 = a.arbitrate(1, 100 * KB, demand=C, now=0.0)
        r2 = a.arbitrate(2, 100 * KB, demand=C, now=0.0)
        assert r1.queue == 0
        assert r2.queue == 1

    def test_remove(self):
        a = arb()
        a.arbitrate(1, 10 * KB, demand=C, now=0.0)
        a.arbitrate(2, 50 * KB, demand=C, now=0.0)
        a.remove(1)
        r = a.arbitrate(2, 50 * KB, demand=C, now=0.0)
        assert r.queue == 0

    def test_remove_unknown_is_noop(self):
        a = arb()
        a.remove(99)  # must not raise

    def test_expire(self):
        a = arb()
        a.arbitrate(1, 10 * KB, demand=C, now=0.0)
        a.arbitrate(2, 50 * KB, demand=C, now=5.0)
        dropped = a.expire(now=10.0, timeout=6.0)
        assert dropped == [1]
        assert 1 not in a.flows and 2 in a.flows

    def test_expire_skips_scan_when_fresh(self):
        a = arb()
        a.arbitrate(1, 10 * KB, demand=C, now=0.0)
        a.arbitrate(2, 50 * KB, demand=C, now=1.0)
        assert a.expire(now=2.0, timeout=6.0) == []
        assert a.active_flows == 2
        assert a.expire(now=0.0, timeout=0.0) == []  # empty-safe bound

    def test_expire_returns_every_stale_id(self):
        a = arb()
        for fid in (3, 1, 2):
            a.arbitrate(fid, fid * 10 * KB, demand=C, now=0.0)
        a.arbitrate(9, 90 * KB, demand=C, now=5.0)
        dropped = a.expire(now=10.0, timeout=6.0)
        assert sorted(dropped) == [1, 2, 3]
        assert list(a.flows) == [9]

    def test_clear_resets_table(self):
        a = arb()
        a.arbitrate(1, 10 * KB, demand=C, now=0.0)
        a.arbitrate(2, 50 * KB, demand=C, now=0.0)
        a.clear()
        assert a.active_flows == 0
        assert a.aggregate_demand() == 0.0
        r = a.arbitrate(3, 5 * KB, demand=C, now=1.0)
        assert r.queue == 0

    def test_requests_served_counter(self):
        a = arb()
        a.arbitrate(1, 10 * KB, demand=C, now=0.0)
        a.arbitrate(1, 8 * KB, demand=C, now=0.1)
        assert a.requests_served == 2

    def test_negative_inputs_rejected(self):
        a = arb()
        with pytest.raises(ValueError):
            a.arbitrate(1, -5, demand=C, now=0.0)
        with pytest.raises(ValueError):
            a.arbitrate(1, 5, demand=-1, now=0.0)


class TestDecideAll:
    def test_matches_per_flow_decisions(self):
        a = arb()
        for fid in range(20):
            a.arbitrate(fid, (fid + 1) * 7 * KB, demand=0.3 * C, now=0.0)
        table = a.decide_all()
        assert set(table) == set(range(20))
        for fid in range(20):
            # Re-registering with unchanged values is a pure decide and
            # must agree with the batch table.
            r = a.arbitrate(fid, (fid + 1) * 7 * KB, demand=0.3 * C, now=1.0)
            assert r == table[fid]

    def test_memoized_until_mutation(self):
        a = arb()
        a.arbitrate(1, 10 * KB, demand=C, now=0.0)
        table = a.decide_all()
        assert a.decide_all() is table  # unchanged epoch: cached object
        a.arbitrate(2, 20 * KB, demand=C, now=0.0)  # insert invalidates
        assert a.decide_all() is not table
        table = a.decide_all()
        a.remove(2)  # removal invalidates too
        assert a.decide_all() is not table

    def test_empty_table(self):
        assert arb().decide_all() == {}


class TestAggregateDemand:
    def test_total(self):
        a = arb()
        a.arbitrate(1, 10 * KB, demand=300 * MBPS, now=0.0)
        a.arbitrate(2, 20 * KB, demand=200 * MBPS, now=0.0)
        assert a.aggregate_demand() == pytest.approx(500 * MBPS)

    def test_top_queue_only(self):
        a = arb()
        a.arbitrate(1, 10 * KB, demand=C, now=0.0)
        a.arbitrate(2, 20 * KB, demand=C, now=0.0)
        a.arbitrate(3, 30 * KB, demand=C, now=0.0)
        # Only the first C worth of demand counts for top_queues=1.
        assert a.aggregate_demand(top_queues=1) == pytest.approx(C)


class TestMerge:
    def test_merge_takes_worst_queue_and_min_rate(self):
        a = ArbitrationResult(queue=0, reference_rate=1e9)
        b = ArbitrationResult(queue=3, reference_rate=5e8)
        m = a.merge(b)
        assert m.queue == 3
        assert m.reference_rate == 5e8

    def test_merge_commutative(self):
        a = ArbitrationResult(queue=2, reference_rate=1e8)
        b = ArbitrationResult(queue=1, reference_rate=9e8)
        assert a.merge(b) == b.merge(a)


class TestVirtualLink:
    def test_share_scales_capacity(self):
        v = VirtualLinkArbitrator("v", C, 7, BASE, initial_share=0.5)
        assert v.capacity == pytest.approx(C / 2)
        r1 = v.arbitrate(1, 10 * KB, demand=C, now=0.0)
        assert r1.reference_rate == pytest.approx(C / 2)

    def test_queue_boundaries_follow_share(self):
        v = VirtualLinkArbitrator("v", C, 7, BASE, initial_share=0.25)
        v.arbitrate(1, 10 * KB, demand=C / 4, now=0.0)
        r = v.arbitrate(2, 20 * KB, demand=C, now=0.0)
        assert r.queue == 1  # the slice is saturated by flow 1

    def test_set_share_validation(self):
        v = VirtualLinkArbitrator("v", C, 7, BASE, initial_share=0.5)
        v.set_share(0.9)
        assert v.capacity == pytest.approx(0.9 * C)
        with pytest.raises(ValueError):
            v.set_share(0.0)
        with pytest.raises(ValueError):
            v.set_share(1.5)

    def test_share_of_one_is_the_full_link(self):
        """share=1.0 is legal (a lone child owns the whole parent link) and
        must behave exactly like a physical arbitrator of that capacity."""
        v = VirtualLinkArbitrator("v", C, 7, BASE, initial_share=0.25)
        v.set_share(1.0)
        assert v.capacity == pytest.approx(C)
        real = LinkArbitrator("r", C, 7, BASE)
        for fid in (1, 2, 3):
            rv = v.arbitrate(fid, fid * 10 * KB, demand=C, now=0.0)
            rr = real.arbitrate(fid, fid * 10 * KB, demand=C, now=0.0)
            assert rv == rr

    def test_capacity_change_mid_epoch_invalidates_decisions(self):
        """A rebalance between two reads of the same epoch must be visible:
        the memoized decide_all table may not survive a set_share."""
        v = VirtualLinkArbitrator("v", C, 7, BASE, initial_share=1.0)
        v.arbitrate(1, 10 * KB, demand=C, now=0.0)
        v.arbitrate(2, 20 * KB, demand=C, now=0.0)
        before = v.decide_all()
        assert before[2].queue == 1  # flow 1 saturates the full link
        v.set_share(0.5)
        after = v.decide_all()
        assert after is not before
        assert after[2].queue == 2  # half the capacity: ADH spans 2 classes
        assert after[1].reference_rate == pytest.approx(C / 2)
        # Re-asserting the same share is a no-op: the epoch table survives.
        again = v.decide_all()
        v.set_share(0.5)
        assert v.decide_all() is again

    def test_aggregate_demand_tie_break_is_deterministic(self):
        """Flows with equal criterion order by flow id, so the top-queue
        demand cut falls on the same flow no matter the insertion order."""
        def fill(order):
            a = arb()
            for fid in order:
                a.arbitrate(fid, 100 * KB, demand=0.4 * C, now=0.0)
            return a.aggregate_demand(top_queues=1)

        forward = fill([1, 2, 3, 4])
        backward = fill([4, 3, 2, 1])
        assert forward == backward
        # Three 0.4C flows fit before the cumulative demand reaches C
        # (the crossing flow is included, per Algorithm 1's cumulative scan).
        assert forward == pytest.approx(1.2 * C)
