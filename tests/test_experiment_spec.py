"""Tests for the consolidated :class:`ExperimentSpec` API and the
legacy-signature deprecation shim."""

import dataclasses

import pytest

from repro.core import PaseConfig
from repro.harness import ExperimentSpec, intra_rack, run_experiment
from repro.runner import RunDescriptor, ScenarioSpec

SCN = lambda: intra_rack(num_hosts=5)


class TestSpecConstruction:
    def test_defaults_mirror_legacy_signature(self):
        spec = ExperimentSpec("dctcp", SCN(), 0.4)
        assert spec.num_flows == 300
        assert spec.seed == 1
        assert spec.pase_config is None
        assert spec.horizon is None
        assert spec.fault_schedule is None
        assert spec.binding is None
        assert spec.binding_overrides == {}

    def test_spec_is_frozen(self):
        spec = ExperimentSpec("dctcp", SCN(), 0.4)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.load = 0.9

    def test_replace_returns_modified_copy(self):
        spec = ExperimentSpec("dctcp", SCN(), 0.4, seed=3)
        hot = spec.replace(load=0.9)
        assert hot.load == 0.9
        assert hot.seed == 3
        assert spec.load == 0.4  # original untouched

    def test_build_routes_unknown_kwargs_to_overrides(self):
        spec = ExperimentSpec.build("pase", SCN(), 0.4, seed=9,
                                    arbitration_interval=1e-3)
        assert spec.seed == 9
        assert spec.binding_overrides == {"arbitration_interval": 1e-3}

    def test_label(self):
        spec = ExperimentSpec("pase", SCN(), 0.5, seed=7)
        assert spec.label == f"pase/{SCN().name}/load=0.5/seed=7"


class TestRunExperimentSpec:
    def test_spec_call_runs(self):
        result = run_experiment(ExperimentSpec(
            "dctcp", SCN(), 0.4, num_flows=15, seed=2))
        assert result.stats.completion_fraction == 1.0
        assert result.protocol == "dctcp"

    def test_spec_call_rejects_extra_arguments(self):
        spec = ExperimentSpec("dctcp", SCN(), 0.4, num_flows=15)
        with pytest.raises(TypeError):
            run_experiment(spec, 0.5)
        with pytest.raises(TypeError):
            run_experiment(spec, seed=3)

    def test_spec_and_legacy_forms_agree_exactly(self):
        spec = ExperimentSpec("dctcp", SCN(), 0.4, num_flows=15, seed=2)
        via_spec = run_experiment(spec)
        with pytest.warns(DeprecationWarning):
            via_legacy = run_experiment("dctcp", SCN(), 0.4,
                                        num_flows=15, seed=2)
        assert via_spec.events == via_legacy.events
        assert via_spec.afct == via_legacy.afct

    def test_pase_config_flows_through(self):
        result = run_experiment(ExperimentSpec(
            "pase", SCN(), 0.4, num_flows=15, seed=2,
            pase_config=PaseConfig(num_queues=4)))
        assert result.control_plane is not None


class TestDeprecationShim:
    def test_legacy_signature_warns(self):
        with pytest.warns(DeprecationWarning, match="ExperimentSpec"):
            run_experiment("dctcp", SCN(), 0.4, num_flows=10, seed=1)

    def test_legacy_positional_tail_still_accepted(self):
        with pytest.warns(DeprecationWarning):
            result = run_experiment("dctcp", SCN(), 0.4, 10, 2)
        assert result.stats.num_flows == 10

    def test_legacy_binding_overrides_forwarded(self):
        # An unknown transport override must raise inside make_binding —
        # proving the shim forwards loose kwargs as binding overrides
        # rather than silently dropping them.
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                run_experiment("dctcp", SCN(), 0.4, num_flows=10,
                               definitely_not_a_real_override=1)


class TestRunnerIntegration:
    def test_descriptor_to_experiment_spec(self):
        desc = RunDescriptor(
            protocol="dctcp",
            scenario=ScenarioSpec("intra-rack", {"num_hosts": 5}),
            load=0.4, seed=2, num_flows=15)
        spec = desc.to_experiment_spec()
        assert isinstance(spec, ExperimentSpec)
        assert spec.protocol == "dctcp"
        assert spec.load == 0.4
        assert spec.num_flows == 15
        assert spec.scenario.name  # scenario was materialized

    def test_descriptor_run_equals_direct_spec_run(self):
        desc = RunDescriptor(
            protocol="dctcp",
            scenario=ScenarioSpec("intra-rack", {"num_hosts": 5}),
            load=0.4, seed=2, num_flows=15)
        via_desc = desc.run()
        via_spec = run_experiment(desc.to_experiment_spec())
        assert via_desc.events == via_spec.events
        assert via_desc.afct == via_spec.afct
