"""Tests for the shared reliable transport chassis (base sender/receiver)."""

import pytest

from repro.sim import Simulator, StarTopology
from repro.sim.packet import PacketKind
from repro.sim.queues import DropTailQueue
from repro.transports import Flow, ReceiverAgent, TcpConfig, TcpSender
from repro.transports.base import SenderAgent, TransportConfig
from repro.utils.units import GBPS, KB, USEC


def run_flow(size_bytes=30 * KB, queue_factory=None, sender_cls=TcpSender,
             config=None, until=5.0, num_hosts=4):
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=num_hosts, link_bps=1 * GBPS,
                        rtt=100 * USEC, queue_factory=queue_factory)
    flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                dst=topo.hosts[1].node_id, size_bytes=size_bytes,
                start_time=0.0)
    completions = []
    ReceiverAgent(sim, topo.hosts[1], flow, on_complete=completions.append)
    done = []
    sender = sender_cls(sim, topo.hosts[0], flow,
                        config or TcpConfig(initial_rtt=100 * USEC),
                        on_done=done.append)
    sim.schedule(0.0, sender.start)
    sim.run(until=until)
    return sim, flow, sender, completions, done


def test_single_flow_completes():
    sim, flow, sender, completions, done = run_flow()
    assert flow.completed
    assert completions == [flow]
    assert done == [flow]
    assert sender.finished


def test_fct_close_to_ideal():
    # 30 KB = 20 packets; serialization 20 x 12 us = 240 us (+RTT, slow start).
    _, flow, *_ = run_flow(size_bytes=30 * KB)
    assert 240 * USEC < flow.fct < 2e-3


def test_completion_callback_fires_once():
    _, flow, _, completions, _ = run_flow()
    assert len(completions) == 1


def test_tail_packet_carries_remainder():
    # 3001 bytes = 2 full packets + 1 byte; receiver still completes.
    _, flow, *_ = run_flow(size_bytes=3001)
    assert flow.total_pkts == 3
    assert flow.completed


def test_single_packet_flow():
    _, flow, *_ = run_flow(size_bytes=100)
    assert flow.total_pkts == 1
    assert flow.completed


def test_no_retransmissions_on_clean_path():
    _, flow, *_ = run_flow()
    assert flow.retransmissions == 0
    assert flow.timeouts == 0


def test_loss_recovery_with_tiny_queue():
    # A 4-packet buffer forces drops during slow start; the flow must still
    # complete via fast retransmit / RTO.
    _, flow, *_ = run_flow(
        size_bytes=150 * KB,
        queue_factory=lambda: DropTailQueue(capacity_pkts=4),
        until=10.0,
    )
    assert flow.completed
    assert flow.retransmissions > 0


def test_sender_detaches_after_finish():
    sim, flow, sender, _, _ = run_flow()
    assert flow.flow_id not in sender.host._senders


def test_rtt_estimate_converges():
    _, flow, sender, _, _ = run_flow(size_bytes=60 * KB)
    # True RTT is 100 us propagation + some serialization/queueing.
    assert 90 * USEC < sender.srtt < 1e-3
    assert sender.base_rtt >= 100 * USEC


def test_remaining_bytes_decreases_to_zero():
    _, flow, sender, _, _ = run_flow()
    assert sender.remaining_bytes == 0


def test_cwnd_grows_during_transfer():
    cfg = TcpConfig(initial_rtt=100 * USEC, init_cwnd=2.0)
    _, flow, sender, _, _ = run_flow(size_bytes=150 * KB, config=cfg)
    assert sender.cwnd > 2.0


def test_two_flows_both_complete_through_shared_bottleneck():
    # Plain Reno: slow-start races make exact fairness timing-dependent
    # (that is realistic); the invariant is that both flows finish and the
    # shared link carried their full volume.  DCTCP's fairness is asserted
    # in test_dctcp_family / test_integration.
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=4, link_bps=1 * GBPS, rtt=100 * USEC)
    flows = []
    for i, src in enumerate([0, 1]):
        f = Flow(flow_id=10 + i, src=topo.hosts[src].node_id,
                 dst=topo.hosts[2].node_id, size_bytes=400 * KB, start_time=0.0)
        ReceiverAgent(sim, topo.hosts[2], f)
        TcpSender(sim, topo.hosts[src], f,
                  TcpConfig(initial_rtt=100 * USEC)).start()
        flows.append(f)
    sim.run(until=5.0)
    assert all(f.completed for f in flows)
    # Neither can beat the aggregate serialization floor of 800 KB at 1 Gbps.
    assert max(f.fct for f in flows) > 6.4e-3


def test_probe_ack_reports_missing_data():
    """The receiver's probe reply distinguishes received from missing seqs."""
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=2)
    flow = Flow(flow_id=5, src=topo.hosts[0].node_id,
                dst=topo.hosts[1].node_id, size_bytes=10 * KB, start_time=0.0)
    rx = ReceiverAgent(sim, topo.hosts[1], flow)
    acks = []
    topo.hosts[0].attach_sender(
        5, type("S", (), {"on_packet": staticmethod(acks.append)})())
    from repro.sim.packet import Packet
    probe = Packet(PacketKind.PROBE, topo.hosts[0].node_id,
                   topo.hosts[1].node_id, 5, seq=0)
    topo.hosts[0].send(probe)
    sim.run()
    assert len(acks) == 1
    assert acks[0].ack_sacks == -1  # nothing received yet


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        TransportConfig(init_cwnd=0)
    with pytest.raises(ValueError):
        TransportConfig(min_rto=-1)
