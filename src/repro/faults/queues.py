"""Lossy queue wrapper: inject modeled loss in front of any discipline.

Promoted out of the failure-injection tests so every consumer (tests, the
:class:`~repro.faults.injector.FaultInjector`, ad-hoc experiments) shares
one drop implementation.  Data packets are dropped per the attached
:class:`~repro.faults.models.LossModel`; ACKs and probes pass through so
control loops limp along — the harder case for loss recovery.

Counters delegate to the wrapped queue, so a link whose queue is wrapped
mid-run (and later unwrapped) presents one continuous set of drop/mark
counters to :class:`~repro.sim.network.Network` accounting.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.faults.models import BernoulliLoss, LossModel
from repro.sim.packet import Packet
from repro.sim.queues import QueueDiscipline


class LossyQueue(QueueDiscipline):
    """Wraps another discipline and drops data packets per a loss model."""

    def __init__(self, inner: QueueDiscipline,
                 model: Union[LossModel, float], seed: int = 0) -> None:
        # No super().__init__(): drop/mark counters are properties that
        # delegate to ``inner`` so wrapping is invisible to accounting.
        self.inner = inner
        if isinstance(model, (int, float)):
            model = BernoulliLoss(float(model), seed=seed)
        self.model = model
        #: Drops injected by the loss model (also counted in ``drops``).
        self.injected_drops = 0

    def enqueue(self, pkt: Packet) -> bool:
        if pkt.kind == 0 and self.model.drop():  # PacketKind.DATA
            self.injected_drops += 1
            self.inner.drops += 1
            self.inner.drop_bytes += pkt.size
            hook = self.inner.drop_hook
            if hook is not None:
                hook(pkt, "injected-loss")
            return False
        return self.inner.enqueue(pkt)

    def dequeue(self) -> Optional[Packet]:
        return self.inner.dequeue()

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def byte_depth(self) -> int:
        return self.inner.byte_depth

    # -- counter delegation (one merged view with the wrapped queue) -------
    @property
    def drop_hook(self):
        return self.inner.drop_hook

    @drop_hook.setter
    def drop_hook(self, hook) -> None:
        # A link constructed directly on a LossyQueue (lossy_queue_factory)
        # installs its trace hook through the wrapper onto the inner queue,
        # so wrap/unwrap mid-run never loses instrumentation.
        self.inner.drop_hook = hook

    @property
    def drops(self) -> int:
        return self.inner.drops

    @property
    def drop_bytes(self) -> int:
        return self.inner.drop_bytes

    @property
    def marks(self) -> int:
        return self.inner.marks

    @property
    def enqueued_total(self) -> int:
        return self.inner.enqueued_total


def lossy_queue_factory(
    inner_factory: Callable[[], QueueDiscipline],
    p: float,
    seed: int = 0,
) -> Callable[[], LossyQueue]:
    """Factory-of-factories for topology construction: each link direction
    gets its own :class:`LossyQueue` over a fresh inner queue, seeded
    distinctly (but deterministically) per instantiation."""
    counter = [seed]

    def factory() -> LossyQueue:
        counter[0] += 1
        return LossyQueue(inner_factory(), BernoulliLoss(p, seed=counter[0]))

    return factory
