"""Parameterized data-plane loss models.

Both models are stepped once per *data* packet offered to a faulted link and
answer "drop this one?".  They own their RNG (seeded at construction) so a
:class:`~repro.faults.schedule.FaultSchedule` replays identically under the
same seed regardless of what else the simulation does.

* :class:`BernoulliLoss` — i.i.d. loss with probability ``p``; the classic
  "random loss" abstraction.
* :class:`GilbertElliottLoss` — the two-state Markov burst-loss model: a
  *good* state with low (usually zero) loss and a *bad* state with high
  loss, with per-packet transition probabilities.  Bursty loss is the
  regime that actually distinguishes probe-based recovery from blind
  retransmission, which i.i.d. loss flattens out.
"""

from __future__ import annotations

import random
from typing import Dict, Protocol

from repro.utils.validation import check_non_negative


class LossModel(Protocol):
    """Per-packet drop decision; stateful models advance on every call."""

    kind: str

    def drop(self) -> bool: ...


def _check_probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


class BernoulliLoss:
    """Drop each packet independently with probability ``p``."""

    kind = "bernoulli"

    def __init__(self, p: float, seed: int = 0) -> None:
        self.p = _check_probability("p", p)
        self.rng = random.Random(seed)

    def drop(self) -> bool:
        return self.p > 0.0 and self.rng.random() < self.p


class GilbertElliottLoss:
    """Two-state Markov (Gilbert–Elliott) burst loss.

    ``p_enter_bad`` / ``p_exit_bad`` are the per-packet transition
    probabilities good→bad and bad→good; ``loss_good`` / ``loss_bad`` the
    per-packet drop probabilities within each state.  The mean burst length
    is ``1 / p_exit_bad`` packets.
    """

    kind = "gilbert-elliott"

    def __init__(
        self,
        p_enter_bad: float,
        p_exit_bad: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.p_enter_bad = _check_probability("p_enter_bad", p_enter_bad)
        self.p_exit_bad = _check_probability("p_exit_bad", p_exit_bad)
        self.loss_good = _check_probability("loss_good", loss_good)
        self.loss_bad = _check_probability("loss_bad", loss_bad)
        self.rng = random.Random(seed)
        self.in_bad_state = False

    def drop(self) -> bool:
        rng = self.rng
        if self.in_bad_state:
            if rng.random() < self.p_exit_bad:
                self.in_bad_state = False
        elif rng.random() < self.p_enter_bad:
            self.in_bad_state = True
        loss = self.loss_bad if self.in_bad_state else self.loss_good
        return loss > 0.0 and rng.random() < loss


#: Registry used by declarative schedules (``model="bernoulli"`` + params).
MODEL_BUILDERS = {
    BernoulliLoss.kind: BernoulliLoss,
    GilbertElliottLoss.kind: GilbertElliottLoss,
}


def make_loss_model(kind: str, params: Dict[str, float], seed: int = 0) -> LossModel:
    """Build a loss model from its declarative ``(kind, params)`` form."""
    try:
        builder = MODEL_BUILDERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown loss model {kind!r}; known: {sorted(MODEL_BUILDERS)}"
        ) from None
    check_non_negative("seed", seed)
    return builder(seed=seed, **params)
