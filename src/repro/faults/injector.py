"""The fault injector: executes a declarative schedule on the event engine.

One :class:`FaultInjector` per run.  At construction it resolves every
event's link selectors against the network, arms the corresponding
simulator events, and — when a control plane is present — flips it into
*fallible* mode so PASE senders arm their timeout/retry/fallback machinery
(clean runs, with no schedule attached, never pay for any of this).

Everything the injector does is observable: per-kind injection counts in
:attr:`injected`, trace events in the ``"fault"`` category, and the
post-run roll-up in :class:`repro.metrics.faults.FaultCounters`.
"""

from __future__ import annotations

import random
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.faults.models import make_loss_model
from repro.faults.queues import LossyQueue
from repro.faults.schedule import (
    ArbitratorCrash,
    ControlDegrade,
    DataLoss,
    FaultSchedule,
    LinkDown,
)
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.network import Network
from repro.sim.trace import CAT_FAULT

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.control_plane import PaseControlPlane

#: Multiplier deriving per-model RNG sub-streams from the schedule seed
#: (plain integer arithmetic: ``hash()`` is salted per-process and would
#: break cross-process replay).
_SEED_STRIDE = 1_000_003


class FaultInjector:
    """Arms a :class:`FaultSchedule` against one simulation."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        schedule: FaultSchedule,
        control_plane: Optional["PaseControlPlane"] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.schedule = schedule
        self.control_plane = control_plane
        #: Fault activations by event kind (a down+up flap counts once).
        self.injected: Dict[str, int] = {}
        #: Every LossyQueue this injector installed (for drop accounting —
        #: wrappers are removed from links when their window closes).
        self._loss_wrappers: List[LossyQueue] = []
        self._links_by_name = {link.name: link
                               for link in network.links.values()}
        self._next_model_seed = schedule.seed * _SEED_STRIDE + 1

        if control_plane is not None and schedule:
            # Any schedule makes arbitration fallible: senders arm their
            # per-request timeout / retry / fallback machinery.
            control_plane.fallible = True
        if (control_plane is None and schedule.touches_control_plane()):
            raise ValueError(
                "schedule contains control-plane faults but no control "
                "plane was supplied (protocol without arbitration?)")

        for event in schedule.events:
            self._arm(event)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _arm(self, event) -> None:
        if isinstance(event, LinkDown):
            links = self._resolve_links(event.links)
            self.sim.schedule_at(event.at, self._link_down, links, event.flush)
            if event.duration is not None:
                self.sim.schedule_at(event.at + event.duration,
                                     self._link_up, links)
        elif isinstance(event, ArbitratorCrash):
            self.sim.schedule_at(event.at, self._arb_crash, event.links)
            if event.duration is not None:
                self.sim.schedule_at(event.at + event.duration,
                                     self._arb_recover, event.links)
        elif isinstance(event, ControlDegrade):
            self.sim.schedule_at(event.at, self._control_degrade,
                                 event.loss_rate, event.extra_delay)
            if event.duration is not None:
                self.sim.schedule_at(event.at + event.duration,
                                     self._control_degrade, 0.0, 0.0)
        elif isinstance(event, DataLoss):
            links = self._resolve_links(event.links)
            self.sim.schedule_at(event.at, self._loss_on, links,
                                 event.model, event.params_dict())
            if event.duration is not None:
                self.sim.schedule_at(event.at + event.duration,
                                     self._loss_off, links)
        else:  # pragma: no cover - schedule validation catches this
            raise TypeError(f"unknown fault event {event!r}")

    def _resolve_links(self, selectors) -> List[Link]:
        """Match selectors (exact names or fnmatch patterns; None = all)
        against the network, in deterministic name order."""
        names = sorted(self._links_by_name)
        if selectors is None:
            matched = names
        else:
            matched = [n for n in names
                       if any(fnmatchcase(n, sel) for sel in selectors)]
            if not matched:
                raise ValueError(
                    f"fault link selectors {selectors!r} match no link; "
                    f"known links: {names}")
        return [self._links_by_name[n] for n in matched]

    # ------------------------------------------------------------------
    # Executors
    # ------------------------------------------------------------------
    def _record(self, kind: str, subject, **details) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if self.sim.tracer is not None:
            self.sim.tracer.record(self.sim.now, CAT_FAULT, subject,
                                   kind=kind, **details)

    def _link_down(self, links: List[Link], flush: bool) -> None:
        for link in links:
            link.set_down(flush=flush)
            self._record("link-down", link.name, flush=flush)

    def _link_up(self, links: List[Link]) -> None:
        for link in links:
            link.set_up()
            self._record("link-up", link.name)

    def _arb_crash(self, names) -> None:
        self.control_plane.crash(names)
        self._record("arbitrator-crash",
                     "control-plane" if names is None else ",".join(names))

    def _arb_recover(self, names) -> None:
        self.control_plane.recover(names)
        self._record("arbitrator-recover",
                     "control-plane" if names is None else ",".join(names))

    def _control_degrade(self, loss_rate: float, extra_delay: float) -> None:
        cp = self.control_plane
        cp.control_loss_rate = loss_rate
        cp.control_extra_delay = extra_delay
        if loss_rate > 0.0 and cp.control_rng is None:
            cp.control_rng = random.Random(
                self.schedule.seed * _SEED_STRIDE)
        self._record("control-degrade", "control-plane",
                     loss_rate=loss_rate, extra_delay=extra_delay)

    def _loss_on(self, links: List[Link], model: str, params: Dict) -> None:
        for link in links:
            wrapper = LossyQueue(
                link.queue, make_loss_model(model, params,
                                            seed=self._next_model_seed))
            self._next_model_seed += 1
            self._loss_wrappers.append(wrapper)
            link.queue = wrapper
            self._record("data-loss-on", link.name, model=model)

    def _loss_off(self, links: List[Link]) -> None:
        for link in links:
            if isinstance(link.queue, LossyQueue):
                link.queue = link.queue.inner
                self._record("data-loss-off", link.name)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def injected_loss_drops(self) -> int:
        """Packets dropped by loss models this injector installed."""
        return sum(w.injected_drops for w in self._loss_wrappers)

    @property
    def link_down_drops(self) -> int:
        """Packets lost to link outages (flushed, corrupted, or offered
        while down) across the whole network."""
        return sum(link.down_drops for link in self.network.links.values())
