"""Declarative fault schedules.

A :class:`FaultSchedule` is plain data — a seed plus a tuple of fault
events — so it can ride inside a :class:`~repro.harness.scenarios.Scenario`,
cross process boundaries, serialize into the runner's JSONL ledger, and be
rebuilt from JSON for cache-stable sweep descriptors.  The
:class:`~repro.faults.injector.FaultInjector` is the executable half: it
walks the schedule and arms the corresponding simulator events.

Event kinds:

* :class:`LinkDown` — take links down at ``at`` (optionally back up after
  ``duration``).  ``flush=True`` drops queued packets immediately; with
  ``flush=False`` queued packets survive the outage and resume when the
  link comes back (a paused port).  Either way the packet being serialized
  when the link dies is corrupted, and everything offered while down is
  dropped — senders ride the outage out via RTO.
* :class:`ArbitratorCrash` — crash arbitrators at ``at`` (``links=None``
  means the whole control plane), recovering after ``duration`` if given.
  A crash wipes the arbitrator's soft state; recovery starts empty and the
  table is rebuilt by the endpoints' periodic arbitration requests.
* :class:`ControlDegrade` — a lossy/slow control channel for a window:
  each explicit arbitration message is lost with ``loss_rate`` and delayed
  by ``extra_delay``.
* :class:`DataLoss` — wrap links' queues with a
  :class:`~repro.faults.queues.LossyQueue` for a window, using a named
  loss model (``bernoulli`` or ``gilbert-elliott``).

Link selectors are names from :class:`~repro.sim.link.Link` (e.g.
``"h0->sw0"``) and support ``fnmatch`` wildcards (``"h0->*"``); ``None``
means every link.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class LinkDown:
    """Take matching links down at ``at`` (back up after ``duration``)."""

    at: float
    links: Optional[Tuple[str, ...]] = None
    duration: Optional[float] = None
    flush: bool = True

    kind = "link-down"


@dataclass(frozen=True)
class ArbitratorCrash:
    """Crash arbitrators (``links=None`` = the whole control plane)."""

    at: float
    links: Optional[Tuple[str, ...]] = None
    duration: Optional[float] = None

    kind = "arbitrator-crash"


@dataclass(frozen=True)
class ControlDegrade:
    """Lossy / slow control channel for a window starting at ``at``."""

    at: float
    duration: Optional[float] = None
    loss_rate: float = 0.0
    extra_delay: float = 0.0

    kind = "control-degrade"


@dataclass(frozen=True)
class DataLoss:
    """Attach a loss model to matching links for a window."""

    at: float
    links: Optional[Tuple[str, ...]] = None
    duration: Optional[float] = None
    model: str = "bernoulli"
    params: Tuple[Tuple[str, float], ...] = (("p", 0.01),)

    kind = "data-loss"

    def params_dict(self) -> Dict[str, float]:
        return dict(self.params)


FaultEvent = Union[LinkDown, ArbitratorCrash, ControlDegrade, DataLoss]

_EVENT_KINDS = {cls.kind: cls for cls in
                (LinkDown, ArbitratorCrash, ControlDegrade, DataLoss)}


def _normalize(event: FaultEvent) -> FaultEvent:
    """Coerce list-valued fields to tuples so schedules stay hashable."""
    updates: Dict[str, Any] = {}
    links = getattr(event, "links", None)
    if isinstance(links, list):
        updates["links"] = tuple(links)
    params = getattr(event, "params", None)
    if params is not None and not isinstance(params, tuple):
        updates["params"] = tuple(sorted(dict(params).items()))
    if updates:
        event = replace(event, **updates)
    check_non_negative("at", event.at)
    if event.duration is not None:
        check_non_negative("duration", event.duration)
    return event


@dataclass(frozen=True)
class FaultSchedule:
    """A seed plus an ordered tuple of fault events."""

    events: Tuple[FaultEvent, ...] = ()
    #: Seeds every RNG the schedule spawns (control-message loss, data-plane
    #: loss models); the same schedule + seed replays identically.
    seed: int = 0

    def __post_init__(self) -> None:
        normalized = tuple(_normalize(e) for e in self.events)
        object.__setattr__(self, "events", normalized)

    def __bool__(self) -> bool:
        return bool(self.events)

    def touches_control_plane(self) -> bool:
        return any(isinstance(e, (ArbitratorCrash, ControlDegrade))
                   for e in self.events)

    # -- JSON round-trip ---------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        rows: List[Dict[str, Any]] = []
        for event in self.events:
            row = {"kind": event.kind, **asdict(event)}
            if "links" in row and row["links"] is not None:
                row["links"] = list(row["links"])
            if "params" in row:
                row["params"] = dict(row["params"])
            rows.append(row)
        return {"seed": self.seed, "events": rows}

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "FaultSchedule":
        events: List[FaultEvent] = []
        for row in data.get("events", ()):
            row = dict(row)
            kind = row.pop("kind")
            try:
                event_cls = _EVENT_KINDS[kind]
            except KeyError:
                raise ValueError(
                    f"unknown fault kind {kind!r}; known: {sorted(_EVENT_KINDS)}"
                ) from None
            if "links" in row and row["links"] is not None:
                row["links"] = tuple(row["links"])
            if "params" in row:
                row["params"] = tuple(sorted(dict(row["params"]).items()))
            events.append(event_cls(**row))
        return cls(events=tuple(events), seed=int(data.get("seed", 0)))
