"""Fault injection: deterministic, seeded failures for robustness studies.

The paper's fault-tolerance argument (§3.1) is that arbitration is *soft
state*: arbitrators may crash, control messages may vanish, and endpoints
keep making progress because they remain self-adjusting and the state is
rebuilt by periodic per-RTT arbitration requests.  This package makes that
claim testable:

* :mod:`~repro.faults.schedule` — declarative :class:`FaultSchedule`
  (link down/up, arbitrator crash/recover, control-channel degradation,
  parameterized data-plane loss), plain data that serializes to JSON,
* :mod:`~repro.faults.injector` — the :class:`FaultInjector` that executes
  a schedule on the event engine,
* :mod:`~repro.faults.models` — Bernoulli and Gilbert–Elliott loss models,
* :mod:`~repro.faults.queues` — the shared :class:`LossyQueue` wrapper.

Quick sketch::

    schedule = FaultSchedule(events=(
        ArbitratorCrash(at=0.01, duration=0.05),      # whole control plane
        LinkDown(at=0.02, links=("h0->sw0",), duration=0.005),
        ControlDegrade(at=0.08, duration=0.04, loss_rate=0.3),
    ), seed=7)
    FaultInjector(sim, topology.network, schedule, control_plane=cp)
    sim.run()

With no schedule attached nothing in this package runs and the simulation
is byte-identical to a clean build.
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import (
    BernoulliLoss,
    GilbertElliottLoss,
    LossModel,
    make_loss_model,
)
from repro.faults.queues import LossyQueue, lossy_queue_factory
from repro.faults.schedule import (
    ArbitratorCrash,
    ControlDegrade,
    DataLoss,
    FaultEvent,
    FaultSchedule,
    LinkDown,
)

__all__ = [
    "FaultInjector",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "LossModel",
    "make_loss_model",
    "LossyQueue",
    "lossy_queue_factory",
    "ArbitratorCrash",
    "ControlDegrade",
    "DataLoss",
    "FaultEvent",
    "FaultSchedule",
    "LinkDown",
]
