"""Declarative sweep specifications and run descriptors.

A :class:`RunDescriptor` is one grid point of a figure sweep — the full
recipe for a single :func:`~repro.harness.experiment.run_experiment` call,
expressed as plain data so it can cross process boundaries and be hashed
for the result cache.  A :class:`SweepSpec` is the declarative grid
(protocols × loads × seeds × config) that expands into descriptors.

Scenario identity comes in two flavors:

* :class:`ScenarioSpec` — a registry name plus constructor kwargs
  (``SCENARIO_BUILDERS`` in :mod:`repro.harness.scenarios`).  Fully
  declarative, so descriptors built from it are *cacheable*: their content
  hash covers every input that determines the result.
* an arbitrary zero-argument factory (the legacy ``sweep_loads`` calling
  convention, usually a lambda).  These still parallelize — the fork start
  method ships the closure by inheritance — but are *not* cacheable, since
  a closure has no stable content identity.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core import PaseConfig
from repro.harness.scenarios import Scenario, build_scenario


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario addressed by ``(name, kwargs)``."""

    name: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> Scenario:
        return build_scenario(self.name, **self.kwargs)

    def label(self) -> str:
        if not self.kwargs:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.kwargs.items()))
        return f"{self.name}[{inner}]"


ScenarioLike = Union[ScenarioSpec, Callable[[], Scenario]]


def _canonical(value: Any) -> Any:
    """Reduce a descriptor field to a JSON-stable form, or raise TypeError
    when the value has no stable content identity (then the descriptor is
    simply uncacheable)."""
    json.dumps(value, sort_keys=True)
    return value


@dataclass
class RunDescriptor:
    """One (protocol, scenario, load, seed) grid point, as plain data."""

    protocol: str
    scenario: ScenarioLike
    load: float
    seed: int = 1
    num_flows: int = 200
    pase_config: Optional[PaseConfig] = None
    horizon: Optional[float] = None
    #: Extra keyword arguments forwarded to ``make_binding``.
    overrides: Dict[str, Any] = field(default_factory=dict)

    # -- identity ---------------------------------------------------------
    @property
    def scenario_label(self) -> str:
        if isinstance(self.scenario, ScenarioSpec):
            return self.scenario.label()
        return getattr(self.scenario, "__name__", "factory")

    @property
    def label(self) -> str:
        return (f"{self.protocol}/{self.scenario_label}"
                f"/load={self.load:g}/seed={self.seed}")

    def key_dict(self) -> Optional[Dict[str, Any]]:
        """The canonical content of this run, or None when any component
        (a factory scenario, a non-JSON override) defeats stable hashing."""
        if not isinstance(self.scenario, ScenarioSpec):
            return None
        try:
            return {
                "protocol": self.protocol,
                "scenario": self.scenario.name,
                "scenario_kwargs": _canonical(dict(self.scenario.kwargs)),
                "load": self.load,
                "seed": self.seed,
                "num_flows": self.num_flows,
                "pase_config": (None if self.pase_config is None
                                else asdict(self.pase_config)),
                "horizon": self.horizon,
                "overrides": _canonical(dict(self.overrides)),
            }
        except TypeError:
            return None

    def content_hash(self) -> Optional[str]:
        """sha256 over the canonical key, or None when uncacheable."""
        key = self.key_dict()
        if key is None:
            return None
        blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    @property
    def cacheable(self) -> bool:
        return self.key_dict() is not None

    # -- execution --------------------------------------------------------
    def build_scenario(self) -> Scenario:
        if isinstance(self.scenario, ScenarioSpec):
            return self.scenario.build()
        return self.scenario()

    def to_experiment_spec(self):
        """Materialize this grid point as an
        :class:`~repro.harness.experiment.ExperimentSpec` (builds the
        scenario, so call once per execution)."""
        from repro.harness.experiment import ExperimentSpec

        return ExperimentSpec.build(
            self.protocol,
            self.build_scenario(),
            self.load,
            num_flows=self.num_flows,
            seed=self.seed,
            pase_config=self.pase_config,
            horizon=self.horizon,
            **self.overrides,
        )

    def run(self):
        """Execute this point in the current process (the worker entry)."""
        from repro.harness.experiment import run_experiment

        return run_experiment(self.to_experiment_spec())


@dataclass
class SweepSpec:
    """A declarative sweep grid; ``expand()`` yields the descriptors in
    protocol-major, then load, then seed order (the legacy serial order)."""

    protocols: Sequence[str]
    scenario: ScenarioLike
    loads: Sequence[float]
    seeds: Sequence[int] = (1,)
    num_flows: int = 200
    pase_config: Optional[PaseConfig] = None
    horizon: Optional[float] = None
    overrides: Dict[str, Any] = field(default_factory=dict)

    def expand(self) -> List[RunDescriptor]:
        return [
            RunDescriptor(
                protocol=protocol,
                scenario=self.scenario,
                load=load,
                seed=seed,
                num_flows=self.num_flows,
                pase_config=self.pase_config,
                horizon=self.horizon,
                overrides=dict(self.overrides),
            )
            for protocol, load, seed in itertools.product(
                self.protocols, self.loads, self.seeds)
        ]


def descriptors_from_grid(
    protocols: Iterable[str],
    scenario: ScenarioLike,
    loads: Iterable[float],
    seeds: Iterable[int] = (1,),
    **kwargs,
) -> List[RunDescriptor]:
    """Convenience wrapper over :class:`SweepSpec` for one-off grids."""
    return SweepSpec(tuple(protocols), scenario, tuple(loads),
                     tuple(seeds), **kwargs).expand()
