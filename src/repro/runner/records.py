"""Run records: the runner's unit of accounting.

Every descriptor the runner touches produces exactly one :class:`RunRecord`
— whether the run computed, came from cache, timed out, crashed, or
exhausted its retries — so a sweep always completes with a full ledger
instead of aborting on the first sick point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.harness.experiment import ExperimentResult
from repro.runner.spec import RunDescriptor

#: Terminal statuses a record can carry.
STATUS_OK = "ok"
STATUS_FAILED = "failed"      # worker raised on every attempt
STATUS_TIMEOUT = "timeout"    # per-run timeout fired on every attempt
STATUS_CRASHED = "crashed"    # worker died without reporting (segfault, OOM kill)


def _finite(value: float) -> Optional[float]:
    """NaN/inf have no strict-JSON spelling; emit null instead."""
    return value if value == value and abs(value) != float("inf") else None


@dataclass
class RunRecord:
    """Outcome of one descriptor: result or structured failure."""

    descriptor: RunDescriptor
    status: str
    result: Optional[ExperimentResult] = None
    #: True when the result was served from the on-disk cache.
    cached: bool = False
    #: Execution attempts actually made (0 for pure cache hits).
    attempts: int = 0
    #: Wall-clock seconds spent on this point (all attempts, parent view).
    wallclock: float = 0.0
    #: Peak resident set size of the worker process, in KiB (best-effort;
    #: in serial in-process mode this is the parent's cumulative peak).
    peak_rss_kb: Optional[int] = None
    #: Error description (exception repr + traceback tail, exit code, or
    #: timeout note) for non-ok statuses.
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_json_dict(self) -> Dict[str, Any]:
        """Flatten to the JSONL schema (no flow list — summaries only)."""
        d = self.descriptor
        row: Dict[str, Any] = {
            "hash": d.content_hash(),
            "protocol": d.protocol,
            "scenario": d.scenario_label,
            "load": d.load,
            "seed": d.seed,
            "num_flows": d.num_flows,
            "status": self.status,
            "cached": self.cached,
            "attempts": self.attempts,
            "wallclock_s": round(self.wallclock, 6),
            "peak_rss_kb": self.peak_rss_kb,
            "error": self.error,
        }
        if isinstance(self.result, ExperimentResult):
            stats = self.result.stats
            row["metrics"] = {
                "afct_s": _finite(stats.afct),
                "median_fct_s": _finite(stats.median_fct),
                "p99_fct_s": _finite(stats.p99_fct),
                "loss_rate": _finite(self.result.loss_rate),
                "application_throughput": _finite(stats.application_throughput),
                "completion_fraction": _finite(stats.completion_fraction),
                "sim_duration_s": self.result.sim_duration,
                "events": self.result.events,
            }
            if self.result.faults is not None:
                row["faults"] = self.result.faults.to_json_dict()
        return row


@dataclass
class SweepStats:
    """Sweep-level counters for the one-line summary."""

    total: int = 0
    computed: int = 0
    cached: int = 0
    failed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_time: float = 0.0
    failures: List[str] = field(default_factory=list)

    @classmethod
    def from_records(cls, records: List[RunRecord],
                     wall_time: float) -> "SweepStats":
        stats = cls(total=len(records), wall_time=wall_time)
        for rec in records:
            if rec.cached:
                stats.cached += 1
                stats.cache_hits += 1
            else:
                stats.cache_misses += 1
                if rec.ok:
                    stats.computed += 1
            if not rec.ok:
                stats.failed += 1
                stats.failures.append(f"{rec.descriptor.label}: {rec.status}")
        return stats

    def summary_line(self) -> str:
        return (f"sweep: {self.total} runs — {self.computed} computed, "
                f"{self.cached} cached, {self.failed} failed, "
                f"{self.wall_time:.1f} s wall")
