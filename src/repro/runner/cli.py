"""``python -m repro.runner`` — parallel, cached figure sweeps.

Examples::

    # Fig. 9a's PASE series, five paper loads, four workers, cached:
    python -m repro.runner --protocols pase --scenario left-right \
        --loads 0.1,0.3,0.5,0.7,0.9 --flows 250 --jobs 4

    # Full three-protocol figure, resumable (re-runs serve from cache):
    python -m repro.runner --protocols pase,l2dct,dctcp \
        --scenario left-right --loads 0.1,0.3,0.5,0.7,0.9 \
        --jobs 4 --timeout 1800 --retries 1 --output fig09a.jsonl

Scenario names come from ``repro.harness.scenarios.SCENARIO_BUILDERS``;
``--hosts``/``--fanin`` map onto each scenario's size parameters the same
way they do in ``repro.harness.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.protocols import PROTOCOL_NAMES
from repro.harness.report import format_series_table, series_from_results
from repro.harness.scenarios import SCENARIO_BUILDERS, scenario_cli_kwargs
from repro.runner.api import RunnerConfig, run_sweep
from repro.runner.cache import default_cache_dir
from repro.runner.sink import results_by_protocol_load
from repro.runner.spec import ScenarioSpec, SweepSpec


def _csv(cast):
    def parse(text: str):
        try:
            return [cast(part) for part in text.split(",") if part != ""]
        except ValueError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None
    return parse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.runner",
        description="Run a (protocol x load x seed) sweep in parallel, "
                    "with content-addressed result caching.",
    )
    parser.add_argument("--protocols", required=True, type=_csv(str),
                        metavar="P1,P2,...",
                        help=f"protocols from: {', '.join(PROTOCOL_NAMES)}")
    parser.add_argument("--scenario", required=True,
                        choices=sorted(SCENARIO_BUILDERS))
    parser.add_argument("--loads", required=True, type=_csv(float),
                        metavar="L1,L2,...",
                        help="offered loads as fractions, e.g. 0.1,0.5,0.9")
    parser.add_argument("--seeds", type=_csv(int), default=[1],
                        metavar="S1,S2,...")
    parser.add_argument("--flows", type=int, default=200,
                        help="foreground flows per point (default 200)")
    parser.add_argument("--hosts", type=int, default=None,
                        help="hosts (star scenarios) / hosts per rack (left-right)")
    parser.add_argument("--fanin", type=int, default=8,
                        help="incast fan-in for all-to-all (default 8)")
    parser.add_argument("--horizon", type=float, default=None,
                        help="extra simulated seconds past the last arrival")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel workers (1 = serial in-process)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-run wall-clock budget in seconds "
                             "(enforced when --jobs > 1)")
    parser.add_argument("--retries", type=int, default=0,
                        help="extra attempts for a failed/timed-out point")
    parser.add_argument("--cache-dir", default=None,
                        help=f"result cache root (default {default_cache_dir()})")
    parser.add_argument("--no-cache", action="store_true",
                        help="compute every point; neither read nor write cache")
    parser.add_argument("--output", default=None, metavar="PATH.jsonl",
                        help="append per-run JSONL records here")
    parser.add_argument("--metric", default="afct",
                        choices=("afct", "p99_fct", "application_throughput",
                                 "loss_rate"),
                        help="metric for the printed series table")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    unknown = [p for p in args.protocols if p not in PROTOCOL_NAMES]
    if unknown:
        print(f"unknown protocol(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    spec = SweepSpec(
        protocols=args.protocols,
        scenario=ScenarioSpec(args.scenario,
                              scenario_cli_kwargs(args.scenario, args.hosts,
                                                  args.fanin)),
        loads=args.loads,
        seeds=args.seeds,
        num_flows=args.flows,
        horizon=args.horizon,
    )
    config = RunnerConfig(
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        jsonl_path=args.output,
    )

    def progress(record) -> None:
        mark = "cached" if record.cached else record.status
        extra = "" if record.ok else " !"
        print(f"  [{mark}]{extra} {record.descriptor.label} "
              f"({record.wallclock:.1f} s)")

    descriptors = spec.expand()
    print(f"sweep: {len(descriptors)} points "
          f"({len(args.protocols)} protocol(s) x {len(args.loads)} load(s) "
          f"x {len(args.seeds)} seed(s)), jobs={args.jobs}")
    outcome = run_sweep(descriptors, config, on_record=progress)

    results = results_by_protocol_load(outcome.records)
    if results:
        scale = 1e3 if args.metric in ("afct", "p99_fct") else 1.0
        unit = "ms" if scale == 1e3 else ""
        series = series_from_results(results, args.metric, scale=scale)
        print()
        print(format_series_table(
            f"{args.metric} — {args.scenario}", args.loads, series, unit=unit))
    print()
    print(outcome.summary_line())
    for line in outcome.stats.failures:
        print(f"  failed: {line}", file=sys.stderr)
    return 0 if outcome.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
