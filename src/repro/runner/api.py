"""The runner's front door: cache-aware sweep execution.

:func:`run_sweep` is the one call every client (``sweep_loads``, the
replication helpers, ``bench_common``, both CLIs) goes through.  It
consults the result cache, executes only the missing points through the
:class:`ProcessPoolRunner`, stores fresh results back, streams records to
an optional JSONL sink, and returns the full ledger plus counters.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.runner.cache import ResultCache
from repro.runner.executor import ProcessPoolRunner, WorkFn, execute_descriptor
from repro.runner.records import STATUS_OK, RunRecord, SweepStats
from repro.runner.sink import JsonlSink
from repro.runner.spec import RunDescriptor


@dataclass
class RunnerConfig:
    """Execution policy for one sweep."""

    jobs: int = 1
    #: Per-run wall-clock budget (seconds); None disables.  Enforced only
    #: when ``jobs > 1`` (serial mode has no supervising process).
    timeout: Optional[float] = None
    retries: int = 0
    backoff: float = 0.25
    use_cache: bool = True
    #: None -> ``PASE_CACHE_DIR`` or ``~/.cache/pase-repro``.
    cache_dir: Optional[os.PathLike] = None
    #: Override the code-version salt (tests use this to force invalidation).
    cache_salt: Optional[str] = None
    jsonl_path: Optional[os.PathLike] = None
    #: "record": failures become failed records (sweep completes).
    #: "raise": re-raise the first failure after the sweep settles — the
    #: legacy library semantic for ``sweep_loads``/``replicate``.
    on_error: str = "record"

    def __post_init__(self) -> None:
        if self.on_error not in ("record", "raise"):
            raise ValueError(f"on_error must be 'record' or 'raise', "
                             f"got {self.on_error!r}")


class SweepFailure(RuntimeError):
    """Raised under ``on_error='raise'``; carries the failing records."""

    def __init__(self, failed: List[RunRecord]) -> None:
        lines = [f"{r.descriptor.label}: {r.status}" for r in failed]
        super().__init__(
            f"{len(failed)} sweep point(s) failed:\n  " + "\n  ".join(lines)
            + (f"\nfirst error:\n{failed[0].error}" if failed[0].error else ""))
        self.failed = failed


@dataclass
class SweepOutcome:
    """Everything a sweep produced: per-point records plus counters."""

    records: List[RunRecord] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)

    @property
    def ok(self) -> bool:
        return self.stats.failed == 0

    def summary_line(self) -> str:
        return self.stats.summary_line()


def run_sweep(
    descriptors: Sequence[RunDescriptor],
    config: Optional[RunnerConfig] = None,
    work_fn: WorkFn = execute_descriptor,
    on_record: Optional[Callable[[RunRecord], None]] = None,
) -> SweepOutcome:
    """Execute a sweep grid with caching and crash isolation.

    Records come back in descriptor order regardless of completion order.
    Cache hits never touch the executor; fresh ok results are stored back
    (only for cacheable descriptors — closure-based scenarios execute fine
    but have no stable identity to cache under).
    """
    config = config or RunnerConfig()
    descriptors = list(descriptors)
    started = time.perf_counter()

    cache = (ResultCache(config.cache_dir, salt=config.cache_salt)
             if config.use_cache else None)
    sink = JsonlSink(config.jsonl_path) if config.jsonl_path else None

    def emit(record: RunRecord) -> None:
        if sink is not None:
            sink.write_record(record)
        if on_record is not None:
            on_record(record)

    try:
        records: List[Optional[RunRecord]] = [None] * len(descriptors)
        to_run: List[int] = []
        for i, descriptor in enumerate(descriptors):
            cached = cache.get(descriptor.content_hash()) if cache else None
            if cached is not None:
                record = RunRecord(descriptor=descriptor, status=STATUS_OK,
                                   result=cached, cached=True)
                records[i] = record
                emit(record)
            else:
                to_run.append(i)

        if to_run:
            runner = ProcessPoolRunner(
                jobs=config.jobs, timeout=config.timeout,
                retries=config.retries, backoff=config.backoff,
                work_fn=work_fn,
            )

            def settle(record: RunRecord) -> None:
                if cache is not None and record.ok and record.result is not None:
                    cache.put(record.descriptor.content_hash(), record.result)
                emit(record)

            fresh = runner.run([descriptors[i] for i in to_run],
                               on_record=settle)
            for i, record in zip(to_run, fresh):
                records[i] = record

        final = [r for r in records if r is not None]
        stats = SweepStats.from_records(final, time.perf_counter() - started)
        if sink is not None:
            sink.write_summary(stats)
    finally:
        if sink is not None:
            sink.close()

    if config.on_error == "raise":
        failed = [r for r in final if not r.ok]
        if failed:
            raise SweepFailure(failed)
    return SweepOutcome(records=final, stats=stats)
