"""Result sinks and aggregation.

The runner's durable output is JSONL — one line per settled run (metrics
summary, wall-clock, peak RSS, cache/attempt accounting) plus a trailing
``sweep_summary`` line.  The aggregation helpers fold records back into
the nested ``{protocol: {load: ExperimentResult}}`` shape the existing
report/benchmark machinery consumes, so a figure built on the runner can
keep using :func:`~repro.harness.report.series_from_results` unchanged.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.harness.experiment import ExperimentResult
from repro.runner.records import RunRecord, SweepStats


class JsonlSink:
    """Append-mode JSONL writer, flushed per record so a killed sweep still
    leaves a usable partial ledger."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")

    def write_record(self, record: RunRecord) -> None:
        self._write({"type": "run", **record.to_json_dict()})

    def write_profile(self, profile_path: os.PathLike,
                      run_hash: Optional[str] = None,
                      sort: str = "cumulative") -> None:
        """Record where a cProfile dump for this ledger's run(s) landed, so
        a profile on disk is always discoverable from the ledger alone."""
        self._write({
            "type": "profile",
            "path": str(profile_path),
            "run": run_hash,
            "sort": sort,
        })

    def write_summary(self, stats: SweepStats) -> None:
        self._write({
            "type": "sweep_summary",
            "total": stats.total,
            "computed": stats.computed,
            "cached": stats.cached,
            "failed": stats.failed,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "wall_time_s": round(stats.wall_time, 6),
            "failures": stats.failures,
        })

    def _write(self, row: Dict) -> None:
        self._fh.write(json.dumps(row, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def results_by_protocol_load(
    records: List[RunRecord],
) -> Dict[str, Dict[float, ExperimentResult]]:
    """Fold ok records into the report-layer shape.  Multi-seed sweeps keep
    the first seed per (protocol, load) — use :func:`replications_from_records`
    when you want the spread."""
    out: Dict[str, Dict[float, ExperimentResult]] = {}
    for rec in records:
        if not rec.ok or rec.result is None:
            continue
        by_load = out.setdefault(rec.descriptor.protocol, {})
        by_load.setdefault(rec.descriptor.load, rec.result)
    return out


def results_by_load(records: List[RunRecord],
                    protocol: Optional[str] = None,
                    ) -> Dict[float, ExperimentResult]:
    """Single-protocol view (the ``sweep_loads`` return shape)."""
    out: Dict[float, ExperimentResult] = {}
    for rec in records:
        if not rec.ok or rec.result is None:
            continue
        if protocol is not None and rec.descriptor.protocol != protocol:
            continue
        out.setdefault(rec.descriptor.load, rec.result)
    return out


def metric_values_by_seed(records: List[RunRecord],
                          metric) -> List[float]:
    """Extract a scalar metric from ok records, ordered by seed — the
    input :class:`~repro.harness.replication.Replication` wants."""
    ordered = sorted((r for r in records if r.ok and r.result is not None),
                     key=lambda r: r.descriptor.seed)
    return [metric(r.result) for r in ordered]
