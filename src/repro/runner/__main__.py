"""Entry point for ``python -m repro.runner``."""

import sys

from repro.runner.cli import main

if __name__ == "__main__":
    sys.exit(main())
