"""Content-addressed on-disk result cache.

Results are keyed by ``descriptor content hash`` (every input that
determines the outcome — see :meth:`RunDescriptor.key_dict`) under a
*code-version salt* directory: a digest of every ``repro`` source file.
Touch any simulator/transport/harness source and the salt changes, so a
re-run recomputes instead of serving results produced by different code.

Layout::

    <cache_dir>/<salt>/<hash[:2]>/<hash>.pkl

Entries are pickled :class:`ExperimentResult` objects written atomically
(temp file + rename); a corrupt or unreadable entry counts as a miss and
is removed.  Set ``PASE_CACHE_DIR`` to relocate the default cache root.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Optional

from repro.harness.experiment import ExperimentResult

DEFAULT_CACHE_ENV = "PASE_CACHE_DIR"
_DEFAULT_CACHE_DIR = "~/.cache/pase-repro"


def default_cache_dir() -> Path:
    return Path(os.environ.get(DEFAULT_CACHE_ENV, _DEFAULT_CACHE_DIR)).expanduser()


@lru_cache(maxsize=1)
def code_version_salt() -> str:
    """Digest of the installed ``repro`` package's source (first 16 hex
    chars) — the cache's code-version component."""
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


class ResultCache:
    """Pickle-per-entry cache with hit/miss/store counters."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None,
                 salt: Optional[str] = None) -> None:
        self.root = Path(cache_dir) if cache_dir else default_cache_dir()
        self.salt = salt if salt is not None else code_version_salt()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, content_hash: str) -> Path:
        return self.root / self.salt / content_hash[:2] / f"{content_hash}.pkl"

    def get(self, content_hash: Optional[str]) -> Optional[ExperimentResult]:
        """Return the cached result or None (uncacheable keys always miss)."""
        if content_hash is None:
            self.misses += 1
            return None
        path = self.path_for(content_hash)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupt/truncated entry (e.g. a killed writer predating the
            # atomic rename): treat as a miss and clear it.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        if not isinstance(result, ExperimentResult):
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, content_hash: Optional[str],
            result: ExperimentResult) -> bool:
        """Store atomically; returns False for uncacheable keys."""
        if content_hash is None:
            return False
        path = self.path_for(content_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return True
