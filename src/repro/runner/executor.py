"""Parallel execution: a process-per-run pool with crash isolation.

Each grid point runs in its *own* worker process (points cost seconds to
minutes, so spawn overhead is noise).  That buys the strongest isolation
available: a per-run timeout is a ``terminate()`` of exactly one process,
and a segfault/OOM-kill takes down one point, never the pool.  Workers are
forked (where available) so legacy closure-based scenario factories ride
along by memory inheritance instead of pickling; only the *result* crosses
the pipe, via :meth:`ExperimentResult.detach`.

``jobs=1`` bypasses subprocesses entirely and executes in-process, in
descriptor order — the deterministic legacy path (no timeout enforcement,
since there is no second process to do the killing).
"""

from __future__ import annotations

import multiprocessing as mp
import resource
import time
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.runner.records import (
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunRecord,
)
from repro.runner.spec import RunDescriptor

#: A work function maps a descriptor to a picklable result.
WorkFn = Callable[[RunDescriptor], object]


def execute_descriptor(descriptor: RunDescriptor):
    """Default work function: run the experiment, return a detached result."""
    return descriptor.run().detach()


def _peak_rss_kb() -> int:
    """Peak RSS of the calling process in KiB (Linux ru_maxrss unit)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _worker_main(conn, work_fn: WorkFn, descriptor: RunDescriptor) -> None:
    """Worker entry: run one point, report exactly one message, exit."""
    try:
        result = work_fn(descriptor)
        payload = ("ok", result, _peak_rss_kb())
    except BaseException as exc:  # noqa: BLE001 - reported, not swallowed
        tail = traceback.format_exc(limit=20)
        payload = ("error", f"{exc!r}\n{tail}", _peak_rss_kb())
    try:
        conn.send(payload)
    except Exception as exc:  # e.g. the result itself fails to pickle
        conn.send(("error", f"result not transferable: {exc!r}",
                   _peak_rss_kb()))
    finally:
        conn.close()


@dataclass
class _Slot:
    """One live worker and the bookkeeping to judge it."""

    index: int
    descriptor: RunDescriptor
    attempt: int
    process: mp.process.BaseProcess
    conn: object
    started: float
    deadline: Optional[float]


@dataclass
class _PendingRetry:
    index: int
    descriptor: RunDescriptor
    attempt: int
    not_before: float


class ProcessPoolRunner:
    """Fan descriptors out over worker processes.

    Parameters
    ----------
    jobs:
        Concurrent workers.  ``1`` means serial in-process execution.
    timeout:
        Per-run wall-clock budget in seconds (subprocess mode only); a
        run past its budget is killed and counts as a failed attempt.
    retries:
        Extra attempts after a failed/timed-out/crashed one.
    backoff:
        Base delay before attempt *n*'s relaunch (``backoff * n`` seconds).
    work_fn:
        Override the per-descriptor work (tests inject sleepers/crashers).
    """

    def __init__(
        self,
        jobs: int = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.25,
        work_fn: WorkFn = execute_descriptor,
        poll_interval: float = 0.02,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.work_fn = work_fn
        self.poll_interval = poll_interval
        try:
            self._ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._ctx = mp.get_context()

    # -- serial path ------------------------------------------------------
    def _run_serial(self, descriptors: Sequence[RunDescriptor],
                    on_record) -> List[RunRecord]:
        records: List[RunRecord] = []
        for descriptor in descriptors:
            started = time.perf_counter()
            errors: List[str] = []
            record = None
            for attempt in range(1, self.retries + 2):
                try:
                    result = self.work_fn(descriptor)
                except Exception:  # noqa: BLE001
                    errors.append(traceback.format_exc(limit=20))
                    if attempt <= self.retries:
                        time.sleep(self.backoff * attempt)
                    continue
                record = RunRecord(
                    descriptor=descriptor, status=STATUS_OK, result=result,
                    attempts=attempt,
                    wallclock=time.perf_counter() - started,
                    peak_rss_kb=_peak_rss_kb(),
                )
                break
            if record is None:
                record = RunRecord(
                    descriptor=descriptor, status=STATUS_FAILED,
                    attempts=self.retries + 1,
                    wallclock=time.perf_counter() - started,
                    peak_rss_kb=_peak_rss_kb(),
                    error="\n---\n".join(errors),
                )
            records.append(record)
            if on_record is not None:
                on_record(record)
        return records

    # -- parallel path ----------------------------------------------------
    def _launch(self, index: int, descriptor: RunDescriptor,
                attempt: int) -> _Slot:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.work_fn, descriptor),
            daemon=True,
        )
        process.start()
        child_conn.close()
        now = time.perf_counter()
        deadline = None if self.timeout is None else now + self.timeout
        return _Slot(index=index, descriptor=descriptor, attempt=attempt,
                     process=process, conn=parent_conn, started=now,
                     deadline=deadline)

    @staticmethod
    def _reap(slot: _Slot, kill: bool = False) -> Optional[int]:
        """Join (killing first if asked) and release the slot's process;
        returns its exit code."""
        if kill and slot.process.is_alive():
            slot.process.terminate()
            slot.process.join(timeout=2.0)
            if slot.process.is_alive():  # pragma: no cover - stubborn child
                slot.process.kill()
                slot.process.join()
        else:
            slot.process.join()
        exitcode = slot.process.exitcode
        slot.conn.close()
        slot.process.close()
        return exitcode

    def _finish(self, slot: _Slot, status: str, result, error,
                errors_so_far: List[str], started_first: float,
                rss: Optional[int]) -> RunRecord:
        return RunRecord(
            descriptor=slot.descriptor, status=status, result=result,
            attempts=slot.attempt,
            wallclock=time.perf_counter() - started_first,
            peak_rss_kb=rss,
            error="\n---\n".join(errors_so_far + [error]) if error else None,
        )

    def _run_parallel(self, descriptors: Sequence[RunDescriptor],
                      on_record) -> List[RunRecord]:
        records: List[Optional[RunRecord]] = [None] * len(descriptors)
        first_start = [0.0] * len(descriptors)
        attempt_errors: List[List[str]] = [[] for _ in descriptors]
        queue = list(enumerate(descriptors))
        queue.reverse()  # pop() from the front of the original order
        retries: List[_PendingRetry] = []
        active: List[_Slot] = []

        def settle(slot: _Slot, status: str, error: Optional[str],
                   result=None, rss: Optional[int] = None) -> None:
            """Record a terminal outcome or schedule a retry."""
            idx = slot.index
            if status != STATUS_OK and slot.attempt <= self.retries:
                if error:
                    attempt_errors[idx].append(f"[attempt {slot.attempt}: "
                                               f"{status}] {error}")
                retries.append(_PendingRetry(
                    index=idx, descriptor=slot.descriptor,
                    attempt=slot.attempt + 1,
                    not_before=time.perf_counter() + self.backoff * slot.attempt,
                ))
                return
            record = self._finish(slot, status, result, error,
                                  attempt_errors[idx], first_start[idx], rss)
            records[idx] = record
            if on_record is not None:
                on_record(record)

        while queue or retries or active:
            # Fill free slots: due retries first (they are oldest work).
            while len(active) < self.jobs and (queue or retries):
                now = time.perf_counter()
                due = [r for r in retries if r.not_before <= now]
                if due:
                    nxt = min(due, key=lambda r: r.not_before)
                    retries.remove(nxt)
                    slot = self._launch(nxt.index, nxt.descriptor, nxt.attempt)
                    active.append(slot)
                elif queue:
                    index, descriptor = queue.pop()
                    first_start[index] = time.perf_counter()
                    slot = self._launch(index, descriptor, attempt=1)
                    active.append(slot)
                else:
                    break  # only not-yet-due retries remain

            progressed = False
            for slot in list(active):
                now = time.perf_counter()
                if slot.conn.poll():
                    try:
                        kind, payload, rss = slot.conn.recv()
                    except (EOFError, OSError):
                        # EOF with no message: the worker died before it
                        # could report (segfault, os._exit, OOM kill).
                        active.remove(slot)
                        exitcode = self._reap(slot)
                        progressed = True
                        settle(slot, STATUS_CRASHED,
                               f"worker died with exit code {exitcode}")
                        continue
                    active.remove(slot)
                    self._reap(slot)
                    progressed = True
                    if kind == "ok":
                        settle(slot, STATUS_OK, None, result=payload, rss=rss)
                    else:
                        settle(slot, STATUS_FAILED, str(payload), rss=rss)
                elif slot.deadline is not None and now > slot.deadline:
                    active.remove(slot)
                    self._reap(slot, kill=True)
                    progressed = True
                    settle(slot, STATUS_TIMEOUT,
                           f"exceeded {self.timeout:g} s budget")
                elif not slot.process.is_alive():
                    # Died without reporting: segfault, os._exit, OOM kill.
                    exitcode = slot.process.exitcode
                    # Drain any message that raced the exit check.
                    if slot.conn.poll():
                        continue
                    active.remove(slot)
                    self._reap(slot)
                    progressed = True
                    settle(slot, STATUS_CRASHED,
                           f"worker died with exit code {exitcode}")
            if not progressed:
                time.sleep(self.poll_interval)

        return [r for r in records if r is not None]

    def run(self, descriptors: Sequence[RunDescriptor],
            on_record: Optional[Callable[[RunRecord], None]] = None,
            ) -> List[RunRecord]:
        """Execute every descriptor; returns records in input order.  The
        optional ``on_record`` callback fires as each point settles."""
        descriptors = list(descriptors)
        if not descriptors:
            return []
        if self.jobs == 1:
            return self._run_serial(descriptors, on_record)
        return self._run_parallel(descriptors, on_record)
