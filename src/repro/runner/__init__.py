"""repro.runner — parallel sweep execution with caching and crash isolation.

Every figure reproduction is an embarrassingly-parallel grid of
(protocol, scenario, load, seed) points.  This subsystem turns such grids
into :class:`RunDescriptor` lists (:mod:`repro.runner.spec`), fans them out
over per-run worker processes with timeouts, bounded retries, and crash
isolation (:mod:`repro.runner.executor`), serves repeat points from a
content-addressed on-disk cache salted by code version
(:mod:`repro.runner.cache`), and streams a JSONL ledger with wall-clock,
peak-RSS, and cache counters (:mod:`repro.runner.sink`).

Typical library use::

    from repro.runner import (RunnerConfig, ScenarioSpec, SweepSpec, run_sweep)

    spec = SweepSpec(protocols=("pase", "dctcp"),
                     scenario=ScenarioSpec("left-right"),
                     loads=(0.1, 0.5, 0.9), seeds=(1, 2, 3))
    outcome = run_sweep(spec.expand(), RunnerConfig(jobs=4, timeout=1800))
    print(outcome.summary_line())

or from the shell: ``python -m repro.runner --help``.
"""

from repro.runner.api import (
    RunnerConfig,
    SweepFailure,
    SweepOutcome,
    run_sweep,
)
from repro.runner.cache import ResultCache, code_version_salt, default_cache_dir
from repro.runner.executor import ProcessPoolRunner, execute_descriptor
from repro.runner.records import (
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunRecord,
    SweepStats,
)
from repro.runner.sink import (
    JsonlSink,
    metric_values_by_seed,
    results_by_load,
    results_by_protocol_load,
)
from repro.runner.spec import (
    RunDescriptor,
    ScenarioSpec,
    SweepSpec,
    descriptors_from_grid,
)

__all__ = [
    "RunnerConfig",
    "SweepFailure",
    "SweepOutcome",
    "run_sweep",
    "ResultCache",
    "code_version_salt",
    "default_cache_dir",
    "ProcessPoolRunner",
    "execute_descriptor",
    "STATUS_CRASHED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "RunRecord",
    "SweepStats",
    "JsonlSink",
    "metric_values_by_seed",
    "results_by_load",
    "results_by_protocol_load",
    "RunDescriptor",
    "ScenarioSpec",
    "SweepSpec",
    "descriptors_from_grid",
]
