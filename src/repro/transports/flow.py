"""Flow abstraction shared by workloads, transports, and metrics.

A :class:`Flow` is one unit of application work — a single RPC or a long
running connection (paper §3.1.1).  Workload generators create flows; the
experiment harness instantiates transport agents for them; receivers stamp
``completion_time`` when the last byte arrives; metrics read the stamps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.packet import DEFAULT_MTU
from repro.utils.validation import check_non_negative, check_positive


@dataclass
class Flow:
    """One transfer of ``size_bytes`` from host ``src`` to host ``dst``."""

    flow_id: int
    src: int
    dst: int
    size_bytes: int
    start_time: float
    #: Relative deadline (seconds from ``start_time``), or None if the flow
    #: has no deadline.
    deadline: Optional[float] = None
    #: Background flows (the paper's two long-lived flows) are excluded from
    #: FCT statistics.
    background: bool = False
    #: Task (coflow) membership for task-aware scheduling (§3.1.1 notes the
    #: FlowSize criterion can be replaced by a task id, per Baraat).  Flows
    #: of one partition-aggregate query share a task id.
    task_id: Optional[int] = None
    mtu: int = DEFAULT_MTU

    # -- runtime results, stamped by the transport ----------------------
    completion_time: Optional[float] = None
    #: Set when the transport gave up on the flow (PASE/PDQ early
    #: termination of deadline-infeasible flows).  Terminated flows never
    #: complete and count as missed deadlines.
    terminated: bool = False
    #: Data packets transmitted (including retransmissions).
    pkts_sent: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    probes_sent: int = 0
    # -- fault-injection observability (PASE DCTCP fallback) ------------
    #: Times this flow entered DCTCP fallback after losing its arbitrators.
    fallback_episodes: int = 0
    #: Total seconds spent in fallback.
    fallback_time: float = 0.0
    #: Seconds from each fallback entry until the next arbitration response
    #: (one entry per *recovered* episode; episodes still open at completion
    #: contribute to ``fallback_time`` only).
    recovery_latencies: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive("size_bytes", self.size_bytes)
        check_non_negative("start_time", self.start_time)
        check_positive("mtu", self.mtu)
        if self.deadline is not None:
            check_positive("deadline", self.deadline)

    @property
    def total_pkts(self) -> int:
        """Number of MTU-sized packets carrying this flow."""
        return max(1, math.ceil(self.size_bytes / self.mtu))

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time: arrival until the receiver has every byte."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.start_time

    @property
    def absolute_deadline(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return self.start_time + self.deadline

    @property
    def met_deadline(self) -> Optional[bool]:
        """True/False once completed (None while in flight or deadline-less)."""
        if self.deadline is None:
            return None
        if self.completion_time is None:
            return False
        return self.fct <= self.deadline

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flow(#{self.flow_id} {self.src}->{self.dst} "
            f"{self.size_bytes}B t0={self.start_time:.6f})"
        )
