"""pFabric (Alizadeh et al., SIGCOMM 2013): in-network prioritization alone.

Packets carry the flow's *remaining size* as their priority; switches run
:class:`repro.sim.queues.PFabricQueue` (priority scheduling + priority
dropping over a shallow ~2×BDP buffer).  Rate control is minimal, per the
pFabric paper:

* flows start at line rate (``init_cwnd`` = BDP, Table 3: 38 packets),
* no ECN, no per-ACK window adjustments,
* loss recovery by small fixed RTO (Table 3: 1 ms ~ 3.3 RTT); the window is
  halved only under *persistent* loss (consecutive timeouts) and restored
  additively — transient drops are expected and absorbed by prioritization.

This module also provides :func:`pfabric_queue_factory` so topologies can be
built with pFabric switches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.packet import HEADER_SIZE, Packet, PacketKind, alloc_packet
from repro.sim.queues import PFabricQueue
from repro.transports.base import SenderAgent, TransportConfig
from repro.utils.units import MSEC


@dataclass
class PfabricConfig(TransportConfig):
    """Table 3 defaults: qSize = 76 pkts (2 BDP), initCwnd = 38 pkts (BDP),
    minRTO = 1 ms."""

    init_cwnd: float = 38.0
    min_rto: float = 1 * MSEC
    max_rto: float = 0.1
    #: Consecutive timeouts before the window is considered under persistent
    #: loss and halved.
    persistence_threshold: int = 2
    #: Consecutive timeouts before the flow enters *probe mode* (pFabric
    #: §4.3): it stops retransmitting data and sends one header-only probe
    #: per RTO until a response arrives, avoiding retransmission storms
    #: from chronically starved low-priority flows.
    probe_mode_threshold: int = 5
    slow_start: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.persistence_threshold < 1:
            raise ValueError("persistence_threshold must be >= 1")
        if self.probe_mode_threshold < self.persistence_threshold:
            raise ValueError(
                "probe_mode_threshold must be >= persistence_threshold")


def pfabric_queue_factory(capacity_pkts: int = 76):
    """Queue factory for building pFabric fabrics (2×BDP shallow buffers)."""
    def factory() -> PFabricQueue:
        return PFabricQueue(capacity_pkts=capacity_pkts)
    return factory


class PfabricSender(SenderAgent):
    """Line-rate sender; priority = remaining flow size."""

    def __init__(self, sim, host, flow, config: PfabricConfig = None, on_done=None):
        cfg = config or PfabricConfig()
        super().__init__(sim, host, flow, cfg, on_done)
        # Never open the window beyond what the flow actually needs.
        self.cwnd = min(cfg.init_cwnd, float(self.total_pkts))
        self._line_rate_cwnd = self.cwnd
        self._consecutive_timeouts = 0
        self.probe_mode = False

    # -- hooks -----------------------------------------------------------
    def decorate_packet(self, pkt: Packet) -> None:
        # Remaining size in bytes: smaller value = higher priority.  ACKs
        # copy this priority so they also win the reverse path.
        pkt.priority = float(self.remaining_bytes)
        pkt.ecn_capable = False

    def on_ack_window_update(self, ack: Packet, newly_acked: bool) -> None:
        if newly_acked:
            self._consecutive_timeouts = 0
            self.probe_mode = False
            if self.cwnd < self._line_rate_cwnd:
                # Additive restoration toward line rate after a loss episode.
                self.cwnd = min(self._line_rate_cwnd,
                                self.cwnd + 1.0 / max(self.cwnd, 1.0))

    def on_fast_retransmit(self) -> None:
        # Drops of low-priority packets are business as usual in pFabric;
        # retransmit without touching the window.
        pass

    def on_timeout_window_update(self) -> None:
        self._consecutive_timeouts += 1
        cfg: PfabricConfig = self.config
        if self._consecutive_timeouts >= cfg.probe_mode_threshold:
            self.probe_mode = True
        if self._consecutive_timeouts >= cfg.persistence_threshold:
            # Persistent loss: this flow is being starved by higher-priority
            # traffic; fall back to probing with a tiny window.
            self.cwnd = max(1.0, self.cwnd / 2)

    def handle_timeout(self) -> None:
        if not self.probe_mode:
            super().handle_timeout()
            return
        # Probe mode (pFabric §4.3): a chronically starved flow stops
        # retransmitting payloads and sends one header-only probe per RTO;
        # the first probe reply (or any ACK) drops it back to normal
        # operation.  on_timeout_window_update already ran via _on_rto.
        self.on_timeout_window_update()
        probe = alloc_packet(
            PacketKind.PROBE, self.host.node_id, self.flow.dst,
            self.flow.flow_id, seq=min(self.cum_ack, self.total_pkts - 1),
            size=HEADER_SIZE,
        )
        probe.priority = float(self.remaining_bytes)
        probe.ecn_capable = False
        probe.sent_time = self.sim.now
        self.flow.probes_sent += 1
        self.host.send(probe)
        self._rearm_rto()

    def handle_special_ack(self, ack: Packet) -> bool:
        if ack.ack_sacks == -1:
            # Probe reply for un-received data: leave probe mode and let the
            # normal timeout path retransmit.
            self.probe_mode = False
            self._consecutive_timeouts = 0
            for lost in sorted(self._inflight):
                if lost not in self._retx_queue and not self._acked[lost]:
                    self._retx_queue.append(lost)
            self._inflight.clear()
            self._rearm_rto()
            self.send_window()
            return True
        return False
