"""L2DCT (Munir et al., INFOCOM 2013): size-aware DCTCP.

L2DCT approximates least-attained-service scheduling with endpoint control
laws alone: a flow's additive-increase gain shrinks and its multiplicative
backoff grows as the flow sends more data, so short flows ramp fast and long
flows yield.  Following the L2DCT paper, the weight ``w_c`` decays from
``w_max`` to ``w_min`` as attained service grows from ``ramp_low_bytes`` to
``ramp_high_bytes`` (we interpolate in log-space over that band, matching the
bucketed weights in the original):

* increase: ``cwnd += w_c / cwnd`` per ACK (i.e. ``w_c`` MSS per RTT),
* decrease: ``cwnd *= 1 - (alpha/2) * (w_max / (w_c + w_max))`` — long flows
  (small ``w_c``) back off by up to ``alpha/2 * 1``, short flows by roughly
  half that, preserving L2DCT's size-differentiated penalty ordering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.transports.dctcp import DctcpConfig, DctcpSender
from repro.utils.units import KB, MB
from repro.utils.validation import check_positive


@dataclass
class L2dctConfig(DctcpConfig):
    """Table 3: minRTO = 10 ms; weight band per the L2DCT paper."""

    w_max: float = 2.5
    w_min: float = 0.125
    ramp_low_bytes: float = 10 * KB
    ramp_high_bytes: float = 1 * MB

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("w_min", self.w_min)
        if self.w_max < self.w_min:
            raise ValueError("w_max must be >= w_min")
        if self.ramp_high_bytes <= self.ramp_low_bytes:
            raise ValueError("ramp_high_bytes must exceed ramp_low_bytes")


class L2dctSender(DctcpSender):
    """DCTCP with attained-service-dependent gains."""

    def __init__(self, sim, host, flow, config: L2dctConfig = None, on_done=None):
        super().__init__(sim, host, flow, config or L2dctConfig(), on_done)

    @property
    def attained_bytes(self) -> int:
        """Bytes successfully delivered so far (the LAS scheduling key)."""
        return self.pkts_acked * self.mtu

    def weight(self) -> float:
        """Current flow weight ``w_c`` (log-interpolated between buckets)."""
        cfg: L2dctConfig = self.config
        sent = self.attained_bytes
        if sent <= cfg.ramp_low_bytes:
            return cfg.w_max
        if sent >= cfg.ramp_high_bytes:
            return cfg.w_min
        span = math.log(cfg.ramp_high_bytes / cfg.ramp_low_bytes)
        progress = math.log(sent / cfg.ramp_low_bytes) / span
        return cfg.w_max - progress * (cfg.w_max - cfg.w_min)

    def increase_gain(self) -> float:
        return self.weight()

    def backoff_factor(self) -> float:
        cfg: L2dctConfig = self.config
        alpha = self.estimator.alpha
        # size_penalty spans [0.5, ~0.95]: short flows (w_c = w_max) halve
        # the DCTCP penalty, long flows (w_c = w_min) take nearly all of it.
        size_penalty = cfg.w_max / (self.weight() + cfg.w_max)
        return alpha * size_penalty
