"""D2TCP (Vamanan et al., SIGCOMM 2012): deadline-aware DCTCP.

D2TCP modulates DCTCP's backoff by a *deadline imminence factor* ``d``:
the penalty applied on congestion is ``p = alpha ** d`` so that far-deadline
flows (``d < 1``) back off more than alpha would dictate and near-deadline
flows (``d > 1``) back off less.  ``d = Tc / D`` where ``Tc`` is the time the
flow needs to finish at its current rate and ``D`` is the time left until its
deadline, clamped to [0.5, 2.0] per the D2TCP paper.  Deadline-less flows use
``d = 1`` and degenerate to DCTCP exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transports.dctcp import DctcpConfig, DctcpSender


@dataclass
class D2tcpConfig(DctcpConfig):
    d_min: float = 0.5
    d_max: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 < self.d_min <= self.d_max:
            raise ValueError(
                f"need 0 < d_min <= d_max, got [{self.d_min}, {self.d_max}]"
            )


class D2tcpSender(DctcpSender):
    """DCTCP with gamma-corrected (deadline-aware) backoff."""

    def __init__(self, sim, host, flow, config: D2tcpConfig = None, on_done=None):
        super().__init__(sim, host, flow, config or D2tcpConfig(), on_done)

    def deadline_imminence(self) -> float:
        """``d = Tc / D`` clamped to [d_min, d_max]; 1.0 without a deadline."""
        cfg: D2tcpConfig = self.config
        deadline_at = self.flow.absolute_deadline
        if deadline_at is None:
            return 1.0
        time_left = deadline_at - self.sim.now
        if time_left <= 0:
            return cfg.d_max  # deadline missed or imminent: most aggressive
        remaining_pkts = self.total_pkts - self.cum_ack
        rate_pkts = max(self.cwnd, 1.0) / max(self.srtt, 1e-9)
        time_needed = remaining_pkts / rate_pkts
        d = time_needed / time_left
        return min(cfg.d_max, max(cfg.d_min, d))

    def backoff_factor(self) -> float:
        """p = alpha ** d.  alpha in [0,1] so d > 1 shrinks the penalty."""
        alpha = self.estimator.alpha
        if alpha <= 0.0:
            return 0.0
        return alpha ** self.deadline_imminence()
