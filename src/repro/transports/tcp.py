"""Plain TCP (Reno-style) sender.

Not evaluated in the paper's figures but included as the simplest
self-adjusting endpoint: slow start, AIMD, fast retransmit, RTO.  The base
:class:`~repro.transports.base.SenderAgent` already implements exactly these
defaults, so this is a named alias plus a config with classic settings.
It doubles as the reference protocol in the simulator's own tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transports.base import SenderAgent, TransportConfig


@dataclass
class TcpConfig(TransportConfig):
    init_cwnd: float = 2.0


class TcpSender(SenderAgent):
    """Reno semantics straight from the base class."""

    def __init__(self, sim, host, flow, config: TcpConfig = None, on_done=None):
        super().__init__(sim, host, flow, config or TcpConfig(), on_done)

    def decorate_packet(self, pkt) -> None:
        pkt.ecn_capable = False  # classic TCP ignores ECN
