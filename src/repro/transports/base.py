"""Reliable window-based transport base.

Every protocol in the paper (DCTCP, D2TCP, L2DCT, pFabric, PASE's end-host
transport) is a window-based, per-packet-ACKed transport differing only in
how the window reacts to ACKs, ECN marks, losses, and timeouts.  This module
implements the shared machinery once:

* selective per-packet ACKs with a cumulative ack number,
* fast retransmit after ``dupack_threshold`` duplicate cumulative ACKs
  (one recovery episode per window, NewReno-style),
* a single retransmission timer with exponential backoff,
* EWMA RTT estimation from non-retransmitted packets,
* completion detection on both ends.

Subclasses override the small hook surface at the bottom of
:class:`SenderAgent` (``decorate_packet``, ``on_ack_window_update``,
``on_fast_retransmit``, ``on_timeout_window_update``).  PDQ replaces the
window engine with pacing but reuses the receiver and reliability state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.sim.engine import Event, Simulator
from repro.sim.packet import (
    HEADER_SIZE,
    Packet,
    PacketKind,
    make_ack_packet,
    make_data_packet,
)
from repro.sim.trace import CAT_RETRANSMIT, CAT_TIMEOUT
from repro.transports.flow import Flow
from repro.utils.units import MSEC, USEC
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.node import Host

#: Callback fired by the receiver when the final data packet lands.
CompletionCallback = Callable[[Flow], None]


@dataclass
class TransportConfig:
    """Knobs shared by all window-based transports (Table 3 defaults are in
    each protocol's own config subclass)."""

    init_cwnd: float = 2.0
    max_cwnd: float = 1_000.0
    min_rto: float = 10 * MSEC
    max_rto: float = 2.0
    dupack_threshold: int = 3
    #: Initial smoothed-RTT guess before any sample arrives.
    initial_rtt: float = 300 * USEC
    #: Enable classic slow start below ``ssthresh``.
    slow_start: bool = True

    def __post_init__(self) -> None:
        check_positive("init_cwnd", self.init_cwnd)
        check_positive("min_rto", self.min_rto)
        check_positive("initial_rtt", self.initial_rtt)


class ReceiverAgent:
    """Receives DATA/PROBE packets, sends ACKs, detects completion."""

    def __init__(
        self,
        sim: Simulator,
        host: "Host",
        flow: Flow,
        on_complete: Optional[CompletionCallback] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow = flow
        self.on_complete = on_complete
        self.total_pkts = flow.total_pkts
        self._received: List[bool] = [False] * self.total_pkts
        self._num_received = 0
        self._cum_ack = 0
        host.attach_receiver(flow.flow_id, self)

    @property
    def cum_ack(self) -> int:
        return self._cum_ack

    @property
    def num_received(self) -> int:
        return self._num_received

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == PacketKind.PROBE:
            self._ack_probe(pkt)
            return
        seq = pkt.seq
        if 0 <= seq < self.total_pkts and not self._received[seq]:
            self._received[seq] = True
            self._num_received += 1
            while self._cum_ack < self.total_pkts and self._received[self._cum_ack]:
                self._cum_ack += 1
            if self._num_received == self.total_pkts and not self.flow.completed:
                self.flow.completion_time = self.sim.now
                if self.on_complete is not None:
                    self.on_complete(self.flow)
        ack = make_ack_packet(pkt, self._cum_ack, queue_index=pkt.queue_index)
        self.host.send(ack)

    def _ack_probe(self, probe: Packet) -> None:
        """Answer a PASE-style probe: echo whether ``probe.seq`` has arrived.

        ``ack_sacks`` carries the probed seq when the data was received and
        -1 when it was not, letting the sender distinguish "lost" from
        "still queued behind higher priorities" (paper §3.2).
        """
        ack = make_ack_packet(probe, self._cum_ack, queue_index=probe.queue_index)
        got_it = 0 <= probe.seq < self.total_pkts and self._received[probe.seq]
        ack.ack_sacks = probe.seq if got_it else -1
        self.host.send(ack)


class SenderAgent:
    """Window-based reliable sender with protocol hooks."""

    def __init__(
        self,
        sim: Simulator,
        host: "Host",
        flow: Flow,
        config: Optional[TransportConfig] = None,
        on_done: Optional[CompletionCallback] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow = flow
        self.config = config or TransportConfig()
        self.on_done = on_done
        self.total_pkts = flow.total_pkts
        self.mtu = flow.mtu

        # -- window state ------------------------------------------------
        self.cwnd: float = self.config.init_cwnd
        self.ssthresh: float = self.config.max_cwnd
        self.next_new: int = 0
        self._acked: List[bool] = [False] * self.total_pkts
        self.pkts_acked: int = 0
        self.cum_ack: int = 0
        self._inflight: set = set()
        self._retx_queue: List[int] = []
        self._dupacks: int = 0
        self._recovery_until: int = -1

        # -- RTT / RTO ---------------------------------------------------
        self.srtt: float = self.config.initial_rtt
        self.rttvar: float = self.config.initial_rtt / 2
        #: Minimum RTT sample seen — approximates the propagation RTT
        #: (queueing-free), which rate-to-window conversions should use.
        self._rtt_min_sample: Optional[float] = None
        self._rto_backoff: int = 0
        self._rto_event: Optional[Event] = None

        self.started = False
        self.finished = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Register with the host and open the window."""
        if self.started:
            return
        self.started = True
        self.host.attach_sender(self.flow.flow_id, self)
        self.send_window()

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        self._cancel_rto()
        self.host.detach_flow(self.flow.flow_id)
        if self.on_done is not None:
            self.on_done(self.flow)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    @property
    def remaining_bytes(self) -> int:
        """Bytes not yet cumulatively acknowledged."""
        return max(0, self.flow.size_bytes - self.cum_ack * self.mtu)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def usable_window(self) -> int:
        return max(0, int(self.cwnd) - self.inflight)

    def send_window(self) -> None:
        """Transmit as many packets as the window allows (retransmissions
        take precedence over new data)."""
        if self.finished:
            return
        budget = self.usable_window()
        while budget > 0:
            item = self._next_seq_to_send()
            if item is None:
                break
            seq, is_retx = item
            self._transmit(seq, retransmit=is_retx)
            budget -= 1

    def _next_seq_to_send(self) -> Optional[tuple]:
        while self._retx_queue:
            seq = self._retx_queue.pop(0)
            if self._acked[seq] or seq in self._inflight:
                continue
            return seq, True
        if self.next_new < self.total_pkts:
            seq = self.next_new
            self.next_new += 1
            return seq, False
        return None

    def _packet_size(self, seq: int) -> int:
        """Last packet carries the flow's tail bytes; others are full MTU."""
        if seq == self.total_pkts - 1:
            tail = self.flow.size_bytes - seq * self.mtu
            return max(HEADER_SIZE, tail)
        return self.mtu

    def _transmit(self, seq: int, retransmit: bool = False) -> None:
        pkt = make_data_packet(
            self.host.node_id, self.flow.dst, self.flow.flow_id, seq,
            size=self._packet_size(seq),
        )
        pkt.sent_time = self.sim.now
        pkt.is_retransmit = retransmit
        pkt.deadline = self.flow.absolute_deadline
        pkt.remaining_bytes = self.remaining_bytes
        self.decorate_packet(pkt)
        self._inflight.add(seq)
        self.flow.pkts_sent += 1
        if pkt.is_retransmit:
            self.flow.retransmissions += 1
            if self.sim.tracer is not None:
                self.sim.tracer.record(self.sim.now, CAT_RETRANSMIT,
                                       self.flow.flow_id, seq=seq)
        self.host.send(pkt)
        self._arm_rto()

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def on_packet(self, ack: Packet) -> None:
        if self.finished:
            return
        if self.handle_special_ack(ack):
            return
        sack = ack.ack_sacks
        newly_acked = False
        if 0 <= sack < self.total_pkts and not self._acked[sack]:
            self._acked[sack] = True
            self.pkts_acked += 1
            newly_acked = True
            if not ack.is_retransmit:
                self._update_rtt(ack)
        self._inflight.discard(sack)

        old_cum = self.cum_ack
        while self.cum_ack < self.total_pkts and self._acked[self.cum_ack]:
            self.cum_ack += 1

        if self.cum_ack > old_cum:
            self._dupacks = 0
            self._rto_backoff = 0
            self._rearm_rto()
        elif newly_acked and sack > self.cum_ack:
            self._maybe_fast_retransmit()

        self.on_ack_window_update(ack, newly_acked)

        if self.cum_ack >= self.total_pkts:
            self._finish()
            return
        self.send_window()

    def _maybe_fast_retransmit(self) -> None:
        self._dupacks += 1
        if self._dupacks < self.config.dupack_threshold:
            return
        if self.cum_ack <= self._recovery_until:
            return  # already in recovery for this hole
        self._dupacks = 0
        self._recovery_until = self.next_new - 1
        seq = self.cum_ack
        self._inflight.discard(seq)
        if seq not in self._retx_queue:
            self._retx_queue.insert(0, seq)
        self.on_fast_retransmit()
        self.send_window()

    def _update_rtt(self, ack: Packet) -> None:
        sample = self.sim.now - ack.sent_time
        if sample <= 0:
            return
        if self._rtt_min_sample is None or sample < self._rtt_min_sample:
            self._rtt_min_sample = sample
        delta = sample - self.srtt
        self.srtt += 0.125 * delta
        self.rttvar += 0.25 * (abs(delta) - self.rttvar)

    @property
    def base_rtt(self) -> float:
        """Best propagation-RTT estimate: the minimum sample, or the
        configured initial guess before any sample exists."""
        if self._rtt_min_sample is None:
            return self.config.initial_rtt
        return min(self._rtt_min_sample, self.config.initial_rtt * 10)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def rto_value(self) -> float:
        base = max(self.config.min_rto, self.srtt + 4 * self.rttvar)
        return min(self.config.max_rto, base * (2 ** self._rto_backoff))

    def _arm_rto(self) -> None:
        if self._rto_event is None:
            self._rto_event = self.sim.schedule(self.rto_value(), self._on_rto)

    def _rearm_rto(self) -> None:
        self._cancel_rto()
        if self._inflight or self._retx_queue or self.next_new < self.total_pkts:
            self._rto_event = self.sim.schedule(self.rto_value(), self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.finished:
            return
        self.flow.timeouts += 1
        self._rto_backoff = min(self._rto_backoff + 1, 6)
        if self.sim.tracer is not None:
            self.sim.tracer.record(self.sim.now, CAT_TIMEOUT, self.flow.flow_id,
                                   cum_ack=self.cum_ack,
                                   inflight=len(self._inflight))
        self.handle_timeout()

    def handle_timeout(self) -> None:
        """Default timeout reaction: everything in flight is presumed lost,
        the window collapses (hook), and retransmission restarts from the
        first hole.  PASE overrides this for low-priority queues (probing)."""
        for seq in sorted(self._inflight):
            if seq not in self._retx_queue:
                self._retx_queue.append(seq)
        self._inflight.clear()
        self._dupacks = 0
        self._recovery_until = -1
        self.on_timeout_window_update()
        self._rearm_rto()
        self.send_window()

    # ------------------------------------------------------------------
    # Protocol hooks (override in subclasses)
    # ------------------------------------------------------------------
    def decorate_packet(self, pkt: Packet) -> None:
        """Stamp protocol headers (priority, queue index) on an outgoing
        data packet.  Default: best-effort queue 0, priority 0."""

    def on_ack_window_update(self, ack: Packet, newly_acked: bool) -> None:
        """Adjust ``cwnd`` on an ACK.  Default: TCP Reno (slow start then
        1/cwnd per ACK), halving handled by loss hooks."""
        if not newly_acked:
            return
        if self.config.slow_start and self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + 1, self.config.max_cwnd)
        else:
            self.cwnd = min(self.cwnd + 1.0 / max(self.cwnd, 1.0),
                            self.config.max_cwnd)

    def on_fast_retransmit(self) -> None:
        """Window reaction to a dup-ACK-detected loss.  Default: Reno halving."""
        self.ssthresh = max(self.cwnd / 2, 2.0)
        self.cwnd = self.ssthresh

    def on_timeout_window_update(self) -> None:
        """Window reaction to an RTO.  Default: collapse to one packet."""
        self.ssthresh = max(self.cwnd / 2, 2.0)
        self.cwnd = 1.0

    def handle_special_ack(self, ack: Packet) -> bool:
        """Intercept protocol-specific ACKs (e.g. PASE probe replies).
        Return True when the ACK was fully consumed."""
        return False
