"""PDQ (Hong et al., SIGCOMM 2012): distributed explicit-rate arbitration.

The arbitration-only baseline.  Every link runs a :class:`PdqLinkScheduler`
(installed as a :class:`~repro.sim.link.LinkProcessor`) that keeps a table of
active flows and allocates the link preemptively to the highest-priority
flows — earliest deadline first, then shortest remaining size.  Data and
probe packets carry a rate header; each hop stamps ``min(header, my_grant)``
and the receiver echoes the result in the ACK.  Senders pace at the granted
rate; paused flows (grant = 0) keep a probe circulating once per RTT so they
learn promptly when the bottleneck frees up.

The paper's critique — 1–2 RTTs of *flow switching overhead* every time the
bottleneck hands over from one flow to the next — emerges naturally: the
grant travels in-band, so a newly unpaused flow cannot send data until a
probe has sampled the new allocation and its ACK has returned.

Optimizations from the PDQ paper that matter at our scales are included:
*Early Start* (grant the next flow in line when the current one is within
``early_start_rtts`` of finishing) and *Early Termination* (drop flows whose
deadline is provably unreachable; only when deadlines are in use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.engine import Event
from repro.sim.link import Link
from repro.sim.packet import HEADER_SIZE, Packet, PacketKind, alloc_packet
from repro.transports.base import ReceiverAgent, SenderAgent, TransportConfig
from repro.utils.units import MSEC, USEC, bytes_to_bits
from repro.utils.validation import check_positive


@dataclass
class PdqConfig(TransportConfig):
    min_rto: float = 10 * MSEC
    #: Paused flows probe once per this interval.
    probe_interval: float = 300 * USEC
    #: Scheduler entries not refreshed within this window are presumed dead.
    entry_timeout: float = 3 * MSEC
    #: Early Start: also grant the flow behind the head when the head will
    #: finish within this many RTTs.  PDQ proposes ~K RTTs of overlap; too
    #: large a value hides the flow-switching overhead entirely.
    early_start_rtts: float = 0.5
    #: Base RTT used by schedulers to convert early_start_rtts to seconds.
    base_rtt: float = 300 * USEC
    #: When True, flows that provably cannot meet their deadline are
    #: terminated (PDQ's Early Termination).
    early_termination: bool = False
    #: Suppressed probing: a paused flow at rank ``r`` in the scheduler's
    #: priority order probes every ``min(r, cap) * probe_interval`` — far
    #: flows probe rarely, trading unpause latency for probe overhead (this
    #: is the flow-switching cost §2.1 dwells on).  1 disables suppression.
    probe_rank_cap: int = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("probe_interval", self.probe_interval)
        check_positive("entry_timeout", self.entry_timeout)


@dataclass
class _FlowEntry:
    flow_id: int
    remaining_bytes: int
    deadline: Optional[float]
    last_seen: float
    granted: float = 0.0

    def priority_key(self):
        # EDF first (None deadlines sort last), then SJF, then flow id for
        # determinism.
        deadline = self.deadline if self.deadline is not None else float("inf")
        return (deadline, self.remaining_bytes, self.flow_id)


class PdqLinkScheduler:
    """Per-link flow table + preemptive rate allocator (switch side)."""

    def __init__(self, link: Link, config: Optional[PdqConfig] = None) -> None:
        self.link = link
        self.config = config or PdqConfig()
        self.flows: Dict[int, _FlowEntry] = {}

    # -- LinkProcessor interface -----------------------------------------
    def process(self, pkt: Packet, link: Link) -> None:
        if pkt.kind not in (PacketKind.DATA, PacketKind.PROBE):
            return
        now = link.sim.now
        if pkt.remaining_bytes <= 0:
            # FIN: the sender has nothing left; free the slot immediately.
            self.flows.pop(pkt.flow_id, None)
            pkt.pdq_rate = min(pkt.pdq_rate, link.capacity_bps)
            return
        entry = self.flows.get(pkt.flow_id)
        if entry is None:
            entry = _FlowEntry(pkt.flow_id, pkt.remaining_bytes, pkt.deadline, now)
            self.flows[pkt.flow_id] = entry
        else:
            entry.remaining_bytes = pkt.remaining_bytes
            entry.deadline = pkt.deadline
            entry.last_seen = now
        self._expire(now)
        self._allocate(now)
        grant = self.flows[pkt.flow_id].granted
        if grant <= 0:
            pkt.pdq_pause = True
            pkt.pdq_rate = 0.0
        else:
            pkt.pdq_rate = min(pkt.pdq_rate, grant)
        rank = self._rank_of(pkt.flow_id)
        if rank > pkt.pdq_rank:
            pkt.pdq_rank = rank

    # -- internals ---------------------------------------------------------
    def _expire(self, now: float) -> None:
        timeout = self.config.entry_timeout
        dead = [fid for fid, e in self.flows.items() if now - e.last_seen > timeout]
        for fid in dead:
            del self.flows[fid]

    def _rank_of(self, flow_id: int) -> int:
        """The flow's position in this link's priority order (0 = head)."""
        ordered = sorted(self.flows.values(), key=_FlowEntry.priority_key)
        for i, entry in enumerate(ordered):
            if entry.flow_id == flow_id:
                return i
        return len(ordered)

    def _allocate(self, now: float) -> None:
        """Preemptive allocation: capacity goes to flows in priority order;
        Early Start lets the runner-up stream while the head drains."""
        capacity = self.link.capacity_bps
        residual = capacity
        early_window = self.config.early_start_rtts * self.config.base_rtt
        ordered = sorted(self.flows.values(), key=_FlowEntry.priority_key)
        for entry in ordered:
            if residual <= 0:
                entry.granted = 0.0
                continue
            grant = residual
            entry.granted = grant
            drain_time = bytes_to_bits(entry.remaining_bytes) / grant
            if drain_time <= early_window:
                # Early Start: head will vacate shortly — let the next flow
                # begin now rather than paying a pause/unpause round trip.
                continue
            residual -= grant


def install_pdq_schedulers(network, config: Optional[PdqConfig] = None) -> Dict[str, PdqLinkScheduler]:
    """Attach a :class:`PdqLinkScheduler` to every link in ``network``.

    Returns the schedulers keyed by link name (useful in tests)."""
    schedulers: Dict[str, PdqLinkScheduler] = {}
    for link in network.links.values():
        sched = PdqLinkScheduler(link, config)
        link.processors.append(sched)
        schedulers[link.name] = sched
    return schedulers


#: PDQ needs no receiver specialization: ``make_ack_packet`` echoes the
#: in-band grant (``pdq_rate`` / ``pdq_pause``) on every ACK.
PdqReceiver = ReceiverAgent


class PdqSender(SenderAgent):
    """Rate-paced sender driven by in-band grants."""

    def __init__(self, sim, host, flow, config: PdqConfig = None, on_done=None):
        cfg = config or PdqConfig()
        super().__init__(sim, host, flow, cfg, on_done)
        self.rate_bps: float = 0.0
        self.paused: bool = True
        self.rank: int = 0
        self._pace_event: Optional[Event] = None
        self._probe_event: Optional[Event] = None
        self.cwnd = 1.0  # unused by pacing; kept sane for introspection

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.started:
            return
        self.started = True
        self.host.attach_sender(self.flow.flow_id, self)
        # Kick off with a probe: it seeds every scheduler's flow table and
        # returns the initial grant one RTT later.
        self._send_probe()

    def send_window(self) -> None:
        """Pacing replaces windowed transmission; opportunistically restart
        the pacing loop (e.g. after a timeout queued retransmissions)."""
        self._ensure_pacing()

    # -- pacing ------------------------------------------------------------
    def _ensure_pacing(self) -> None:
        if self.finished or self.paused or self.rate_bps <= 0:
            return
        if self._pace_event is None:
            self._pace_event = self.sim.schedule(0.0, self._pace_tick)

    def _pace_tick(self) -> None:
        self._pace_event = None
        if self.finished or self.paused or self.rate_bps <= 0:
            return
        item = self._next_seq_to_send()
        if item is None:
            return
        seq, is_retx = item
        self._transmit(seq, retransmit=is_retx)
        gap = bytes_to_bits(self._packet_size(seq)) / self.rate_bps
        self._pace_event = self.sim.schedule(gap, self._pace_tick)

    def _cancel_pacing(self) -> None:
        if self._pace_event is not None:
            self._pace_event.cancel()
            self._pace_event = None

    # -- probing -------------------------------------------------------------
    def _send_probe(self) -> None:
        if self.finished:
            return
        probe = alloc_packet(
            PacketKind.PROBE, self.host.node_id, self.flow.dst,
            self.flow.flow_id, seq=max(0, self.cum_ack), size=HEADER_SIZE,
        )
        probe.deadline = self.flow.absolute_deadline
        probe.remaining_bytes = self.remaining_bytes
        probe.sent_time = self.sim.now
        self.flow.probes_sent += 1
        self.host.send(probe)
        self._schedule_probe()

    def _schedule_probe(self) -> None:
        cfg: PdqConfig = self.config
        if self._probe_event is not None:
            self._probe_event.cancel()
        # Suppressed probing: back off with priority rank when paused.
        multiplier = 1
        if self.paused and cfg.probe_rank_cap > 1:
            multiplier = max(1, min(self.rank, cfg.probe_rank_cap))
        self._probe_event = self.sim.schedule(
            cfg.probe_interval * multiplier, self._maybe_probe)

    def _maybe_probe(self) -> None:
        self._probe_event = None
        if self.finished:
            return
        if self.paused or self.rate_bps <= 0:
            self._send_probe()
        else:
            # While streaming, data packets refresh the schedulers; just
            # keep the probe timer parked for the next pause.
            self._schedule_probe()

    # -- grant handling --------------------------------------------------
    def handle_special_ack(self, ack: Packet) -> bool:
        self.rank = ack.pdq_rank
        self._apply_grant(ack.pdq_rate, ack.pdq_pause)
        if ack.kind == PacketKind.ACK and ack.ack_sacks == -1:
            # Probe reply for un-received data: treat purely as a grant
            # refresh (no reliability state to update).
            return True
        return False

    def _apply_grant(self, rate: float, paused_flag: bool) -> None:
        if rate == float("inf"):
            return  # ACK did not traverse a scheduler (e.g. generated FIN ack)
        was_paused = self.paused
        self.paused = paused_flag or rate <= 0
        self.rate_bps = 0.0 if self.paused else rate
        if self.paused:
            self._cancel_pacing()
            if was_paused is False:
                self._schedule_probe()
        else:
            self._ensure_pacing()

    # -- overrides ---------------------------------------------------------
    def handle_timeout(self) -> None:
        for seq in sorted(self._inflight):
            if seq not in self._retx_queue:
                self._retx_queue.append(seq)
        self._inflight.clear()
        self._rearm_rto()
        if self.paused or self.rate_bps <= 0:
            self._send_probe()
        else:
            self._ensure_pacing()

    def on_ack_window_update(self, ack: Packet, newly_acked: bool) -> None:
        pass  # rate is dictated by grants, not by ACK clocking

    def _finish(self) -> None:
        if self.finished:
            return
        self._cancel_pacing()
        if self._probe_event is not None:
            self._probe_event.cancel()
            self._probe_event = None
        # FIN probe: remaining == 0 clears our entry from every scheduler on
        # the path so the next flow is unpaused at once.
        fin = alloc_packet(
            PacketKind.PROBE, self.host.node_id, self.flow.dst,
            self.flow.flow_id, seq=self.total_pkts - 1, size=HEADER_SIZE,
        )
        fin.remaining_bytes = 0
        self.host.send(fin)
        super()._finish()
