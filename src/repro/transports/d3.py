"""D3 (Wilson et al., SIGCOMM 2011): deadline-driven rate reservation.

The other arbitration-only protocol in the paper's Table 1.  Each RTT a
sender asks the network for the rate its deadline requires
(``remaining / time_to_deadline``; best-effort flows ask for zero); every
switch on the path grants the request greedily — first-come, first-served —
plus an equal share of whatever capacity is left, and the sender paces at
the path-minimum grant for the next RTT.

D3's signature weakness (the reason PDQ exists) emerges from the greedy
FCFS order: a request that arrives *earlier* is satisfied even when a
later, more urgent flow then cannot reserve what its deadline needs —
allocation order, not deadline order, decides contention.

The in-band plumbing (rate field stamped min-wise per hop, echoed on ACKs,
paced sender) is shared with the PDQ rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.link import Link
from repro.sim.packet import Packet, PacketKind
from repro.transports.base import ReceiverAgent
from repro.transports.pdq import PdqConfig, PdqSender
from repro.utils.units import bytes_to_bits
from repro.utils.validation import check_positive


@dataclass
class D3Config(PdqConfig):
    """D3 senders reuse the paced-transport chassis; the base rate keeps
    best-effort flows trickling one packet per RTT."""

    #: Rate granted to every flow on top of reservations (the fair share of
    #: leftover capacity is computed per link; this floors it).
    base_rate_bps: float = 40e6

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("base_rate_bps", self.base_rate_bps)


@dataclass
class _Reservation:
    flow_id: int
    rate: float
    last_seen: float


class D3LinkAllocator:
    """Per-link greedy rate allocator (switch side).

    Reservations are renewed by each passing request and expire when a
    flow goes silent.  Greedy FCFS: a renewal keeps whatever it already
    holds if capacity allows; new requests get what is left.
    """

    def __init__(self, link: Link, config: Optional[D3Config] = None) -> None:
        self.link = link
        self.config = config or D3Config()
        self.reservations: Dict[int, _Reservation] = {}

    # -- LinkProcessor interface -----------------------------------------
    def process(self, pkt: Packet, link: Link) -> None:
        if pkt.kind not in (PacketKind.DATA, PacketKind.PROBE):
            return
        now = link.sim.now
        self._expire(now)
        if pkt.remaining_bytes <= 0:
            self.reservations.pop(pkt.flow_id, None)
            return
        desired = self._desired_rate(pkt, now)
        granted = self._allocate(pkt.flow_id, desired, now)
        pkt.pdq_rate = min(pkt.pdq_rate, granted)

    def _desired_rate(self, pkt: Packet, now: float) -> float:
        if pkt.deadline is None or pkt.deadline <= now:
            return 0.0  # best-effort (or already hopeless): leftover only
        return bytes_to_bits(pkt.remaining_bytes) / (pkt.deadline - now)

    def _allocate(self, flow_id: int, desired: float, now: float) -> float:
        capacity = self.link.capacity_bps
        others = sum(r.rate for fid, r in self.reservations.items()
                     if fid != flow_id)
        available = max(0.0, capacity - others)
        reserved = min(desired, available)
        self.reservations[flow_id] = _Reservation(flow_id, reserved, now)
        # Fair share of the leftover goes on top (D3's "fs" term), floored
        # by the base rate so nobody fully stalls.
        num_flows = max(1, len(self.reservations))
        leftover = max(0.0, capacity - others - reserved)
        grant = reserved + max(self.config.base_rate_bps,
                               leftover / num_flows)
        return min(grant, capacity)

    def _expire(self, now: float) -> None:
        timeout = self.config.entry_timeout
        dead = [fid for fid, r in self.reservations.items()
                if now - r.last_seen > timeout]
        for fid in dead:
            del self.reservations[fid]


def install_d3_allocators(network, config: Optional[D3Config] = None) -> Dict[str, D3LinkAllocator]:
    """Attach a :class:`D3LinkAllocator` to every link in ``network``."""
    allocators: Dict[str, D3LinkAllocator] = {}
    for link in network.links.values():
        alloc = D3LinkAllocator(link, config)
        link.processors.append(alloc)
        allocators[link.name] = alloc
    return allocators


#: D3 receivers are plain receivers (the grant rides the shared ACK echo).
D3Receiver = ReceiverAgent


class D3Sender(PdqSender):
    """Paced sender driven by D3 grants.

    Identical chassis to PDQ's sender; D3 grants are never zero (base rate
    floor), so the pause/probe machinery effectively idles and the flow
    simply tracks its granted rate each RTT.
    """

    def __init__(self, sim, host, flow, config: Optional[D3Config] = None,
                 on_done=None):
        super().__init__(sim, host, flow, config or D3Config(), on_done)

    def _apply_grant(self, rate: float, paused_flag: bool) -> None:
        # D3 has no pause semantics; a grant is always positive.
        if rate == float("inf"):
            return
        super()._apply_grant(max(rate, 1e3), False)
