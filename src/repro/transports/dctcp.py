"""DCTCP (Alizadeh et al., SIGCOMM 2010).

The self-adjusting-endpoints baseline in the paper.  Senders estimate the
fraction of ECN-marked packets per window, smooth it into ``alpha``, and on
observing marks scale the window by ``(1 - alpha/2)`` once per window.
Switches mark when the instantaneous queue exceeds K
(:class:`repro.sim.queues.REDQueue`).

The alpha estimator lives in its own class (:class:`DctcpAlphaEstimator`)
because D2TCP, L2DCT, and PASE's end-host transport all reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.packet import Packet
from repro.transports.base import SenderAgent, TransportConfig
from repro.utils.validation import check_probability


@dataclass
class DctcpConfig(TransportConfig):
    """Table 3 defaults: 225-packet queues (set on the topology), g = 1/16."""

    #: EWMA gain for the marked fraction.
    g: float = 0.0625

    def __post_init__(self) -> None:
        super().__post_init__()
        check_probability("g", self.g)


class DctcpAlphaEstimator:
    """Per-flow EWMA of the fraction of marked ACKs, updated once per window.

    ``observe(marked)`` is called per ACK; the estimate rolls over when a full
    window's worth of ACKs (``window_pkts`` at rollover time) has been seen.
    """

    def __init__(self, g: float = 0.0625) -> None:
        self.g = g
        self.alpha = 0.0
        self._acked = 0
        self._marked = 0
        self._window_target = 1

    def begin_window(self, cwnd: float) -> None:
        self._window_target = max(1, int(cwnd))

    def observe(self, marked: bool, cwnd: float) -> bool:
        """Record one ACK.  Returns True when a window boundary was crossed
        and ``alpha`` was refreshed."""
        self._acked += 1
        if marked:
            self._marked += 1
        if self._acked < self._window_target:
            return False
        fraction = self._marked / self._acked
        self.alpha = (1 - self.g) * self.alpha + self.g * fraction
        self._acked = 0
        self._marked = 0
        self.begin_window(cwnd)
        return True


class DctcpSender(SenderAgent):
    """DCTCP congestion control on the shared reliable-sender chassis."""

    def __init__(self, sim, host, flow, config: DctcpConfig = None, on_done=None):
        super().__init__(sim, host, flow, config or DctcpConfig(), on_done)
        self.estimator = DctcpAlphaEstimator(self.config.g)
        self.estimator.begin_window(self.cwnd)
        #: Window may shrink at most once per RTT (per window of data).
        self._last_reduction_seq = -1

    @property
    def alpha(self) -> float:
        return self.estimator.alpha

    # -- hooks -----------------------------------------------------------
    def on_ack_window_update(self, ack: Packet, newly_acked: bool) -> None:
        if not newly_acked:
            return
        self.estimator.observe(ack.ecn_echo, self.cwnd)
        if ack.ecn_echo and self._may_reduce():
            self._apply_mark_reduction()
        else:
            self._increase_window()

    def _may_reduce(self) -> bool:
        """Allow one multiplicative decrease per window of data."""
        if self.cum_ack > self._last_reduction_seq:
            self._last_reduction_seq = self.next_new
            return True
        return False

    def _apply_mark_reduction(self) -> None:
        self.cwnd = max(1.0, self.cwnd * (1 - self.backoff_factor() / 2))
        self.ssthresh = max(self.cwnd, 2.0)

    def _increase_window(self) -> None:
        if self.config.slow_start and self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + 1, self.config.max_cwnd)
        else:
            self.cwnd = min(
                self.cwnd + self.increase_gain() / max(self.cwnd, 1.0),
                self.config.max_cwnd,
            )

    # -- subclass surface (D2TCP / L2DCT override these) ------------------
    def backoff_factor(self) -> float:
        """Multiplied by 1/2 on a marked window: DCTCP uses plain alpha."""
        return self.estimator.alpha

    def increase_gain(self) -> float:
        """Additive-increase numerator: DCTCP grows 1 MSS per RTT."""
        return 1.0
