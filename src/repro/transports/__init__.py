"""End-host transport protocols.

The baselines the paper compares against (each built on the shared reliable
chassis in :mod:`repro.transports.base`):

* :mod:`~repro.transports.tcp` — plain Reno (reference / testing),
* :mod:`~repro.transports.dctcp` — DCTCP (self-adjusting endpoints),
* :mod:`~repro.transports.d2tcp` — deadline-aware DCTCP,
* :mod:`~repro.transports.l2dct` — size-aware DCTCP,
* :mod:`~repro.transports.pdq` — explicit-rate arbitration,
* :mod:`~repro.transports.pfabric` — in-network prioritization.

PASE itself lives in :mod:`repro.core`.
"""

from repro.transports.base import (
    ReceiverAgent,
    SenderAgent,
    TransportConfig,
)
from repro.transports.d3 import (
    D3Config,
    D3LinkAllocator,
    D3Receiver,
    D3Sender,
    install_d3_allocators,
)
from repro.transports.dctcp import DctcpConfig, DctcpSender
from repro.transports.d2tcp import D2tcpConfig, D2tcpSender
from repro.transports.flow import Flow
from repro.transports.l2dct import L2dctConfig, L2dctSender
from repro.transports.pdq import (
    PdqConfig,
    PdqLinkScheduler,
    PdqReceiver,
    PdqSender,
    install_pdq_schedulers,
)
from repro.transports.pfabric import (
    PfabricConfig,
    PfabricSender,
    pfabric_queue_factory,
)
from repro.transports.tcp import TcpConfig, TcpSender

__all__ = [
    "Flow",
    "ReceiverAgent",
    "SenderAgent",
    "TransportConfig",
    "TcpConfig",
    "TcpSender",
    "D3Config",
    "D3LinkAllocator",
    "D3Receiver",
    "D3Sender",
    "install_d3_allocators",
    "DctcpConfig",
    "DctcpSender",
    "D2tcpConfig",
    "D2tcpSender",
    "L2dctConfig",
    "L2dctSender",
    "PdqConfig",
    "PdqLinkScheduler",
    "PdqReceiver",
    "PdqSender",
    "install_pdq_schedulers",
    "PfabricConfig",
    "PfabricSender",
    "pfabric_queue_factory",
]
