"""Topology builders for the paper's scenarios.

Two shapes cover every experiment:

* :class:`StarTopology` — N hosts on one switch.  Used for all intra-rack
  scenarios (Figs. 1, 2, 4, 9c, 10c, 13a), the Fig. 3 toy example, and the
  simulated testbed (Fig. 13b).
* :class:`TreeTopology` — the paper's Fig. 8 three-tier tree: racks of hosts
  under ToR switches, ToRs under aggregation switches, aggregations joined by
  one core switch.  Host links are 1 Gbps, fabric links 10 Gbps, giving the
  paper's 4:1 ToR-uplink oversubscription at the default sizes.  Used for the
  left-right inter-rack scenarios (Figs. 9a/9b, 10a/10b, 11, 12).

Both expose the structural queries the PASE control plane needs: a host's
up/down access links, the ToR/aggregation ancestry of a host, and ordered
path links between hosts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.network import Network, QueueFactory
from repro.sim.node import Host, Switch
from repro.sim.queues import REDQueue
from repro.utils.units import GBPS, USEC
from repro.utils.validation import check_positive


def default_queue_factory() -> REDQueue:
    """DCTCP-style marking FIFO with the paper's defaults (Table 3)."""
    return REDQueue(capacity_pkts=225, mark_threshold_pkts=65)


@dataclass
class TreeTopologyConfig:
    """Knobs for :class:`TreeTopology`.

    Defaults reproduce Fig. 8 scaled by ``hosts_per_rack`` — the paper used
    40 hosts/rack; benchmarks shrink this (shape-preserving) for pure-Python
    runtimes.  Per-link propagation delay is chosen so the host-to-host RTT
    through the core is ``core_rtt`` (300 µs in the paper) in the absence of
    queueing.
    """

    num_racks: int = 4
    racks_per_agg: int = 2
    hosts_per_rack: int = 40
    host_link_bps: float = 1 * GBPS
    fabric_link_bps: float = 10 * GBPS
    core_rtt: float = 300 * USEC
    #: When True every ToR connects to *every* aggregation switch (the
    #: dual-homed fabric of Fig. 8's drawing) and switches ECMP-hash flows
    #: across the equal-cost paths.  Note: the PASE control plane requires
    #: deterministic single paths and rejects multipath topologies; this
    #: option serves the endpoint-only and in-network-only protocols.
    multipath: bool = False

    def __post_init__(self) -> None:
        check_positive("num_racks", self.num_racks)
        check_positive("racks_per_agg", self.racks_per_agg)
        check_positive("hosts_per_rack", self.hosts_per_rack)
        check_positive("host_link_bps", self.host_link_bps)
        check_positive("fabric_link_bps", self.fabric_link_bps)
        check_positive("core_rtt", self.core_rtt)
        if self.num_racks % self.racks_per_agg != 0:
            raise ValueError(
                f"num_racks ({self.num_racks}) must divide evenly into groups "
                f"of racks_per_agg ({self.racks_per_agg})"
            )

    @property
    def num_aggs(self) -> int:
        return self.num_racks // self.racks_per_agg

    @property
    def num_hosts(self) -> int:
        return self.num_racks * self.hosts_per_rack

    @property
    def per_link_delay(self) -> float:
        # Host-to-host via core crosses 6 links each way.
        return self.core_rtt / 12.0


class Topology:
    """Base class: common structural queries over a built network."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network

    @property
    def hosts(self) -> List[Host]:
        return self.network.hosts

    def host_ids(self) -> List[int]:
        return [h.node_id for h in self.network.hosts]

    def host_uplink(self, host: Host) -> Link:
        """The host's single access link toward the fabric."""
        raise NotImplementedError

    def host_downlink(self, host: Host) -> Link:
        """The fabric's link down into the host."""
        raise NotImplementedError

    def path_links(self, src: int, dst: int) -> List[Link]:
        return self.network.path_links(src, dst)

    def base_rtt(self, src: int, dst: int) -> float:
        """Propagation-only RTT between two hosts (no queueing/serialization)."""
        forward = sum(l.prop_delay for l in self.path_links(src, dst))
        backward = sum(l.prop_delay for l in self.path_links(dst, src))
        return forward + backward


class StarTopology(Topology):
    """``num_hosts`` hosts hanging off a single switch.

    ``rtt`` is the host-to-host propagation RTT: each of the four link
    traversals (up, down, and back) contributes ``rtt / 4``.
    """

    def __init__(
        self,
        sim: Simulator,
        num_hosts: int,
        link_bps: float = 1 * GBPS,
        rtt: float = 100 * USEC,
        queue_factory: Optional[QueueFactory] = None,
    ) -> None:
        super().__init__(sim, Network(sim))
        check_positive("num_hosts", num_hosts)
        factory = queue_factory or default_queue_factory
        self.link_bps = link_bps
        self.rtt = rtt
        self.switch = self.network.add_switch("sw0")
        self._uplinks: Dict[int, Link] = {}
        self._downlinks: Dict[int, Link] = {}
        per_link_delay = rtt / 4.0
        for i in range(num_hosts):
            host = self.network.add_host(f"h{i}")
            up, down = self.network.connect(
                host, self.switch, link_bps, per_link_delay, factory
            )
            self._uplinks[host.node_id] = up
            self._downlinks[host.node_id] = down
        self.network.build_routes()

    def host_uplink(self, host: Host) -> Link:
        return self._uplinks[host.node_id]

    def host_downlink(self, host: Host) -> Link:
        return self._downlinks[host.node_id]


class TreeTopology(Topology):
    """The paper's Fig. 8 three-tier tree."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[TreeTopologyConfig] = None,
        queue_factory: Optional[QueueFactory] = None,
    ) -> None:
        super().__init__(sim, Network(sim))
        self.config = config or TreeTopologyConfig()
        factory = queue_factory or default_queue_factory
        cfg = self.config
        delay = cfg.per_link_delay

        self.core = self.network.add_switch("core")
        self.aggs: List[Switch] = []
        self.tors: List[Switch] = []
        self._tor_of_host: Dict[int, Switch] = {}
        self._agg_of_tor: Dict[int, Switch] = {}
        self._uplinks: Dict[int, Link] = {}
        self._downlinks: Dict[int, Link] = {}
        self._rack_hosts: Dict[int, List[Host]] = {}

        for a in range(cfg.num_aggs):
            agg = self.network.add_switch(f"agg{a}")
            self.aggs.append(agg)
            self.network.connect(agg, self.core, cfg.fabric_link_bps, delay, factory)

        for r in range(cfg.num_racks):
            tor = self.network.add_switch(f"tor{r}")
            self.tors.append(tor)
            agg = self.aggs[r // cfg.racks_per_agg]
            self._agg_of_tor[tor.node_id] = agg
            if cfg.multipath:
                for candidate in self.aggs:
                    self.network.connect(tor, candidate, cfg.fabric_link_bps,
                                         delay, factory)
            else:
                self.network.connect(tor, agg, cfg.fabric_link_bps, delay, factory)
            rack: List[Host] = []
            for h in range(cfg.hosts_per_rack):
                host = self.network.add_host(f"h{r}_{h}")
                up, down = self.network.connect(
                    host, tor, cfg.host_link_bps, delay, factory
                )
                self._uplinks[host.node_id] = up
                self._downlinks[host.node_id] = down
                self._tor_of_host[host.node_id] = tor
                rack.append(host)
            self._rack_hosts[r] = rack

        self.network.build_routes()

    # -- structure -------------------------------------------------------
    def host_uplink(self, host: Host) -> Link:
        return self._uplinks[host.node_id]

    def host_downlink(self, host: Host) -> Link:
        return self._downlinks[host.node_id]

    def tor_of(self, host: Host) -> Switch:
        return self._tor_of_host[host.node_id]

    def agg_of(self, tor: Switch) -> Switch:
        return self._agg_of_tor[tor.node_id]

    def rack_hosts(self, rack: int) -> List[Host]:
        return list(self._rack_hosts[rack])

    def same_rack(self, src: int, dst: int) -> bool:
        return self._tor_of_host[src] is self._tor_of_host[dst]

    def left_hosts(self) -> List[Host]:
        """Hosts in racks under the first aggregation switch ("left" side)."""
        racks = range(self.config.racks_per_agg)
        return [h for r in racks for h in self._rack_hosts[r]]

    def right_hosts(self) -> List[Host]:
        """Hosts in racks under the remaining aggregation switches."""
        racks = range(self.config.racks_per_agg, self.config.num_racks)
        return [h for r in racks for h in self._rack_hosts[r]]
