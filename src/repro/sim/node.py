"""Network nodes: hosts and switches.

* A :class:`Switch` forwards packets along its static routing table (the
  topologies in the paper are trees, so single-path routing suffices).
* A :class:`Host` terminates transports: data/probe packets are demuxed to a
  per-flow receiver agent, ACKs to the sender agent.  Hosts also expose a
  ``control_handler`` hook used when arbitration control traffic is sent
  through the data plane.

Agents register with their host through :meth:`Host.attach_sender` /
:meth:`Host.attach_receiver`; the transport layer defines the agent API
(see :mod:`repro.transports.base`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.sim.packet import Packet, PacketKind, release_packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.link import Link


class Node:
    """Base class: anything with an id that can receive packets."""

    def __init__(self, sim: "Simulator", node_id: int, name: str) -> None:
        self.sim = sim
        self.node_id = node_id
        self.name = name
        #: Static routing: destination host id -> egress link (primary path).
        self.routes: Dict[int, "Link"] = {}
        #: ECMP: destination host id -> all equal-cost egress links.  Only
        #: populated when the topology was built with multipath enabled;
        #: flows hash onto one member so a flow never reorders across paths.
        self.multipath_routes: Dict[int, list] = {}

    def receive(self, pkt: Packet, from_link: "Link") -> None:
        raise NotImplementedError

    def egress_for(self, dst: int, flow_id: int = 0) -> "Link":
        candidates = self.multipath_routes.get(dst)
        if candidates:
            return candidates[hash((flow_id, dst)) % len(candidates)]
        try:
            return self.routes[dst]
        except KeyError:
            raise KeyError(f"{self.name}: no route to host {dst}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class Switch(Node):
    """Output-queued switch: forward to the egress link for the destination
    (flow-hashed among equal-cost links under ECMP)."""

    def receive(self, pkt: Packet, from_link: "Link") -> None:
        self.egress_for(pkt.dst, pkt.flow_id).send(pkt)


class Host(Node):
    """An end host running transport agents.

    ``packets_delivered``/``packets_dropped_local`` counters support tests
    that assert end-to-end conservation.
    """

    def __init__(self, sim: "Simulator", node_id: int, name: str) -> None:
        super().__init__(sim, node_id, name)
        self._senders: Dict[int, "ReceiverLike"] = {}
        self._receivers: Dict[int, "ReceiverLike"] = {}
        #: Invoked for CONTROL packets addressed to this host.
        self.control_handler: Optional[Callable[[Packet], None]] = None
        self.packets_delivered = 0
        self.unroutable_packets = 0

    # -- agent registry -------------------------------------------------
    def attach_sender(self, flow_id: int, agent: "ReceiverLike") -> None:
        self._senders[flow_id] = agent

    def attach_receiver(self, flow_id: int, agent: "ReceiverLike") -> None:
        self._receivers[flow_id] = agent

    def detach_flow(self, flow_id: int) -> None:
        """Forget a completed flow's agents (keeps long runs memory-flat)."""
        self._senders.pop(flow_id, None)
        self._receivers.pop(flow_id, None)

    # -- datapath --------------------------------------------------------
    def send(self, pkt: Packet) -> bool:
        """Transmit a locally generated packet toward ``pkt.dst``."""
        if pkt.dst == self.node_id:
            # Same-host flows never traverse the fabric; deliver immediately.
            self.sim.post(0.0, self.receive, pkt, None)
            return True
        return self.egress_for(pkt.dst).send(pkt)

    def receive(self, pkt: Packet, from_link: Optional["Link"]) -> None:
        self.packets_delivered += 1
        kind = pkt.kind
        if kind == PacketKind.ACK:
            agent = self._senders.get(pkt.flow_id)
        elif kind == PacketKind.CONTROL:
            if self.control_handler is not None:
                self.control_handler(pkt)
            return
        else:  # DATA or PROBE terminate at the receiver agent
            agent = self._receivers.get(pkt.flow_id)
        if agent is None:
            # Stale packet for an already-detached flow; count and drop.
            self.unroutable_packets += 1
            release_packet(pkt)
            return
        agent.on_packet(pkt)
        # The journey ends here: agents copy what they need (ACKs are fresh
        # allocations, PDQ snapshots headers into its own entries), so the
        # shell can go back on the free-list.
        release_packet(pkt)


class ReceiverLike:
    """Duck-type for transport agents attachable to a host."""

    def on_packet(self, pkt: Packet) -> None:  # pragma: no cover - interface
        raise NotImplementedError
