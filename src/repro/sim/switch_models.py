"""Commodity top-of-rack switch profiles (the paper's Table 2).

PASE's deployability argument rests on what shipping hardware already has:
a handful of strict-priority queues per port and (usually) ECN.  Table 2
lists five representative ToR switches; this module encodes them so
experiments can ask "would PASE work on an EX3300?" directly.

Use :func:`pase_config_for` to derive a :class:`~repro.core.config.PaseConfig`
from a profile — the queue count carries over, and switches without ECN get
marking disabled (PASE then degrades gracefully: intermediate-queue flows
fall back to loss-based adjustment).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class SwitchModel:
    """One commodity ToR switch's relevant capabilities (per interface)."""

    name: str
    vendor: str
    num_queues: int
    ecn: bool


#: Table 2 of the paper, verbatim.
TABLE2: Dict[str, SwitchModel] = {
    "BCM56820": SwitchModel("BCM56820", "Broadcom", num_queues=10, ecn=True),
    "G8264": SwitchModel("G8264", "IBM", num_queues=8, ecn=True),
    "7050S": SwitchModel("7050S", "Arista", num_queues=7, ecn=True),
    "EX3300": SwitchModel("EX3300", "Juniper", num_queues=5, ecn=False),
    "S4810": SwitchModel("S4810", "Dell", num_queues=3, ecn=True),
}


def get_switch_model(name: str) -> SwitchModel:
    """Look up a Table 2 switch profile by model name (e.g. ``"EX3300"``)."""
    try:
        return TABLE2[name]
    except KeyError:
        raise KeyError(
            f"unknown switch model {name!r}; known: {sorted(TABLE2)}") from None


def pase_config_for(model: SwitchModel, base=None):
    """A :class:`PaseConfig` matched to ``model``'s capabilities.

    Switches without ECN keep their queues but lose marking: we emulate
    that by pushing the mark threshold to the queue capacity, so CE is
    never set and endpoints adjust on loss alone.
    """
    from repro.core.config import PaseConfig  # local import: avoid cycle

    cfg = base or PaseConfig()
    overrides = {"num_queues": model.num_queues}
    if not model.ecn:
        overrides["mark_threshold_pkts"] = cfg.queue_capacity_pkts
    return replace(cfg, **overrides)
