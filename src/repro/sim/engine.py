"""Discrete-event simulation engine.

A minimal, fast event loop.  Heap entries are plain lists
``[time, seq, fn, args, poolable]`` so ``heapq`` orders them with C-level
``(time, seq)`` tuple comparisons — no Python ``__lt__`` call per sift step.
The sequence number breaks ties deterministically so runs with the same
seed replay identically, which the test suite relies on.

Two scheduling APIs share one sequence counter (so mixing them never
perturbs tie-break order):

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`Event` handle the caller can cancel later (retransmission
  timers, arbitration ticks).  Cancellation is lazy: cancelling nulls the
  entry's callback and the loop skips it when popped, keeping heap
  operations O(log n) with no re-heapify.
* :meth:`Simulator.post` / :meth:`Simulator.post_at` return nothing and
  recycle their heap entries through a free list once fired.  This is the
  hot path for the torrent of fire-and-forget events (link serialization
  wake-ups, packet deliveries) where allocating a fresh handle plus entry
  per packet dominates the event loop's cost.  Entries that handed out an
  Event handle are never pooled — a stale ``cancel()`` after the event
  fired must stay a no-op, not kill an unrelated recycled event.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

_heappush = heapq.heappush
_heappop = heapq.heappop
_INF = float("inf")


class Event:
    """Handle for a scheduled callback.  Returned by
    :meth:`Simulator.schedule` so the caller can cancel it later (e.g. a
    retransmission timer)."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list):
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[0]

    @property
    def seq(self) -> int:
        return self._entry[1]

    @property
    def cancelled(self) -> bool:
        return self._entry[2] is None

    def cancel(self) -> None:
        """Mark the event so the loop discards it instead of firing it.
        Safe to call more than once, and after the event has fired."""
        entry = self._entry
        entry[2] = None
        entry[3] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fn = self._entry[2]
        state = "cancelled" if fn is None else "pending"
        return (f"Event(t={self._entry[0]:.9f}, "
                f"fn={getattr(fn, '__name__', fn)}, {state})")


_new_event = Event.__new__


class Simulator:
    """The event loop.

    Usage::

        sim = Simulator()
        sim.schedule(0.001, my_callback, arg1, arg2)
        sim.run(until=1.0)

    All model components hold a reference to the one ``Simulator`` instance
    and read the current virtual time from :attr:`now`.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[list] = []
        self._free: List[list] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False
        self._stopped: bool = False
        #: Optional :class:`repro.sim.trace.Tracer`; instrumented components
        #: record drops/timeouts/queue-changes here when one is attached.
        self.tracer = None

    # ------------------------------------------------------------------
    # Scheduling (cancellable handles)
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback after
        all events already scheduled for the current instant (FIFO within a
        timestamp).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay!r})")
        self._seq = seq = self._seq + 1
        entry = [self.now + delay, seq, fn, args, False]
        _heappush(self._heap, entry)
        # Event.__new__ + direct slot store skips the __init__ dispatch;
        # this path allocates one handle per call so every cycle counts.
        event = _new_event(Event)
        event._entry = entry
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time!r}, current time is {self.now!r}"
            )
        self._seq = seq = self._seq + 1
        entry = [time, seq, fn, args, False]
        _heappush(self._heap, entry)
        event = _new_event(Event)
        event._entry = entry
        return event

    # ------------------------------------------------------------------
    # Posting (fire-and-forget fast path, pooled entries)
    # ------------------------------------------------------------------
    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Like :meth:`schedule`, but returns no handle and recycles the
        heap entry after the callback fires.  Use for high-rate events that
        are never cancelled (packet deliveries, serialization wake-ups)."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay!r})")
        self._seq = seq = self._seq + 1
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = self.now + delay
            entry[1] = seq
            entry[2] = fn
            entry[3] = args
        else:
            entry = [self.now + delay, seq, fn, args, True]
        _heappush(self._heap, entry)

    def post_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Absolute-time :meth:`post`."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time!r}, current time is {self.now!r}"
            )
        self._seq = seq = self._seq + 1
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = time
            entry[1] = seq
            entry[2] = fn
            entry[3] = args
        else:
            entry = [time, seq, fn, args, True]
        _heappush(self._heap, entry)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the heap drains, ``until`` is reached, or ``max_events``
        events have fired.  Returns the number of events processed by this
        call."""
        processed = 0
        self._running = True
        self._stopped = False
        heap = self._heap
        free = self._free
        heappop = _heappop
        # Sentinel bounds keep the hot loop to two C-level compares instead
        # of ``is not None`` tests on every iteration.
        bound = _INF if until is None else until
        budget = -1 if max_events is None else max_events
        try:
            while heap:
                if self._stopped:
                    break
                entry = heap[0]
                if entry[0] > bound:
                    # Advance the clock to the horizon so repeated run() calls
                    # observe monotonic time.
                    self.now = until
                    break
                heappop(heap)
                fn = entry[2]
                if fn is None:
                    continue
                self.now = entry[0]
                fn(*entry[3])
                if entry[4]:
                    entry[2] = None
                    entry[3] = ()
                    free.append(entry)
                processed += 1
                if processed == budget:
                    break
        finally:
            self._running = False
            self._events_processed += processed
        return processed

    def stop(self) -> None:
        """Request the current :meth:`run` call to return after the event in
        flight completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones that
        have not yet been popped)."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total events fired over the simulator's lifetime."""
        return self._events_processed

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if the heap is
        empty.  Skips over cancelled events without firing anything."""
        heap = self._heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
        return heap[0][0] if heap else None
