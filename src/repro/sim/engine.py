"""Discrete-event simulation engine.

A minimal, fast event loop: events are ``(time, sequence, callback)`` tuples
in a binary heap.  The sequence number breaks ties deterministically so runs
with the same seed replay identically, which the test suite relies on.

Cancellation is lazy: :meth:`Event.cancel` marks the event and the loop skips
it when popped.  This keeps the heap operations O(log n) and avoids the cost
of re-heapifying, which matters because transports cancel and re-arm
retransmission timers on every ACK.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule` so the
    caller can cancel it later (e.g. a retransmission timer)."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the loop discards it instead of firing it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, fn={getattr(self.fn, '__name__', self.fn)}, {state})"


class Simulator:
    """The event loop.

    Usage::

        sim = Simulator()
        sim.schedule(0.001, my_callback, arg1, arg2)
        sim.run(until=1.0)

    All model components hold a reference to the one ``Simulator`` instance
    and read the current virtual time from :attr:`now`.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False
        self._stopped: bool = False
        #: Optional :class:`repro.sim.trace.Tracer`; instrumented components
        #: record drops/timeouts/queue-changes here when one is attached.
        self.tracer = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback after
        all events already scheduled for the current instant (FIFO within a
        timestamp).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay!r})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time!r}, current time is {self.now!r}"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the heap drains, ``until`` is reached, or ``max_events``
        events have fired.  Returns the number of events processed by this
        call."""
        processed = 0
        self._running = True
        self._stopped = False
        heap = self._heap
        try:
            while heap:
                if self._stopped:
                    break
                event = heap[0]
                if until is not None and event.time > until:
                    # Advance the clock to the horizon so repeated run() calls
                    # observe monotonic time.
                    self.now = until
                    break
                heapq.heappop(heap)
                if event.cancelled:
                    continue
                self.now = event.time
                event.fn(*event.args)
                processed += 1
                self._events_processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        return processed

    def stop(self) -> None:
        """Request the current :meth:`run` call to return after the event in
        flight completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones that
        have not yet been popped)."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total events fired over the simulator's lifetime."""
        return self._events_processed

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if the heap is
        empty.  Skips over cancelled events without firing anything."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None
