"""Switch-port queue disciplines.

Four disciplines cover every protocol in the paper:

* :class:`DropTailQueue` — plain FIFO with a byte/packet cap (baseline TCP).
* :class:`REDQueue` — FIFO with DCTCP-style ECN marking: mark on
  *instantaneous* queue length exceeding threshold K (the paper, following
  DCTCP, sets RED's low == high == K and disables averaging).
* :class:`PriorityQueueBank` — N strict-priority classes, each an ECN-marking
  FIFO.  This models the commodity PRIO/CBQ configuration PASE relies on
  (Table 2: 3–10 queues per port on existing ToR switches).
* :class:`PFabricQueue` — pFabric's shallow buffer with priority dropping and
  priority scheduling keyed on the packet's ``priority`` field (remaining
  flow size).

All disciplines share one small interface (:class:`QueueDiscipline`) so a
switch port is agnostic to which is installed.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.sim.packet import Packet
from repro.utils.validation import check_positive

#: Signature of the per-drop callback a :class:`~repro.sim.link.Link`
#: installs on its queue: ``hook(pkt, reason)`` with ``reason=None`` for a
#: plain tail/priority rejection.
DropHook = Callable[[Packet, Optional[str]], None]


class QueueDiscipline:
    """Interface for egress queueing disciplines.

    Subclasses implement :meth:`enqueue` (returning ``False`` when the packet
    is dropped) and :meth:`dequeue`.  Drop and mark counters are maintained
    here so metrics collection is uniform.

    ``drop_hook`` is the cold-path instrumentation seam: the owning link
    installs a callback that emits the :data:`~repro.sim.trace.CAT_DROP`
    trace record.  The hot accept path never checks the tracer — only an
    actual drop pays the ``hook is not None`` test, and eviction-style
    disciplines (pFabric) can tag the *victim* packet too, which the old
    link-level instrumentation could not see.
    """

    __slots__ = ("drops", "drop_bytes", "marks", "enqueued_total",
                 "drop_hook")

    def __init__(self) -> None:
        self.drops: int = 0
        self.drop_bytes: int = 0
        self.marks: int = 0
        self.enqueued_total: int = 0
        self.drop_hook: Optional[DropHook] = None

    def enqueue(self, pkt: Packet) -> bool:
        raise NotImplementedError

    def dequeue(self) -> Optional[Packet]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def byte_depth(self) -> int:
        raise NotImplementedError

    def _record_drop(self, pkt: Packet, reason: Optional[str] = None) -> bool:
        self.drops += 1
        self.drop_bytes += pkt.size
        hook = self.drop_hook
        if hook is not None:
            hook(pkt, reason)
        return False

    def _record_accept(self, pkt: Packet) -> bool:
        self.enqueued_total += 1
        return True


class DropTailQueue(QueueDiscipline):
    """FIFO with a capacity in packets; arrivals beyond capacity are dropped."""

    __slots__ = ("capacity_pkts", "_q", "_bytes")

    def __init__(self, capacity_pkts: int = 100) -> None:
        super().__init__()
        self.capacity_pkts = int(check_positive("capacity_pkts", capacity_pkts))
        self._q: Deque[Packet] = deque()
        self._bytes = 0

    def enqueue(self, pkt: Packet) -> bool:
        if len(self._q) >= self.capacity_pkts:
            return self._record_drop(pkt)
        self._q.append(pkt)
        self._bytes += pkt.size
        self.enqueued_total += 1
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._q:
            return None
        pkt = self._q.popleft()
        self._bytes -= pkt.size
        return pkt

    def __len__(self) -> int:
        return len(self._q)

    @property
    def byte_depth(self) -> int:
        return self._bytes


class REDQueue(DropTailQueue):
    """DCTCP-style marking queue.

    Marks the CE bit on enqueue when the instantaneous queue length is at or
    above ``mark_threshold_pkts`` (K).  Per the DCTCP paper (and §3.3 of the
    PASE paper) marking uses the instantaneous rather than averaged queue
    length, with RED's min and max thresholds both set to K.
    """

    __slots__ = ("mark_threshold_pkts",)

    def __init__(self, capacity_pkts: int = 225, mark_threshold_pkts: int = 65) -> None:
        super().__init__(capacity_pkts=capacity_pkts)
        self.mark_threshold_pkts = int(check_positive("mark_threshold_pkts", mark_threshold_pkts))

    def enqueue(self, pkt: Packet) -> bool:
        if len(self._q) >= self.capacity_pkts:
            return self._record_drop(pkt)
        if pkt.ecn_capable and len(self._q) >= self.mark_threshold_pkts:
            pkt.ecn_marked = True
            self.marks += 1
        self._q.append(pkt)
        self._bytes += pkt.size
        self.enqueued_total += 1
        return True


class PriorityQueueBank(QueueDiscipline):
    """A bank of N strict-priority ECN-marking FIFOs (commodity PRIO+RED).

    ``pkt.queue_index`` selects the class (0 = highest priority; indices
    beyond the bank are clamped to the lowest class, mirroring how a ToS
    field with more codepoints than queues maps onto hardware).  Dequeue
    serves the highest-priority non-empty class.  Each class has its own
    capacity and marking threshold, as in the Linux PRIO-over-RED stack the
    paper's testbed used.
    """

    __slots__ = ("num_queues", "capacity_pkts", "mark_threshold_pkts",
                 "per_queue_capacity", "_queues", "_len", "_bytes")

    def __init__(
        self,
        num_queues: int = 8,
        capacity_pkts: int = 500,
        mark_threshold_pkts: int = 65,
        per_queue_capacity: bool = False,
    ) -> None:
        super().__init__()
        self.num_queues = int(check_positive("num_queues", num_queues))
        self.capacity_pkts = int(check_positive("capacity_pkts", capacity_pkts))
        self.mark_threshold_pkts = int(check_positive("mark_threshold_pkts", mark_threshold_pkts))
        #: When True the capacity applies per class; when False (default) the
        #: capacity is a shared cap on total occupancy, matching a shared
        #: packet buffer carved into queues.
        self.per_queue_capacity = per_queue_capacity
        self._queues: List[Deque[Packet]] = [deque() for _ in range(self.num_queues)]
        self._len = 0
        self._bytes = 0

    def _class_for(self, pkt: Packet) -> int:
        idx = pkt.queue_index
        if idx < 0:
            return 0
        if idx >= self.num_queues:
            return self.num_queues - 1
        return idx

    def enqueue(self, pkt: Packet) -> bool:
        # Inlined _class_for: this is the per-packet path for every PASE run.
        idx = pkt.queue_index
        if idx < 0:
            idx = 0
        elif idx >= self.num_queues:
            idx = self.num_queues - 1
        q = self._queues[idx]
        occupancy = len(q) if self.per_queue_capacity else self._len
        if occupancy >= self.capacity_pkts:
            return self._record_drop(pkt)
        if pkt.ecn_capable and len(q) >= self.mark_threshold_pkts:
            pkt.ecn_marked = True
            self.marks += 1
        q.append(pkt)
        self._len += 1
        self._bytes += pkt.size
        self.enqueued_total += 1
        return True

    def dequeue(self) -> Optional[Packet]:
        if self._len == 0:
            return None
        for q in self._queues:
            if q:
                pkt = q.popleft()
                self._len -= 1
                self._bytes -= pkt.size
                return pkt
        return None  # pragma: no cover - unreachable if _len is consistent

    def class_depth(self, index: int) -> int:
        """Occupancy (packets) of one priority class."""
        return len(self._queues[index])

    def __len__(self) -> int:
        return self._len

    @property
    def byte_depth(self) -> int:
        return self._bytes


class PFabricQueue(QueueDiscipline):
    """pFabric's priority-drop / priority-schedule shallow buffer.

    * **Scheduling:** dequeue the packet with the numerically smallest
      ``priority`` (remaining flow size); FIFO among equals.  Following the
      pFabric paper's starvation-avoidance rule, among packets of the
      winning flow the *earliest* is sent to limit reordering.
    * **Dropping:** when full, drop the packet with the numerically largest
      priority — possibly the arriving packet itself.

    The buffer is intentionally shallow (2×BDP in the paper's setup).
    """

    __slots__ = ("capacity_pkts", "_q", "_bytes")

    def __init__(self, capacity_pkts: int = 76) -> None:
        super().__init__()
        self.capacity_pkts = int(check_positive("capacity_pkts", capacity_pkts))
        self._q: List[Packet] = []
        self._bytes = 0

    def enqueue(self, pkt: Packet) -> bool:
        if len(self._q) >= self.capacity_pkts:
            victim_idx = self._worst_index()
            victim = self._q[victim_idx] if victim_idx >= 0 else None
            if victim is None or pkt.priority >= victim.priority:
                # The arrival is the lowest-priority packet: drop it.
                return self._record_drop(pkt)
            del self._q[victim_idx]
            self._bytes -= victim.size
            self._record_drop(victim, reason="evicted")
        self._q.append(pkt)
        self._bytes += pkt.size
        self.enqueued_total += 1
        return True

    def _worst_index(self) -> int:
        """Index of the stored packet with the largest priority value
        (latest arrival among ties, so older packets of a flow survive)."""
        worst = -1
        worst_prio = float("-inf")
        for i, p in enumerate(self._q):
            if p.priority >= worst_prio:
                worst_prio = p.priority
                worst = i
        return worst

    def dequeue(self) -> Optional[Packet]:
        if not self._q:
            return None
        # Find the highest-priority (smallest value) packet, then send the
        # earliest queued packet of that packet's flow.
        best = min(self._q, key=lambda p: p.priority)
        flow = best.flow_id
        for i, p in enumerate(self._q):
            if p.flow_id == flow:
                del self._q[i]
                self._bytes -= p.size
                return p
        return None  # pragma: no cover - unreachable

    def __len__(self) -> int:
        return len(self._q)

    @property
    def byte_depth(self) -> int:
        return self._bytes
