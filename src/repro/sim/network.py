"""Network container: owns nodes and links, builds routing tables.

The :class:`Network` is deliberately dumb — it wires :class:`~repro.sim.node.Node`
objects together with :class:`~repro.sim.link.Link` objects and computes
static single-path routes by BFS (the paper's topologies are trees, so BFS
yields the unique path).  Topology-specific structure (which switch is a ToR,
which hosts form a rack) lives in :mod:`repro.sim.topology`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Tuple

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Host, Node, Switch
from repro.sim.queues import QueueDiscipline

#: A factory producing a fresh queue discipline per link direction.
QueueFactory = Callable[[], QueueDiscipline]


class Network:
    """A collection of nodes and unidirectional links plus routing."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.nodes: Dict[int, Node] = {}
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        #: Unidirectional links keyed by (src_node_id, dst_node_id).
        self.links: Dict[Tuple[int, int], Link] = {}
        self._adjacency: Dict[int, List[int]] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_host(self, name: str) -> Host:
        host = Host(self.sim, self._take_id(), name)
        self.nodes[host.node_id] = host
        self.hosts.append(host)
        self._adjacency[host.node_id] = []
        return host

    def add_switch(self, name: str) -> Switch:
        switch = Switch(self.sim, self._take_id(), name)
        self.nodes[switch.node_id] = switch
        self.switches.append(switch)
        self._adjacency[switch.node_id] = []
        return switch

    def _take_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def connect(
        self,
        a: Node,
        b: Node,
        capacity_bps: float,
        prop_delay: float,
        queue_factory: QueueFactory,
    ) -> Tuple[Link, Link]:
        """Create a duplex cable between ``a`` and ``b``.

        Each direction gets its own queue from ``queue_factory``.  Returns
        ``(link_a_to_b, link_b_to_a)``.
        """
        key_ab = (a.node_id, b.node_id)
        if key_ab in self.links:
            raise ValueError(f"{a.name} and {b.name} are already connected")
        ab = Link(self.sim, f"{a.name}->{b.name}", a, b, capacity_bps,
                  prop_delay, queue_factory())
        ba = Link(self.sim, f"{b.name}->{a.name}", b, a, capacity_bps,
                  prop_delay, queue_factory())
        self.links[key_ab] = ab
        self.links[(b.node_id, a.node_id)] = ba
        self._adjacency[a.node_id].append(b.node_id)
        self._adjacency[b.node_id].append(a.node_id)
        return ab, ba

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def build_routes(self) -> None:
        """Populate every node's ``routes`` table by BFS from each host.

        For tree topologies the BFS path is the unique path; for non-trees
        this yields deterministic shortest-path routing (ties broken by
        insertion order of ``connect`` calls).
        """
        for host in self.hosts:
            self._install_routes_toward(host.node_id)

    def _install_routes_toward(self, dst: int) -> None:
        # BFS distance labels from dst; every neighbor one step closer to
        # dst is an equal-cost next hop (ECMP set).  The first found is the
        # primary route; the full set goes to multipath_routes when larger.
        dist: Dict[int, int] = {dst: 0}
        frontier = deque([dst])
        while frontier:
            current = frontier.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor not in dist:
                    dist[neighbor] = dist[current] + 1
                    frontier.append(neighbor)
        for node_id, d in dist.items():
            if node_id == dst:
                continue
            node = self.nodes[node_id]
            nexthops = [n for n in self._adjacency[node_id]
                        if dist.get(n, float("inf")) == d - 1]
            node.routes[dst] = self.links[(node_id, nexthops[0])]
            if len(nexthops) > 1:
                node.multipath_routes[dst] = [
                    self.links[(node_id, n)] for n in nexthops]

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def link_between(self, a: Node, b: Node) -> Link:
        """The unidirectional link from ``a`` to ``b``."""
        try:
            return self.links[(a.node_id, b.node_id)]
        except KeyError:
            raise KeyError(f"no link {a.name}->{b.name}") from None

    def path_links(self, src: int, dst: int, flow_id: int = 0) -> List[Link]:
        """The ordered list of links a packet of ``flow_id`` traverses from
        host ``src`` to host ``dst``.  Without ECMP the path is unique; with
        ECMP this follows the flow's hashed path (``flow_id=0`` gives a
        deterministic representative)."""
        links: List[Link] = []
        node = self.nodes[src]
        hops = 0
        while node.node_id != dst:
            link = node.egress_for(dst, flow_id)
            links.append(link)
            node = link.dst
            hops += 1
            if hops > len(self.nodes):
                raise RuntimeError(f"routing loop from {src} to {dst}")
        return links

    # ------------------------------------------------------------------
    # Aggregate accounting
    # ------------------------------------------------------------------
    def total_drops(self) -> int:
        """Queue-overflow drops plus link-outage losses, network-wide."""
        return sum(link.queue.drops + link.down_drops
                   for link in self.links.values())

    def total_data_offered(self) -> int:
        return sum(link.data_pkts_offered for link in self.links.values())

    def data_loss_rate(self) -> float:
        """Network-wide fraction of offered data packets that were dropped."""
        offered = self.total_data_offered()
        if offered == 0:
            return 0.0
        return self.total_drops() / offered
