"""Packet-level discrete-event network simulator (the ns2 substitute).

Layering, bottom up:

* :mod:`~repro.sim.engine` — event loop,
* :mod:`~repro.sim.packet` — packet model,
* :mod:`~repro.sim.queues` — egress queue disciplines (DropTail, DCTCP-RED,
  strict-priority bank, pFabric priority-drop),
* :mod:`~repro.sim.link` — store-and-forward links with pluggable per-packet
  processors,
* :mod:`~repro.sim.node` — hosts (transport demux) and switches (forwarding),
* :mod:`~repro.sim.network` — wiring + BFS routing,
* :mod:`~repro.sim.topology` — the paper's star and three-tier tree shapes.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.link import Link
from repro.sim.network import Network
from repro.sim.node import Host, Node, Switch
from repro.sim.packet import (
    DEFAULT_MTU,
    HEADER_SIZE,
    Packet,
    PacketKind,
    make_ack_packet,
    make_data_packet,
)
from repro.sim.queues import (
    DropTailQueue,
    PFabricQueue,
    PriorityQueueBank,
    QueueDiscipline,
    REDQueue,
)
from repro.sim.topology import (
    StarTopology,
    Topology,
    TreeTopology,
    TreeTopologyConfig,
    default_queue_factory,
)

__all__ = [
    "Event",
    "Simulator",
    "Link",
    "Network",
    "Host",
    "Node",
    "Switch",
    "DEFAULT_MTU",
    "HEADER_SIZE",
    "Packet",
    "PacketKind",
    "make_ack_packet",
    "make_data_packet",
    "DropTailQueue",
    "PFabricQueue",
    "PriorityQueueBank",
    "QueueDiscipline",
    "REDQueue",
    "StarTopology",
    "Topology",
    "TreeTopology",
    "TreeTopologyConfig",
    "default_queue_factory",
]

from repro.sim.switch_models import (
    TABLE2,
    SwitchModel,
    get_switch_model,
    pase_config_for,
)
from repro.sim.trace import TraceEvent, Tracer

__all__ += [
    "TABLE2",
    "SwitchModel",
    "get_switch_model",
    "pase_config_for",
    "TraceEvent",
    "Tracer",
]
