"""Packet model.

One mutable object per packet in flight.  Transports stamp protocol-specific
headers directly onto dedicated attributes (rather than a generic dict) to
keep per-packet allocation cheap — pure-Python packet simulation lives and
dies by the cost of this class.

Priority semantics
------------------
``priority`` is a *lower-is-better* float used by priority-scheduling queues:

* pFabric sets it to the flow's remaining size in bytes,
* PASE and the PRIO bank use ``queue_index`` instead (0 = highest-priority
  queue), with ``priority`` as a tie-breaker inside the pFabric queue only.
"""

from __future__ import annotations

import itertools
from enum import IntEnum
from typing import Optional


class PacketKind(IntEnum):
    """Wire-level packet categories understood by hosts and switches."""

    DATA = 0
    ACK = 1
    #: Header-only probe used by PASE low-priority loss recovery and by PDQ's
    #: paused flows.
    PROBE = 2
    #: Control-plane message (arbitration).  Only used when the control plane
    #: is configured to traverse the data network.
    CONTROL = 3


#: Default maximum transmission unit, bytes (matches ns2 setups in the paper).
DEFAULT_MTU = 1500

#: Header-only packet size (TCP/IP headers), bytes.  Used for ACKs and probes.
HEADER_SIZE = 40

_packet_ids = itertools.count(1)


class Packet:
    """A packet traversing the simulated fabric."""

    __slots__ = (
        "packet_id",
        "kind",
        "src",
        "dst",
        "flow_id",
        "seq",
        "size",
        "priority",
        "queue_index",
        "ecn_capable",
        "ecn_marked",
        "ecn_echo",
        "deadline",
        "sent_time",
        "is_retransmit",
        "ack_seq",
        "ack_sacks",
        "pdq_rate",
        "pdq_pause",
        "pdq_rank",
        "remaining_bytes",
        "payload",
    )

    def __init__(
        self,
        kind: PacketKind,
        src: int,
        dst: int,
        flow_id: int,
        seq: int = 0,
        size: int = DEFAULT_MTU,
        priority: float = 0.0,
        queue_index: int = 0,
    ) -> None:
        self.packet_id: int = next(_packet_ids)
        self._reset(kind, src, dst, flow_id, seq, size, priority, queue_index)

    def _reset(
        self,
        kind: PacketKind,
        src: int,
        dst: int,
        flow_id: int,
        seq: int,
        size: int,
        priority: float,
        queue_index: int,
    ) -> None:
        """(Re)initialize every header field except ``packet_id``.  Shared by
        ``__init__`` and the free-list so a recycled packet is
        indistinguishable from a fresh one."""
        self.kind = kind
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        #: Data sequence number, in packets (0-based).
        self.seq = seq
        self.size = size
        self.priority = priority
        self.queue_index = queue_index
        self.ecn_capable: bool = True
        self.ecn_marked: bool = False
        #: On ACKs: echoes the CE mark of the data packet being acknowledged.
        self.ecn_echo: bool = False
        self.deadline: Optional[float] = None
        #: Stamp set by the sender when the packet leaves the transport; used
        #: for RTT estimation.
        self.sent_time: float = 0.0
        self.is_retransmit: bool = False
        #: On ACKs: cumulative ack — the next in-order packet seq expected.
        self.ack_seq: int = 0
        #: On ACKs: the (selective) seq being acknowledged by this ACK.
        self.ack_sacks: int = -1
        #: PDQ in-band header: allocated rate (bits/sec) accumulated min-wise
        #: across hops; ``pdq_pause`` set when some hop allocates zero.
        self.pdq_rate: float = float("inf")
        self.pdq_pause: bool = False
        #: PDQ header: the flow's position in the strictest scheduler's
        #: priority order (0 = head).  Paused flows probe less often the
        #: further from the head they sit (PDQ's suppressed probing).
        self.pdq_rank: int = 0
        #: pFabric/PDQ header: bytes remaining in the flow (scheduling key).
        self.remaining_bytes: int = 0
        #: Escape hatch for protocol extensions; ``None`` in the fast path.
        self.payload: Optional[dict] = None

    def is_header_only(self) -> bool:
        """True for packets that carry no application payload."""
        return self.kind != PacketKind.DATA

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.packet_id} {self.kind.name} flow={self.flow_id} "
            f"seq={self.seq} {self.src}->{self.dst} q={self.queue_index} "
            f"prio={self.priority:.0f})"
        )


#: Recycled :class:`Packet` shells (the free-list).  Bounded so a transient
#: burst cannot pin memory forever; beyond the cap, releases fall through to
#: the garbage collector like any other object.
_pool: list = []
_POOL_CAP = 8192


def alloc_packet(
    kind: PacketKind,
    src: int,
    dst: int,
    flow_id: int,
    seq: int = 0,
    size: int = DEFAULT_MTU,
    priority: float = 0.0,
    queue_index: int = 0,
) -> Packet:
    """Allocate a packet, recycling a shell from the free-list when one is
    available.  Recycled packets still draw a fresh ``packet_id`` from the
    global counter, so id sequences are identical with or without pooling —
    byte-identical results are part of the contract."""
    if _pool:
        pkt = _pool.pop()
        pkt.packet_id = next(_packet_ids)
        pkt._reset(kind, src, dst, flow_id, seq, size, priority, queue_index)
        return pkt
    return Packet(kind, src, dst, flow_id, seq=seq, size=size,
                  priority=priority, queue_index=queue_index)


def release_packet(pkt: Packet) -> None:
    """Return a packet to the free-list.

    Only call this at a point where the packet provably has no remaining
    references — in this simulator that is :meth:`Host.receive`, the single
    terminal dispatch where every delivered packet's journey ends.  Dropped
    packets are *not* released (drop sites are cold paths) and neither are
    CONTROL packets (a handler may legitimately retain them)."""
    if len(_pool) < _POOL_CAP:
        pkt.payload = None
        _pool.append(pkt)


def make_data_packet(
    src: int,
    dst: int,
    flow_id: int,
    seq: int,
    size: int = DEFAULT_MTU,
    priority: float = 0.0,
    queue_index: int = 0,
) -> Packet:
    """Convenience constructor for a payload-carrying packet."""
    return alloc_packet(
        PacketKind.DATA, src, dst, flow_id, seq=seq, size=size,
        priority=priority, queue_index=queue_index,
    )


def make_ack_packet(data_pkt: Packet, ack_seq: int, queue_index: int = 0) -> Packet:
    """Build the ACK for ``data_pkt``, echoing its ECN mark.

    ACKs travel in the same priority queue as their data (so a low-priority
    flow's ACKs cannot starve high-priority data) unless overridden.
    """
    ack = alloc_packet(
        PacketKind.ACK,
        src=data_pkt.dst,
        dst=data_pkt.src,
        flow_id=data_pkt.flow_id,
        seq=data_pkt.seq,
        size=HEADER_SIZE,
        priority=data_pkt.priority,
        queue_index=queue_index,
    )
    ack.ack_seq = ack_seq
    ack.ack_sacks = data_pkt.seq
    ack.ecn_echo = data_pkt.ecn_marked
    ack.ecn_capable = False
    ack.deadline = data_pkt.deadline
    ack.remaining_bytes = data_pkt.remaining_bytes
    # Echo timing metadata so the sender can take RTT samples (Karn's rule:
    # retransmitted packets are excluded, so the flag rides along too).
    ack.sent_time = data_pkt.sent_time
    ack.is_retransmit = data_pkt.is_retransmit
    # Echo PDQ's in-band grant back to the sender.
    ack.pdq_rate = data_pkt.pdq_rate
    ack.pdq_pause = data_pkt.pdq_pause
    ack.pdq_rank = data_pkt.pdq_rank
    return ack
