"""Unidirectional link with an egress queue and a store-and-forward model.

A :class:`Link` owns the egress queue discipline of the upstream node's port.
Packets are serialized at the link capacity (transmission delay) and then
delivered to the downstream node after the propagation delay.  A duplex cable
is simply two ``Link`` objects.

Optional per-packet *processors* run when a packet is offered to the link —
this is how PDQ's in-switch rate controller observes and stamps packet
headers without the core simulator knowing anything about PDQ.

Hot-path notes
--------------
The serialization timeline per link is strictly sequential, so a busy link
keeps exactly **one** outstanding wake-up: the in-flight packet is stored on
the link and the wake-up callback takes no arguments, letting the engine's
pooled :meth:`~repro.sim.engine.Simulator.post` path recycle a single heap
entry per link instead of allocating an Event per packet.  Drop tracing
hangs off the queue's ``drop_hook`` so the accept path never touches the
tracer — the ``tracer is None`` check runs only when a packet actually
drops (and is evaluated once, inside the hook).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Protocol

from repro.sim.packet import Packet
from repro.sim.queues import QueueDiscipline
from repro.sim.trace import CAT_DROP
from repro.utils.units import transmission_delay
from repro.utils.validation import check_non_negative, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.node import Node


class LinkProcessor(Protocol):
    """Hook interface invoked for every packet offered to a link."""

    def process(self, pkt: Packet, link: "Link") -> None: ...


class Link:
    """One direction of a cable between two nodes."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        src: "Node",
        dst: "Node",
        capacity_bps: float,
        prop_delay: float,
        queue: QueueDiscipline,
    ) -> None:
        self.sim = sim
        self.name = name
        self.src = src
        self.dst = dst
        self.capacity_bps = check_positive("capacity_bps", capacity_bps)
        self.prop_delay = check_non_negative("prop_delay", prop_delay)
        self.queue = queue
        queue.drop_hook = self._on_queue_drop
        self.busy = False
        #: False while the link is administratively/fault down.  Packets
        #: offered to a down link are lost (counted in ``down_drops``);
        #: the packet being serialized when the link dies is corrupted.
        self.up = True
        self.processors: List[LinkProcessor] = []
        #: The packet currently on the wire (being serialized), if any.
        self._in_flight: Optional[Packet] = None
        # Bound-method caches: one attribute load per packet instead of two.
        self._post = sim.post
        # Counters for utilization / loss accounting.
        self.bytes_sent: int = 0
        self.pkts_sent: int = 0
        self.data_pkts_offered: int = 0
        self.busy_time: float = 0.0
        self.down_drops: int = 0
        self.down_transitions: int = 0

    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> bool:
        """Offer a packet to this link's egress queue.

        Returns ``False`` if the queue discipline dropped it.  Transmission
        starts immediately when the line is idle.
        """
        if self.processors:
            for proc in self.processors:
                proc.process(pkt, self)
        if pkt.kind == 0:  # PacketKind.DATA — avoid enum lookup in hot path
            self.data_pkts_offered += 1
        if not self.up:
            self._drop_down(pkt)
            return False
        if self.queue.enqueue(pkt):
            if not self.busy:
                self._transmit_next()
            return True
        return False

    def _transmit_next(self) -> None:
        if not self.up:
            self.busy = False
            return
        pkt = self.queue.dequeue()
        if pkt is None:
            self.busy = False
            return
        self.busy = True
        self._in_flight = pkt
        tx_delay = transmission_delay(pkt.size, self.capacity_bps)
        self.busy_time += tx_delay
        self._post(tx_delay, self._transmission_done)

    def _transmission_done(self) -> None:
        pkt = self._in_flight
        self._in_flight = None
        if not self.up:
            # The link died mid-serialization: the frame is corrupted.
            self.busy = False
            self._drop_down(pkt)
            return
        self.bytes_sent += pkt.size
        self.pkts_sent += 1
        # Hand off to the wire; reception happens after propagation.
        self._post(self.prop_delay, self.dst.receive, pkt, self)
        self._transmit_next()

    # ------------------------------------------------------------------
    # Drop instrumentation (cold paths)
    # ------------------------------------------------------------------
    def _on_queue_drop(self, pkt: Packet, reason: Optional[str] = None) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            if reason is None:
                tracer.record(self.sim.now, CAT_DROP, self.name,
                              flow=pkt.flow_id, seq=pkt.seq,
                              kind=int(pkt.kind))
            else:
                tracer.record(self.sim.now, CAT_DROP, self.name,
                              flow=pkt.flow_id, seq=pkt.seq,
                              kind=int(pkt.kind), reason=reason)

    def _drop_down(self, pkt: Packet) -> None:
        self.down_drops += 1
        self._on_queue_drop(pkt, reason="link-down")

    # ------------------------------------------------------------------
    # Fault transitions
    # ------------------------------------------------------------------
    def set_down(self, flush: bool = True) -> None:
        """Take the link down.  ``flush`` drops queued packets now; without
        it they wait out the outage and resume on :meth:`set_up` (a paused
        port).  Idempotent."""
        if not self.up:
            return
        self.up = False
        self.down_transitions += 1
        if flush:
            while True:
                pkt = self.queue.dequeue()
                if pkt is None:
                    break
                self._drop_down(pkt)

    def set_up(self) -> None:
        """Bring the link back; held-back queued packets resume immediately."""
        if self.up:
            return
        self.up = True
        if not self.busy:
            self._transmit_next()

    # ------------------------------------------------------------------
    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of ``elapsed`` (default: sim.now) the line was busy."""
        horizon = self.sim.now if elapsed is None else elapsed
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    @property
    def loss_rate(self) -> float:
        """Fraction of offered data packets dropped at this egress (queue
        overflows plus link-outage losses)."""
        if self.data_pkts_offered == 0:
            return 0.0
        return (self.queue.drops + self.down_drops) / self.data_pkts_offered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, {self.capacity_bps/1e9:.1f} Gbps)"
