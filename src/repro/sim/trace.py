"""Structured event tracing.

Attach a :class:`Tracer` to a simulator (``sim.tracer = Tracer()``) and the
instrumented components record noteworthy events: packet drops at egress
queues, retransmission timeouts, PASE queue reassignments.  Tracing is
opt-in — with no tracer attached the instrumentation is a single attribute
check per event.

Categories currently emitted by the library (use the ``CAT_*`` constants
rather than re-typing the literals — emitters and queries then cannot
drift apart):

* :data:`CAT_DROP`      — an egress queue rejected a packet (subject: link
  name; detail ``reason="link-down"`` marks losses from an injected link
  outage, ``reason="evicted"`` marks pFabric priority-eviction victims),
* :data:`CAT_TIMEOUT`   — a sender's RTO fired (subject: flow id),
* :data:`CAT_RETRANSMIT` — a data packet was retransmitted (subject: flow id),
* :data:`CAT_QUEUE_CHANGE` — a PASE flow moved priority class (subject:
  flow id),
* :data:`CAT_FAULT`     — the fault injector fired an event (subject: link
  name or ``"control-plane"``; detail ``kind`` names the fault),
* :data:`CAT_FALLBACK`  — a PASE sender entered/left DCTCP fallback after
  losing its arbitrators (subject: flow id; detail ``phase="enter"|"exit"``).

User code can record its own categories through :meth:`Tracer.record`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set

#: Canonical trace-category names.  Emitters (link, transports, PASE
#: endhost, fault injector) and consumers (metrics, tests) share these so a
#: renamed category is a one-line change instead of a scavenger hunt.
CAT_DROP = "drop"
CAT_TIMEOUT = "timeout"
CAT_RETRANSMIT = "retransmit"
CAT_QUEUE_CHANGE = "queue-change"
CAT_FAULT = "fault"
CAT_FALLBACK = "fallback"

#: Every category the library itself emits, for whole-library filters.
ALL_CATEGORIES = (CAT_DROP, CAT_TIMEOUT, CAT_RETRANSMIT, CAT_QUEUE_CHANGE,
                  CAT_FAULT, CAT_FALLBACK)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded occurrence."""

    time: float
    category: str
    subject: Any
    details: tuple  # sorted (key, value) pairs; hashable and cheap

    def detail(self, key: str, default=None):
        for k, v in self.details:
            if k == key:
                return v
        return default


class Tracer:
    """Collects :class:`TraceEvent` records, optionally filtered by
    category (pass ``categories`` to record only those)."""

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 max_events: int = 1_000_000) -> None:
        self.events: List[TraceEvent] = []
        self.categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None)
        self.max_events = max_events
        self.dropped_records = 0

    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def record(self, time: float, category: str, subject: Any, **details) -> None:
        if not self.wants(category):
            return
        if len(self.events) >= self.max_events:
            self.dropped_records += 1
            return
        self.events.append(TraceEvent(
            time, category, subject, tuple(sorted(details.items()))))

    # -- queries ------------------------------------------------------------
    def of(self, category: str) -> List[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def about(self, subject: Any) -> List[TraceEvent]:
        return [e for e in self.events if e.subject == subject]

    def count(self, category: str) -> int:
        return sum(1 for e in self.events if e.category == category)

    def counts(self) -> Dict[str, int]:
        """Per-category event tallies, e.g. ``{"drop": 12, "timeout": 3}``.
        One pass over the buffer; categories with zero events are absent."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.category] = out.get(e.category, 0) + 1
        return out

    def flow_timeline(self, flow_id: int) -> List[TraceEvent]:
        """All events about one flow, in time order."""
        return sorted(self.about(flow_id), key=lambda e: e.time)

    def __len__(self) -> int:
        return len(self.events)
