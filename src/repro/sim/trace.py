"""Structured event tracing.

Attach a :class:`Tracer` to a simulator (``sim.tracer = Tracer()``) and the
instrumented components record noteworthy events: packet drops at egress
queues, retransmission timeouts, PASE queue reassignments.  Tracing is
opt-in — with no tracer attached the instrumentation is a single attribute
check per event.

Categories currently emitted by the library:

* ``"drop"``     — an egress queue rejected a packet (subject: link name;
  detail ``reason="link-down"`` marks losses from an injected link outage),
* ``"timeout"``  — a sender's RTO fired (subject: flow id),
* ``"retransmit"`` — a data packet was retransmitted (subject: flow id),
* ``"queue-change"`` — a PASE flow moved priority class (subject: flow id),
* ``"fault"``    — the fault injector fired an event (subject: link name or
  ``"control-plane"``; detail ``kind`` names the fault),
* ``"fallback"`` — a PASE sender entered/left DCTCP fallback after losing
  its arbitrators (subject: flow id; detail ``phase="enter"|"exit"``).

User code can record its own categories through :meth:`Tracer.record`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Set


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence."""

    time: float
    category: str
    subject: Any
    details: tuple  # sorted (key, value) pairs; hashable and cheap

    def detail(self, key: str, default=None):
        for k, v in self.details:
            if k == key:
                return v
        return default


class Tracer:
    """Collects :class:`TraceEvent` records, optionally filtered by
    category (pass ``categories`` to record only those)."""

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 max_events: int = 1_000_000) -> None:
        self.events: List[TraceEvent] = []
        self.categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None)
        self.max_events = max_events
        self.dropped_records = 0

    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def record(self, time: float, category: str, subject: Any, **details) -> None:
        if not self.wants(category):
            return
        if len(self.events) >= self.max_events:
            self.dropped_records += 1
            return
        self.events.append(TraceEvent(
            time, category, subject, tuple(sorted(details.items()))))

    # -- queries ------------------------------------------------------------
    def of(self, category: str) -> List[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def about(self, subject: Any) -> List[TraceEvent]:
        return [e for e in self.events if e.subject == subject]

    def count(self, category: str) -> int:
        return sum(1 for e in self.events if e.category == category)

    def flow_timeline(self, flow_id: int) -> List[TraceEvent]:
        """All events about one flow, in time order."""
        return sorted(self.about(flow_id), key=lambda e: e.time)

    def __len__(self) -> int:
        return len(self.events)
