"""PASE — "Friends, not Foes: Synthesizing Existing Transport Strategies for
Data Center Networks" (Munir et al., SIGCOMM 2014), reproduced in Python.

The package provides:

* :mod:`repro.sim` — a packet-level discrete-event network simulator,
* :mod:`repro.transports` — DCTCP, D2TCP, L2DCT, PDQ, pFabric baselines,
* :mod:`repro.core` — PASE: per-link arbitration (Algorithm 1), the
  bottom-up control plane with early pruning and delegation, and the
  priority-queue-aware end-host transport (Algorithm 2),
* :mod:`repro.workloads` — the paper's traffic patterns and distributions,
* :mod:`repro.metrics` — FCT/deadline/overhead statistics,
* :mod:`repro.harness` — one-call experiment runner reproducing each figure.

Quickstart::

    from repro.harness import ExperimentSpec, intra_rack, run_experiment
    result = run_experiment(ExperimentSpec(
        "pase", intra_rack(num_hosts=10), load=0.6, num_flows=200))
    print(result.afct, result.stats.p99_fct)
"""

__version__ = "1.0.0"

from repro.core import PaseConfig, PaseControlPlane, PaseReceiver, PaseSender
from repro.harness import ExperimentSpec, run_experiment, sweep_loads
from repro.sim import Simulator
from repro.transports import Flow

__all__ = [
    "__version__",
    "PaseConfig",
    "PaseControlPlane",
    "PaseReceiver",
    "PaseSender",
    "ExperimentSpec",
    "run_experiment",
    "sweep_loads",
    "Simulator",
    "Flow",
]
