"""Protocol bindings: everything the experiment runner needs to run one
protocol on one scenario — the switch queue discipline, any network-side
machinery (PDQ's link schedulers, PASE's control plane), and the per-flow
agent constructors.

Registered names:

``tcp, dctcp, d2tcp, l2dct, pdq, d3, pfabric, pase`` plus the paper's ablation
variants ``pase-dctcp`` (no reference rate, Fig. 13a), ``pase-local``
(access-link-only arbitration, Fig. 12a), ``pase-noopt`` (pruning and
delegation disabled, Fig. 11), and ``pase-noprobe`` (§4.3.2).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Callable, Dict, Optional

from repro.core import PaseConfig, PaseControlPlane, PaseReceiver, PaseSender, pase_queue_factory
from repro.sim.engine import Simulator
from repro.sim.network import QueueFactory
from repro.sim.queues import PFabricQueue, REDQueue
from repro.sim.topology import Topology
from repro.transports import (
    D3Config,
    D3Sender,
    D2tcpConfig,
    D2tcpSender,
    DctcpConfig,
    DctcpSender,
    Flow,
    L2dctConfig,
    L2dctSender,
    PdqConfig,
    PdqSender,
    PfabricConfig,
    PfabricSender,
    ReceiverAgent,
    TcpConfig,
    TcpSender,
    install_d3_allocators,
    install_pdq_schedulers,
)
from repro.transports.base import CompletionCallback
from repro.utils.units import bytes_to_bits

from repro.harness.scenarios import Scenario


class ProtocolBinding:
    """Per-protocol wiring.  Subclasses fill in the four hooks."""

    name = "base"

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario

    # -- hooks -----------------------------------------------------------
    def queue_factory(self) -> QueueFactory:
        """Queue discipline installed on every link in the topology."""
        return lambda: REDQueue(capacity_pkts=225, mark_threshold_pkts=65)

    def setup_network(self, sim: Simulator, topology: Topology) -> None:
        """Install network-side machinery (schedulers, control plane)."""

    def make_receiver(self, sim, host, flow: Flow, on_complete: CompletionCallback):
        return ReceiverAgent(sim, host, flow, on_complete)

    def make_sender(self, sim, host, flow: Flow, on_done=None):
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------
    def bdp_pkts(self) -> float:
        """Bandwidth-delay product of an access link, in MTU packets."""
        link_bps = self._access_link_bps()
        return link_bps * self.scenario.base_rtt / bytes_to_bits(1500)

    def _access_link_bps(self) -> float:
        return getattr(self.scenario, "_access_bps", 1e9)


class _WindowedBinding(ProtocolBinding):
    """Shared logic for the DCTCP family: same queues, per-protocol config."""

    sender_cls = DctcpSender
    config_cls = DctcpConfig
    name = "dctcp"

    def __init__(self, scenario: Scenario, **config_overrides) -> None:
        super().__init__(scenario)
        self.config = self.config_cls(
            initial_rtt=scenario.base_rtt, **config_overrides)

    def make_sender(self, sim, host, flow, on_done=None):
        return self.sender_cls(sim, host, flow, self.config, on_done)


class TcpBinding(_WindowedBinding):
    name = "tcp"
    sender_cls = TcpSender
    config_cls = TcpConfig

    def queue_factory(self) -> QueueFactory:
        return lambda: REDQueue(capacity_pkts=225, mark_threshold_pkts=225)


class DctcpBinding(_WindowedBinding):
    name = "dctcp"


class D2tcpBinding(_WindowedBinding):
    name = "d2tcp"
    sender_cls = D2tcpSender
    config_cls = D2tcpConfig


class L2dctBinding(_WindowedBinding):
    name = "l2dct"
    sender_cls = L2dctSender
    config_cls = L2dctConfig


class PdqBinding(ProtocolBinding):
    name = "pdq"

    def __init__(self, scenario: Scenario, **config_overrides) -> None:
        super().__init__(scenario)
        overrides = dict(config_overrides)
        overrides.setdefault("probe_interval", scenario.base_rtt)
        overrides.setdefault("base_rtt", scenario.base_rtt)
        overrides.setdefault("entry_timeout", 10 * scenario.base_rtt)
        self.config = PdqConfig(initial_rtt=scenario.base_rtt, **overrides)

    def queue_factory(self) -> QueueFactory:
        # PDQ runs with shallow (~2 BDP) buffers: explicit rates keep queues
        # near-empty, and the small buffer is what makes stale-rate overlaps
        # during flow switching costly at high load (§2.1).
        bdp = 1e9 * self.scenario.base_rtt / bytes_to_bits(1500)
        capacity = max(12, int(2 * bdp))
        return lambda: REDQueue(capacity_pkts=capacity, mark_threshold_pkts=capacity)

    def setup_network(self, sim: Simulator, topology: Topology) -> None:
        install_pdq_schedulers(topology.network, self.config)

    def make_sender(self, sim, host, flow, on_done=None):
        return PdqSender(sim, host, flow, self.config, on_done)


class D3Binding(ProtocolBinding):
    name = "d3"

    def __init__(self, scenario: Scenario, **config_overrides) -> None:
        super().__init__(scenario)
        overrides = dict(config_overrides)
        overrides.setdefault("probe_interval", scenario.base_rtt)
        overrides.setdefault("base_rtt", scenario.base_rtt)
        overrides.setdefault("entry_timeout", 10 * scenario.base_rtt)
        self.config = D3Config(initial_rtt=scenario.base_rtt, **overrides)

    def queue_factory(self) -> QueueFactory:
        return lambda: REDQueue(capacity_pkts=225, mark_threshold_pkts=225)

    def setup_network(self, sim: Simulator, topology: Topology) -> None:
        install_d3_allocators(topology.network, self.config)

    def make_sender(self, sim, host, flow, on_done=None):
        return D3Sender(sim, host, flow, self.config, on_done)


class PfabricBinding(ProtocolBinding):
    name = "pfabric"

    def __init__(self, scenario: Scenario, **config_overrides) -> None:
        super().__init__(scenario)
        bdp = max(4.0, self.bdp_pkts())
        overrides = dict(config_overrides)
        overrides.setdefault("init_cwnd", math.ceil(bdp))
        self.config = PfabricConfig(initial_rtt=scenario.base_rtt, **overrides)
        self.queue_capacity = max(12, int(2 * bdp))

    def bdp_pkts(self) -> float:
        return 1e9 * self.scenario.base_rtt / bytes_to_bits(1500)

    def queue_factory(self) -> QueueFactory:
        capacity = self.queue_capacity
        return lambda: PFabricQueue(capacity_pkts=capacity)

    def make_sender(self, sim, host, flow, on_done=None):
        return PfabricSender(sim, host, flow, self.config, on_done)


class PaseBinding(ProtocolBinding):
    name = "pase"
    #: Fig. 13a ablation: queues via arbitration but DCTCP rate control.
    use_reference_rate = True

    def __init__(self, scenario: Scenario, pase_config: Optional[PaseConfig] = None) -> None:
        super().__init__(scenario)
        cfg = pase_config or PaseConfig()
        # A deadline scenario flips the *default* criterion to EDF, but an
        # explicitly chosen criterion (las/task/size) is always respected.
        default_criterion = PaseConfig.__dataclass_fields__["criterion"].default
        if (cfg.criterion == default_criterion
                and scenario.criterion != default_criterion):
            cfg = replace(cfg, criterion=scenario.criterion)
        # Track the scenario's RTT only when the interval was left at the
        # class default — an explicitly chosen interval (e.g. the ablation
        # benchmark) is respected as-is.
        default_interval = PaseConfig.__dataclass_fields__["arbitration_interval"].default
        if (cfg.arbitration_interval == default_interval
                and default_interval != scenario.base_rtt):
            cfg = replace(cfg, arbitration_interval=scenario.base_rtt)
        self.config = cfg
        self.control_plane: Optional[PaseControlPlane] = None

    def queue_factory(self) -> QueueFactory:
        return pase_queue_factory(self.config)

    def setup_network(self, sim: Simulator, topology: Topology) -> None:
        self.control_plane = PaseControlPlane(sim, topology, self.config)

    def make_receiver(self, sim, host, flow, on_complete):
        return PaseReceiver(sim, host, flow, on_complete)

    def make_sender(self, sim, host, flow, on_done=None):
        return PaseSender(sim, host, flow, self.control_plane, self.config,
                          on_done, use_reference_rate=self.use_reference_rate)


class PaseDctcpBinding(PaseBinding):
    """PASE-DCTCP (Fig. 13a): arbitrated queues, no reference-rate seeding —
    every flow runs DCTCP control laws regardless of its queue."""

    name = "pase-dctcp"
    use_reference_rate = False


def make_binding(
    protocol: str,
    scenario: Scenario,
    pase_config: Optional[PaseConfig] = None,
    **overrides,
) -> ProtocolBinding:
    """Build the binding for ``protocol`` (see module docstring for names)."""
    simple: Dict[str, Callable[..., ProtocolBinding]] = {
        "tcp": TcpBinding,
        "dctcp": DctcpBinding,
        "d2tcp": D2tcpBinding,
        "l2dct": L2dctBinding,
        "pdq": PdqBinding,
        "d3": D3Binding,
        "pfabric": PfabricBinding,
    }
    if protocol in simple:
        return simple[protocol](scenario, **overrides)

    base = pase_config or PaseConfig()
    if protocol == "pase":
        return PaseBinding(scenario, base)
    if protocol == "pase-dctcp":
        return PaseDctcpBinding(scenario, base)
    if protocol == "pase-local":
        return PaseBinding(scenario, replace(base, end_to_end_arbitration=False))
    if protocol == "pase-noopt":
        return PaseBinding(scenario, replace(
            base, pruning_queues=0, delegation_enabled=False))
    if protocol == "pase-noprobe":
        return PaseBinding(scenario, replace(base, probing_enabled=False))
    raise ValueError(f"unknown protocol {protocol!r}")


PROTOCOL_NAMES = (
    "tcp", "dctcp", "d2tcp", "l2dct", "pdq", "d3", "pfabric",
    "pase", "pase-dctcp", "pase-local", "pase-noopt", "pase-noprobe",
)
