"""Canonical evaluation scenarios from the paper (§4.1, §4.4).

Each :class:`Scenario` knows how to build its topology (given a queue
factory, which the protocol binding supplies) and its traffic pattern, and
carries the flow-size/deadline distributions and background-flow count.

Scale note: the paper simulates 160 hosts in ns2.  A pure-Python packet
simulator is orders of magnitude slower, so the default constructors here
shrink host counts while preserving the *ratios* that drive the results —
the 4:1 ToR oversubscription and 8:1 left-right core contention, the same
flow-size distributions, the same load points.  Every constructor takes the
size parameters explicitly so full-scale runs remain one call away.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Sequence

from repro.faults.schedule import (
    ArbitratorCrash,
    ControlDegrade,
    DataLoss,
    FaultSchedule,
    LinkDown,
)
from repro.sim.engine import Simulator
from repro.sim.network import QueueFactory
from repro.sim.topology import (
    StarTopology,
    Topology,
    TreeTopology,
    TreeTopologyConfig,
)
from repro.utils.units import GBPS, KB, MSEC, USEC
from repro.workloads.distributions import (
    DeadlineDistribution,
    SizeDistribution,
    UniformSizeDistribution,
)
from repro.workloads.patterns import (
    AllToAllIntraRack,
    IncastAllToAll,
    IntraRackRandom,
    LeftRight,
    ManyToOne,
    TrafficPattern,
)


@dataclass
class Scenario:
    """One named evaluation setup."""

    name: str
    build_topology: Callable[[Simulator, QueueFactory], Topology]
    build_pattern: Callable[[Topology], TrafficPattern]
    size_dist: SizeDistribution
    deadline_dist: Optional[DeadlineDistribution] = None
    num_background_flows: int = 0
    #: Nominal propagation RTT used to seed transports' initial estimates.
    base_rtt: float = 300 * USEC
    #: "deadline" scenarios arbitrate EDF; "size" scenarios SJF.
    criterion: str = "size"
    #: Fault schedule armed by the harness for every run of this scenario
    #: (see :mod:`repro.faults`); None keeps runs fault-free.
    fault_schedule: Optional[FaultSchedule] = None


def intra_rack(
    num_hosts: int = 20,
    link_bps: float = 1 * GBPS,
    rtt: float = 300 * USEC,
    sizes: Optional[SizeDistribution] = None,
    with_deadlines: bool = False,
    num_background_flows: int = 2,
) -> Scenario:
    """The D2TCP-replication scenario (§2, Fig. 1; §4.2.1, Fig. 9c):
    intra-rack random pairs, flow sizes U[100 KB, 500 KB], deadlines
    U[5 ms, 25 ms], two long background flows."""
    size_dist = sizes or UniformSizeDistribution(100 * KB, 500 * KB)
    deadline_dist = DeadlineDistribution(5 * MSEC, 25 * MSEC) if with_deadlines else None

    def topology(sim: Simulator, queue_factory: QueueFactory) -> Topology:
        return StarTopology(sim, num_hosts, link_bps, rtt, queue_factory)

    def pattern(topo: Topology) -> TrafficPattern:
        return IntraRackRandom(topo.host_ids(), link_bps)

    return Scenario(
        name=f"intra_rack[{num_hosts}]",
        build_topology=topology,
        build_pattern=pattern,
        size_dist=size_dist,
        deadline_dist=deadline_dist,
        num_background_flows=num_background_flows,
        base_rtt=rtt,
        criterion="deadline" if with_deadlines else "size",
    )


def all_to_all_intra_rack(
    num_hosts: int = 20,
    link_bps: float = 1 * GBPS,
    rtt: float = 300 * USEC,
    sizes: Optional[SizeDistribution] = None,
    num_background_flows: int = 0,
    fanin: int = 8,
) -> Scenario:
    """The search-application worker/aggregator interaction (§2.1 Fig. 4;
    §4.2.2 Fig. 10c): each query makes ``fanin`` workers answer the next
    round-robin aggregator simultaneously (partition-aggregate incast),
    flows U[2 KB, 198 KB].  ``fanin=0`` means every other host responds
    (the paper's full all-to-all); ``fanin=1`` degenerates to unsynchronized
    random worker/aggregator pairs."""
    size_dist = sizes or UniformSizeDistribution(2 * KB, 198 * KB)

    def topology(sim: Simulator, queue_factory: QueueFactory) -> Topology:
        return StarTopology(sim, num_hosts, link_bps, rtt, queue_factory)

    def pattern(topo: Topology) -> TrafficPattern:
        if fanin == 1:
            return AllToAllIntraRack(topo.host_ids(), link_bps)
        return IncastAllToAll(topo.host_ids(), link_bps, fanin=fanin)

    return Scenario(
        name=f"all_to_all[{num_hosts},fanin={fanin}]",
        build_topology=topology,
        build_pattern=pattern,
        size_dist=size_dist,
        num_background_flows=num_background_flows,
        base_rtt=rtt,
    )


def left_right(
    hosts_per_rack: int = 40,
    num_racks: int = 4,
    racks_per_agg: int = 2,
    host_link_bps: float = 1 * GBPS,
    core_rtt: float = 300 * USEC,
    sizes: Optional[SizeDistribution] = None,
    num_background_flows: int = 2,
) -> Scenario:
    """The inter-rack scenario (§4.2.1, Figs. 9a/9b/10a/10b/11/12): every
    left-subtree host sends to right-subtree hosts; the left aggregation's
    core uplink is the bottleneck.

    The fabric capacity is derived from the rack size to preserve the
    paper's ratios: ToR uplinks carry ``hosts_per_rack`` access links at 4:1
    oversubscription, which reproduces the paper's 40-hosts / 10 Gbps
    geometry at any scale.  The default IS the paper's scale (160 hosts) —
    simulation cost scales with flow count, not host count — but note that
    shrinking ``hosts_per_rack`` below ~10 narrows the fabric below a few
    NIC widths and qualitatively changes scheduling dynamics (the top
    priority queue then fits a single flow's demand).
    """
    size_dist = sizes or UniformSizeDistribution(2 * KB, 198 * KB)
    fabric_bps = hosts_per_rack * host_link_bps / 4

    def topology(sim: Simulator, queue_factory: QueueFactory) -> Topology:
        cfg = TreeTopologyConfig(
            num_racks=num_racks,
            racks_per_agg=racks_per_agg,
            hosts_per_rack=hosts_per_rack,
            host_link_bps=host_link_bps,
            fabric_link_bps=fabric_bps,
            core_rtt=core_rtt,
        )
        return TreeTopology(sim, cfg, queue_factory)

    def pattern(topo: Topology) -> TrafficPattern:
        assert isinstance(topo, TreeTopology)
        left = [h.node_id for h in topo.left_hosts()]
        right = [h.node_id for h in topo.right_hosts()]
        return LeftRight(left, right, fabric_bps)

    return Scenario(
        name=f"left_right[{hosts_per_rack}x{num_racks}]",
        build_topology=topology,
        build_pattern=pattern,
        size_dist=size_dist,
        num_background_flows=num_background_flows,
        base_rtt=core_rtt,
    )


def intra_rack_deadlines(**kwargs) -> Scenario:
    """:func:`intra_rack` with the paper's U[5 ms, 25 ms] deadlines — a
    named constructor so the registry can address it without partials."""
    return intra_rack(with_deadlines=True, **kwargs)


def testbed(
    num_hosts: int = 10,
    link_bps: float = 1 * GBPS,
    rtt: float = 250 * USEC,
) -> Scenario:
    """The simulated stand-in for the paper's Linux testbed (§4.4,
    Fig. 13b): one rack, nine clients sending U[100 KB, 500 KB] flows to a
    single server, one long-lived background flow, 100-packet queues with
    K = 20 (handled by the protocol binding's testbed queue settings)."""
    size_dist = UniformSizeDistribution(100 * KB, 500 * KB)

    def topology(sim: Simulator, queue_factory: QueueFactory) -> Topology:
        return StarTopology(sim, num_hosts, link_bps, rtt, queue_factory)

    def pattern(topo: Topology) -> TrafficPattern:
        ids = topo.host_ids()
        return ManyToOne(ids[:-1], ids[-1], link_bps)

    return Scenario(
        name=f"testbed[{num_hosts}]",
        build_topology=topology,
        build_pattern=pattern,
        size_dist=size_dist,
        num_background_flows=1,
        base_rtt=rtt,
    )


# ----------------------------------------------------------------------
# Fault scenarios (PR 2): clean scenarios plus a declarative FaultSchedule.
# All knobs are JSON primitives so runner descriptors stay cache-stable.
# ----------------------------------------------------------------------

def intra_rack_arb_crash(
    crash_at: float = 5 * MSEC,
    crash_duration: Optional[float] = 15 * MSEC,
    arbitrators: Optional[Sequence[str]] = None,
    fault_seed: int = 0,
    **kwargs,
) -> Scenario:
    """:func:`intra_rack` with an arbitrator crash mid-experiment.

    ``arbitrators=None`` crashes the whole control plane (the paper's §3.1
    worst case: every flow loses arbitration and survives on DCTCP
    fallback); pass link names (e.g. ``["h0->sw0"]``) to crash individual
    arbitrators instead.  ``crash_duration=None`` means no recovery."""
    base = intra_rack(**kwargs)
    schedule = FaultSchedule(events=(
        ArbitratorCrash(at=crash_at,
                        links=None if arbitrators is None else tuple(arbitrators),
                        duration=crash_duration),
    ), seed=fault_seed)
    return replace(base, name=base.name + "+arb_crash",
                   fault_schedule=schedule)


def intra_rack_link_flap(
    down_at: float = 5 * MSEC,
    outage: float = 2 * MSEC,
    links: Sequence[str] = ("h1->sw0",),
    flush: bool = True,
    fault_seed: int = 0,
    **kwargs,
) -> Scenario:
    """:func:`intra_rack` with a link flap: the named links go down at
    ``down_at`` and come back ``outage`` later; senders ride it out via
    RTO (and PASE additionally via fallback if their arbitrator's host
    becomes unreachable)."""
    base = intra_rack(**kwargs)
    schedule = FaultSchedule(events=(
        LinkDown(at=down_at, links=tuple(links), duration=outage,
                 flush=flush),
    ), seed=fault_seed)
    return replace(base, name=base.name + "+link_flap",
                   fault_schedule=schedule)


def left_right_lossy_control(
    degrade_at: float = 0.0,
    degrade_duration: Optional[float] = None,
    loss_rate: float = 0.3,
    extra_delay: float = 0.0,
    fault_seed: int = 0,
    **kwargs,
) -> Scenario:
    """:func:`left_right` with a lossy/slow control channel: each explicit
    arbitration message is dropped with ``loss_rate`` (and delayed by
    ``extra_delay``) during the window.  ``degrade_duration=None`` keeps
    the degradation on for the whole run.  Built on the inter-rack scenario
    because only inter-rack arbitration uses explicit control messages —
    intra-rack exchanges are piggybacked on data packets (§3.1.2) and have
    nothing to lose."""
    base = left_right(**kwargs)
    schedule = FaultSchedule(events=(
        ControlDegrade(at=degrade_at, duration=degrade_duration,
                       loss_rate=loss_rate, extra_delay=extra_delay),
    ), seed=fault_seed)
    return replace(base, name=base.name + "+lossy_control",
                   fault_schedule=schedule)


def intra_rack_data_loss(
    loss_at: float = 0.0,
    loss_duration: Optional[float] = None,
    model: str = "bernoulli",
    p: float = 0.01,
    links: Optional[Sequence[str]] = None,
    fault_seed: int = 0,
    **kwargs,
) -> Scenario:
    """:func:`intra_rack` with a data-plane loss model on the named links
    (``None`` = every link).  ``model`` is ``"bernoulli"`` (i.i.d. with
    probability ``p``) or ``"gilbert-elliott"`` (bursty; ``p`` maps to the
    bad-state loss rate)."""
    base = intra_rack(**kwargs)
    params = (("p", p),) if model == "bernoulli" else (("loss_bad", p),)
    schedule = FaultSchedule(events=(
        DataLoss(at=loss_at,
                 links=None if links is None else tuple(links),
                 duration=loss_duration, model=model, params=params),
    ), seed=fault_seed)
    return replace(base, name=base.name + "+data_loss",
                   fault_schedule=schedule)


#: Registry of named scenario constructors.  These names are the stable,
#: declarative identities used by :mod:`repro.runner` descriptors (and both
#: CLIs) — a parallel worker rebuilds the scenario from ``(name, kwargs)``
#: instead of shipping closures across process boundaries.
SCENARIO_BUILDERS: Dict[str, Callable[..., Scenario]] = {
    "intra-rack": intra_rack,
    "intra-rack-deadlines": intra_rack_deadlines,
    "all-to-all": all_to_all_intra_rack,
    "left-right": left_right,
    "testbed": testbed,
    "intra-rack-arb-crash": intra_rack_arb_crash,
    "intra-rack-link-flap": intra_rack_link_flap,
    "left-right-lossy-control": left_right_lossy_control,
    "intra-rack-data-loss": intra_rack_data_loss,
}


def build_scenario(name: str, **kwargs) -> Scenario:
    """Construct a registered scenario by name (see ``SCENARIO_BUILDERS``)."""
    try:
        builder = SCENARIO_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIO_BUILDERS)}"
        ) from None
    return builder(**kwargs)


def scenario_cli_kwargs(name: str, hosts: Optional[int] = None,
                        fanin: int = 8) -> dict:
    """Map the generic ``--hosts``/``--fanin`` CLI flags onto a registered
    scenario's actual constructor parameters.  Lives beside the registry so
    both CLIs (``repro.harness.cli`` and ``repro.runner``) share one
    mapping."""
    if name in ("intra-rack", "intra-rack-deadlines",
                "intra-rack-arb-crash", "intra-rack-link-flap",
                "intra-rack-data-loss"):
        return {"num_hosts": hosts or 20}
    if name == "all-to-all":
        return {"num_hosts": hosts or 20, "fanin": fanin}
    if name in ("left-right", "left-right-lossy-control"):
        return {"hosts_per_rack": hosts or 40}
    if name == "testbed":
        return {"num_hosts": hosts or 10}
    raise ValueError(f"unknown scenario {name!r}")
