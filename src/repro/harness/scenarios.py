"""Canonical evaluation scenarios from the paper (§4.1, §4.4).

Each :class:`Scenario` knows how to build its topology (given a queue
factory, which the protocol binding supplies) and its traffic pattern, and
carries the flow-size/deadline distributions and background-flow count.

Scale note: the paper simulates 160 hosts in ns2.  A pure-Python packet
simulator is orders of magnitude slower, so the default constructors here
shrink host counts while preserving the *ratios* that drive the results —
the 4:1 ToR oversubscription and 8:1 left-right core contention, the same
flow-size distributions, the same load points.  Every constructor takes the
size parameters explicitly so full-scale runs remain one call away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.network import QueueFactory
from repro.sim.topology import (
    StarTopology,
    Topology,
    TreeTopology,
    TreeTopologyConfig,
)
from repro.utils.units import GBPS, KB, MSEC, USEC
from repro.workloads.distributions import (
    DeadlineDistribution,
    SizeDistribution,
    UniformSizeDistribution,
)
from repro.workloads.patterns import (
    AllToAllIntraRack,
    IncastAllToAll,
    IntraRackRandom,
    LeftRight,
    ManyToOne,
    TrafficPattern,
)


@dataclass
class Scenario:
    """One named evaluation setup."""

    name: str
    build_topology: Callable[[Simulator, QueueFactory], Topology]
    build_pattern: Callable[[Topology], TrafficPattern]
    size_dist: SizeDistribution
    deadline_dist: Optional[DeadlineDistribution] = None
    num_background_flows: int = 0
    #: Nominal propagation RTT used to seed transports' initial estimates.
    base_rtt: float = 300 * USEC
    #: "deadline" scenarios arbitrate EDF; "size" scenarios SJF.
    criterion: str = "size"


def intra_rack(
    num_hosts: int = 20,
    link_bps: float = 1 * GBPS,
    rtt: float = 300 * USEC,
    sizes: Optional[SizeDistribution] = None,
    with_deadlines: bool = False,
    num_background_flows: int = 2,
) -> Scenario:
    """The D2TCP-replication scenario (§2, Fig. 1; §4.2.1, Fig. 9c):
    intra-rack random pairs, flow sizes U[100 KB, 500 KB], deadlines
    U[5 ms, 25 ms], two long background flows."""
    size_dist = sizes or UniformSizeDistribution(100 * KB, 500 * KB)
    deadline_dist = DeadlineDistribution(5 * MSEC, 25 * MSEC) if with_deadlines else None

    def topology(sim: Simulator, queue_factory: QueueFactory) -> Topology:
        return StarTopology(sim, num_hosts, link_bps, rtt, queue_factory)

    def pattern(topo: Topology) -> TrafficPattern:
        return IntraRackRandom(topo.host_ids(), link_bps)

    return Scenario(
        name=f"intra_rack[{num_hosts}]",
        build_topology=topology,
        build_pattern=pattern,
        size_dist=size_dist,
        deadline_dist=deadline_dist,
        num_background_flows=num_background_flows,
        base_rtt=rtt,
        criterion="deadline" if with_deadlines else "size",
    )


def all_to_all_intra_rack(
    num_hosts: int = 20,
    link_bps: float = 1 * GBPS,
    rtt: float = 300 * USEC,
    sizes: Optional[SizeDistribution] = None,
    num_background_flows: int = 0,
    fanin: int = 8,
) -> Scenario:
    """The search-application worker/aggregator interaction (§2.1 Fig. 4;
    §4.2.2 Fig. 10c): each query makes ``fanin`` workers answer the next
    round-robin aggregator simultaneously (partition-aggregate incast),
    flows U[2 KB, 198 KB].  ``fanin=0`` means every other host responds
    (the paper's full all-to-all); ``fanin=1`` degenerates to unsynchronized
    random worker/aggregator pairs."""
    size_dist = sizes or UniformSizeDistribution(2 * KB, 198 * KB)

    def topology(sim: Simulator, queue_factory: QueueFactory) -> Topology:
        return StarTopology(sim, num_hosts, link_bps, rtt, queue_factory)

    def pattern(topo: Topology) -> TrafficPattern:
        if fanin == 1:
            return AllToAllIntraRack(topo.host_ids(), link_bps)
        return IncastAllToAll(topo.host_ids(), link_bps, fanin=fanin)

    return Scenario(
        name=f"all_to_all[{num_hosts},fanin={fanin}]",
        build_topology=topology,
        build_pattern=pattern,
        size_dist=size_dist,
        num_background_flows=num_background_flows,
        base_rtt=rtt,
    )


def left_right(
    hosts_per_rack: int = 40,
    num_racks: int = 4,
    racks_per_agg: int = 2,
    host_link_bps: float = 1 * GBPS,
    core_rtt: float = 300 * USEC,
    sizes: Optional[SizeDistribution] = None,
    num_background_flows: int = 2,
) -> Scenario:
    """The inter-rack scenario (§4.2.1, Figs. 9a/9b/10a/10b/11/12): every
    left-subtree host sends to right-subtree hosts; the left aggregation's
    core uplink is the bottleneck.

    The fabric capacity is derived from the rack size to preserve the
    paper's ratios: ToR uplinks carry ``hosts_per_rack`` access links at 4:1
    oversubscription, which reproduces the paper's 40-hosts / 10 Gbps
    geometry at any scale.  The default IS the paper's scale (160 hosts) —
    simulation cost scales with flow count, not host count — but note that
    shrinking ``hosts_per_rack`` below ~10 narrows the fabric below a few
    NIC widths and qualitatively changes scheduling dynamics (the top
    priority queue then fits a single flow's demand).
    """
    size_dist = sizes or UniformSizeDistribution(2 * KB, 198 * KB)
    fabric_bps = hosts_per_rack * host_link_bps / 4

    def topology(sim: Simulator, queue_factory: QueueFactory) -> Topology:
        cfg = TreeTopologyConfig(
            num_racks=num_racks,
            racks_per_agg=racks_per_agg,
            hosts_per_rack=hosts_per_rack,
            host_link_bps=host_link_bps,
            fabric_link_bps=fabric_bps,
            core_rtt=core_rtt,
        )
        return TreeTopology(sim, cfg, queue_factory)

    def pattern(topo: Topology) -> TrafficPattern:
        assert isinstance(topo, TreeTopology)
        left = [h.node_id for h in topo.left_hosts()]
        right = [h.node_id for h in topo.right_hosts()]
        return LeftRight(left, right, fabric_bps)

    return Scenario(
        name=f"left_right[{hosts_per_rack}x{num_racks}]",
        build_topology=topology,
        build_pattern=pattern,
        size_dist=size_dist,
        num_background_flows=num_background_flows,
        base_rtt=core_rtt,
    )


def intra_rack_deadlines(**kwargs) -> Scenario:
    """:func:`intra_rack` with the paper's U[5 ms, 25 ms] deadlines — a
    named constructor so the registry can address it without partials."""
    return intra_rack(with_deadlines=True, **kwargs)


def testbed(
    num_hosts: int = 10,
    link_bps: float = 1 * GBPS,
    rtt: float = 250 * USEC,
) -> Scenario:
    """The simulated stand-in for the paper's Linux testbed (§4.4,
    Fig. 13b): one rack, nine clients sending U[100 KB, 500 KB] flows to a
    single server, one long-lived background flow, 100-packet queues with
    K = 20 (handled by the protocol binding's testbed queue settings)."""
    size_dist = UniformSizeDistribution(100 * KB, 500 * KB)

    def topology(sim: Simulator, queue_factory: QueueFactory) -> Topology:
        return StarTopology(sim, num_hosts, link_bps, rtt, queue_factory)

    def pattern(topo: Topology) -> TrafficPattern:
        ids = topo.host_ids()
        return ManyToOne(ids[:-1], ids[-1], link_bps)

    return Scenario(
        name=f"testbed[{num_hosts}]",
        build_topology=topology,
        build_pattern=pattern,
        size_dist=size_dist,
        num_background_flows=1,
        base_rtt=rtt,
    )


#: Registry of named scenario constructors.  These names are the stable,
#: declarative identities used by :mod:`repro.runner` descriptors (and both
#: CLIs) — a parallel worker rebuilds the scenario from ``(name, kwargs)``
#: instead of shipping closures across process boundaries.
SCENARIO_BUILDERS: Dict[str, Callable[..., Scenario]] = {
    "intra-rack": intra_rack,
    "intra-rack-deadlines": intra_rack_deadlines,
    "all-to-all": all_to_all_intra_rack,
    "left-right": left_right,
    "testbed": testbed,
}


def build_scenario(name: str, **kwargs) -> Scenario:
    """Construct a registered scenario by name (see ``SCENARIO_BUILDERS``)."""
    try:
        builder = SCENARIO_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIO_BUILDERS)}"
        ) from None
    return builder(**kwargs)
