"""Command-line experiment runner.

Run any (protocol, scenario, load) combination without writing a script::

    python -m repro.harness.cli --protocol pase --scenario left-right \
        --load 0.7 --flows 250 --seed 42

    python -m repro.harness.cli --protocol pfabric --scenario all-to-all \
        --load 0.9 --hosts 20 --fanin 16 --buckets

    # fan a small load sweep out over 4 worker processes:
    python -m repro.harness.cli --protocol pase --scenario left-right \
        --load 0.1,0.5,0.9 --jobs 4

Scenario names come from ``repro.harness.scenarios.SCENARIO_BUILDERS``:
``intra-rack``, ``intra-rack-deadlines``, ``all-to-all``, ``left-right``,
``testbed``, plus the fault variants (``intra-rack-arb-crash``,
``intra-rack-link-flap``, ``intra-rack-data-loss``,
``left-right-lossy-control``).  Output is a compact summary (AFCT, tail,
loss, deadline throughput) plus optional per-size-bucket statistics and
control-plane counters.  ``--load`` accepts a comma-separated list; for
full (protocol x load x seed) grids with caching use ``python -m
repro.runner`` instead.

``--output ledger.jsonl`` appends the runner's JSONL run rows, and
``--profile stats.txt`` wraps execution in cProfile (forcing ``--jobs 1``
so the runs stay in-process), dumping cumulative-sorted stats to the
named file and recording its path in the ledger.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core import PaseConfig
from repro.harness.experiment import (ExperimentResult, ExperimentSpec,
                                      run_experiment)
from repro.harness.protocols import PROTOCOL_NAMES
from repro.harness.scenarios import (SCENARIO_BUILDERS, Scenario,
                                     build_scenario, scenario_cli_kwargs)
from repro.metrics.slowdown import bucket_stats
from repro.utils.units import KB

SCENARIO_NAMES = tuple(sorted(SCENARIO_BUILDERS))


def _parse_loads(text: str) -> List[float]:
    try:
        loads = [float(part) for part in text.split(",") if part != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a load or comma-separated loads, got {text!r}") from None
    if not loads:
        raise argparse.ArgumentTypeError("at least one load is required")
    return loads


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Run one PASE-reproduction experiment.",
    )
    parser.add_argument("--protocol", required=True, choices=PROTOCOL_NAMES)
    parser.add_argument("--scenario", required=True, choices=SCENARIO_NAMES)
    parser.add_argument("--load", type=_parse_loads, required=True,
                        help="offered load as a fraction (0, 1.5], or a "
                             "comma-separated list to sweep")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for multi-load sweeps "
                             "(default 1 = serial)")
    parser.add_argument("--flows", type=int, default=200,
                        help="foreground flows to generate (default 200)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--hosts", type=int, default=None,
                        help="hosts (star scenarios) / hosts per rack (left-right)")
    parser.add_argument("--fanin", type=int, default=8,
                        help="incast fan-in for all-to-all (default 8)")
    parser.add_argument("--criterion", default=None,
                        choices=("size", "deadline", "las", "task"),
                        help="override PASE's arbitration criterion")
    parser.add_argument("--early-termination", action="store_true",
                        help="terminate deadline-infeasible flows (PASE)")
    parser.add_argument("--num-queues", type=int, default=None,
                        help="switch priority queues for PASE (default 8)")
    parser.add_argument("--buckets", action="store_true",
                        help="print per-size-bucket FCT statistics")
    parser.add_argument("--horizon", type=float, default=None,
                        help="extra simulated seconds past the last arrival")
    parser.add_argument("--output", type=Path, default=None, metavar="JSONL",
                        help="append run rows to this JSONL ledger")
    parser.add_argument("--profile", type=Path, default=None, metavar="PATH",
                        help="wrap execution in cProfile and dump "
                             "cumulative-sorted stats to PATH (forces "
                             "--jobs 1; the --output ledger records the "
                             "profile's location)")
    return parser


def scenario_kwargs(args: argparse.Namespace) -> dict:
    """Map the CLI's generic size flags onto the scenario's constructor
    parameters (one shared mapping in ``repro.harness.scenarios``)."""
    return scenario_cli_kwargs(args.scenario, args.hosts, args.fanin)


def build_pase_config(args: argparse.Namespace,
                      scenario: Scenario) -> Optional[PaseConfig]:
    overrides = {}
    if args.criterion:
        overrides["criterion"] = args.criterion
    if args.early_termination:
        overrides["early_termination"] = True
    if args.num_queues:
        overrides["num_queues"] = args.num_queues
    if not overrides:
        return None
    overrides.setdefault("criterion", scenario.criterion)
    return PaseConfig(**overrides)


def print_summary(result: ExperimentResult, show_buckets: bool) -> None:
    stats = result.stats
    print(f"protocol:   {result.protocol}")
    print(f"scenario:   {result.scenario}")
    print(f"load:       {result.load:.0%}")
    print(f"flows:      {stats.num_flows} "
          f"(completed {stats.completion_fraction:.1%})")
    print(f"AFCT:       {stats.afct * 1e3:.3f} ms")
    print(f"median FCT: {stats.median_fct * 1e3:.3f} ms")
    print(f"99th FCT:   {stats.p99_fct * 1e3:.3f} ms")
    print(f"loss rate:  {result.loss_rate:.2%}")
    if stats.num_deadline_flows:
        print(f"deadlines:  {stats.application_throughput:.1%} met "
              f"({stats.num_deadlines_met}/{stats.num_deadline_flows})")
    if result.control_plane is not None:
        cp = result.control_plane
        print(f"control:    {cp.messages} messages "
              f"({cp.messages_per_sec:.0f}/s), {cp.prunes} prunes")
    if result.faults is not None:
        fc = result.faults
        injected = ", ".join(f"{k} x{v}" for k, v in sorted(fc.injected.items()))
        print(f"faults:     {injected or 'none'}")
        if fc.fallback_episodes:
            recovery = (f", mean recovery {fc.mean_recovery_latency * 1e3:.1f} ms"
                        if fc.recovery_latencies else "")
            print(f"fallback:   {fc.fallback_episodes} episode(s) across "
                  f"{fc.flows_in_fallback} flow(s), "
                  f"{fc.fallback_time * 1e3:.1f} ms total{recovery}")
    print(f"simulated:  {result.sim_duration * 1e3:.1f} ms "
          f"({result.events} events in {result.wallclock:.1f} s wall)")
    if show_buckets:
        print()
        print(f"{'size bucket':<20}{'flows':<8}{'mean FCT':<12}{'p99 FCT':<12}")
        edges = [10 * KB, 50 * KB, 100 * KB, 200 * KB]
        for b in bucket_stats(result.flows, edges, 1e9, 300e-6):
            if b.count == 0:
                continue
            print(f"{b.label:<20}{b.count:<8}"
                  f"{b.mean_fct * 1e3:<12.3f}{b.p99_fct * 1e3:<12.3f}")


def _dump_profile(profiler, path: Path) -> None:
    """Write cumulative-sorted cProfile stats as text."""
    import pstats

    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        pstats.Stats(profiler, stream=fh).sort_stats("cumulative").print_stats()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    scenario = build_scenario(args.scenario, **scenario_kwargs(args))
    pase_config = build_pase_config(args, scenario)
    loads: List[float] = args.load

    profiler = None
    if args.profile is not None:
        if args.jobs != 1:
            print("--profile forces --jobs 1 (cProfile needs the runs "
                  "in-process)", file=sys.stderr)
            args.jobs = 1
        import cProfile

        profiler = cProfile.Profile()

    if len(loads) == 1 and args.jobs == 1:
        spec = ExperimentSpec(
            args.protocol, scenario, loads[0],
            num_flows=args.flows, seed=args.seed,
            pase_config=pase_config, horizon=args.horizon,
        )
        if profiler is not None:
            profiler.enable()
            result = run_experiment(spec)
            profiler.disable()
            _dump_profile(profiler, args.profile)
        else:
            result = run_experiment(spec)
        print_summary(result, args.buckets)
        if profiler is not None:
            print(f"profile:    {args.profile} (sorted by cumulative time)")
        if args.output is not None:
            from repro.runner import (STATUS_OK, JsonlSink, RunDescriptor,
                                      RunRecord, ScenarioSpec)

            descriptor = RunDescriptor(
                protocol=args.protocol,
                scenario=ScenarioSpec(args.scenario, scenario_kwargs(args)),
                load=loads[0], seed=args.seed, num_flows=args.flows,
                pase_config=pase_config, horizon=args.horizon,
            )
            with JsonlSink(args.output) as sink:
                sink.write_record(RunRecord(
                    descriptor, STATUS_OK, result=result, attempts=1,
                    wallclock=result.wallclock))
                if args.profile is not None:
                    sink.write_profile(args.profile,
                                       run_hash=descriptor.content_hash())
        return 0

    # Multi-load (or explicitly parallel) invocation: fan the points out
    # through the runner.  The declarative ScenarioSpec keeps workers
    # closure-free and the points cache-addressable.
    from repro.runner import (JsonlSink, RunDescriptor, RunnerConfig,
                              ScenarioSpec, run_sweep)

    descriptors = [
        RunDescriptor(
            protocol=args.protocol,
            scenario=ScenarioSpec(args.scenario, scenario_kwargs(args)),
            load=load, seed=args.seed, num_flows=args.flows,
            pase_config=pase_config, horizon=args.horizon,
        )
        for load in loads
    ]
    config = RunnerConfig(jobs=args.jobs, use_cache=False, on_error="record",
                          jsonl_path=args.output)
    if profiler is not None:
        profiler.enable()
        outcome = run_sweep(descriptors, config)
        profiler.disable()
        _dump_profile(profiler, args.profile)
        print(f"profile: {args.profile} (sorted by cumulative time)")
        if args.output is not None:
            with JsonlSink(args.output) as sink:
                sink.write_profile(args.profile)
    else:
        outcome = run_sweep(descriptors, config)
    for record in outcome.records:
        if record.ok:
            print_summary(record.result, args.buckets)
        else:
            print(f"load {record.descriptor.load:.0%}: {record.status}"
                  f"{' — ' + record.error.splitlines()[0] if record.error else ''}",
                  file=sys.stderr)
        print()
    print(outcome.summary_line())
    return 0 if outcome.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
