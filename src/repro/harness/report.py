"""Paper-style result formatting.

The benchmarks print the same rows/series the paper's figures plot; these
helpers keep the formatting consistent so EXPERIMENTS.md can be assembled
from benchmark output directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.harness.experiment import ExperimentResult


def format_series_table(
    title: str,
    loads: Sequence[float],
    series: Mapping[str, Mapping[float, float]],
    unit: str = "",
    precision: int = 3,
) -> str:
    """Render load-vs-metric series (one column per protocol) as a table.

    ``series`` maps protocol name -> {load: value}.
    """
    names = list(series.keys())
    header = ["load(%)"] + [f"{n}{unit and f' ({unit})'}" for n in names]
    widths = [max(9, len(h) + 1) for h in header]
    lines = [title, "-" * len(title)]
    lines.append("".join(h.ljust(w) for h, w in zip(header, widths)))
    for load in loads:
        row = [f"{load * 100:.0f}"]
        for name in names:
            value = series[name].get(load, float("nan"))
            row.append(f"{value:.{precision}f}")
        lines.append("".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_from_results(
    results: Mapping[str, Mapping[float, ExperimentResult]],
    metric: str,
    scale: float = 1.0,
) -> Dict[str, Dict[float, float]]:
    """Extract ``metric`` (an ExperimentResult attribute) per protocol/load."""
    out: Dict[str, Dict[float, float]] = {}
    for protocol, by_load in results.items():
        out[protocol] = {
            load: getattr(result, metric) * scale
            for load, result in by_load.items()
        }
    return out


def format_cdf(title: str, cdfs: Mapping[str, Iterable[tuple]], unit: str = "ms") -> str:
    """Render FCT CDFs side by side at decile resolution."""
    lines = [title, "-" * len(title)]
    deciles = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
    header = ["fraction"] + list(cdfs.keys())
    lines.append("".join(h.ljust(14) for h in header))
    materialized = {name: list(points) for name, points in cdfs.items()}
    for q in deciles:
        row = [f"{q:.2f}"]
        for name in cdfs:
            points = materialized[name]
            value = next((fct for fct, frac in points if frac >= q), float("nan"))
            row.append(f"{value * 1e3:.3f}{unit}" if unit == "ms" else f"{value:.4f}")
        lines.append("".join(c.ljust(14) for c in row))
    return "\n".join(lines)


def improvement_row(
    loads: Sequence[float],
    baseline: Mapping[float, ExperimentResult],
    candidate: Mapping[float, ExperimentResult],
) -> List[float]:
    """Percent AFCT improvement of candidate over baseline per load (the
    annotations printed above Fig. 10c's bars)."""
    out = []
    for load in loads:
        b = baseline[load].afct
        c = candidate[load].afct
        out.append(100.0 * (b - c) / b if b and b == b else float("nan"))
    return out
