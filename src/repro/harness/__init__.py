"""Experiment harness: scenarios, protocol bindings, runner, reporting."""

from repro.harness.experiment import (ExperimentResult, ExperimentSpec,
                                      run_experiment, sweep_loads)
from repro.harness.protocols import PROTOCOL_NAMES, ProtocolBinding, make_binding
from repro.harness.report import (
    format_cdf,
    format_series_table,
    improvement_row,
    series_from_results,
)
from repro.harness.scenarios import (
    Scenario,
    all_to_all_intra_rack,
    intra_rack,
    left_right,
    testbed,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "run_experiment",
    "sweep_loads",
    "PROTOCOL_NAMES",
    "ProtocolBinding",
    "make_binding",
    "format_cdf",
    "format_series_table",
    "improvement_row",
    "series_from_results",
    "Scenario",
    "all_to_all_intra_rack",
    "intra_rack",
    "left_right",
    "testbed",
]

from repro.harness.replication import (
    Replication,
    compare_protocols,
    replicate,
    significantly_better,
)

__all__ += [
    "Replication",
    "compare_protocols",
    "replicate",
    "significantly_better",
]
