"""The experiment runner: one :class:`ExperimentSpec` → metrics.

``run_experiment(spec)`` builds the simulator, topology, and protocol
machinery, materializes the Poisson workload, launches each flow's agents
at its arrival time, and runs until every foreground flow completes (or a
safety horizon passes).  It returns an :class:`ExperimentResult` bundling
flow records, FCT statistics, loss accounting, and — for PASE —
control-plane overhead counters.

:class:`ExperimentSpec` is the one canonical description of a run; every
entry point (``sweep_loads``, ``repro.runner`` descriptors, the CLIs, the
benchmark suite) constructs a spec.  The historical keyword signature
``run_experiment(protocol, scenario, load, ...)`` still works through a
deprecation shim but new code should build specs.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional

from repro.core import PaseConfig
from repro.core.control_plane import PaseControlPlane
from repro.faults import FaultInjector, FaultSchedule
from repro.metrics.faults import FaultCounters
from repro.metrics.overhead import ControlPlaneCounters, NetworkCounters
from repro.metrics.stats import FlowStats
from repro.sim.engine import Simulator
from repro.transports.flow import Flow
from repro.workloads.generator import WorkloadConfig, generate_workload

from repro.harness.protocols import ProtocolBinding, make_binding
from repro.harness.scenarios import Scenario


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything that determines one run, as immutable plain data.

    Field names deliberately mirror the historical ``run_experiment``
    keywords, so legacy call sites convert mechanically::

        run_experiment("pase", scn, 0.5, num_flows=40, seed=7)
        # becomes
        run_experiment(ExperimentSpec("pase", scn, 0.5, num_flows=40, seed=7))

    ``binding_overrides`` carries extra keyword arguments for
    :func:`~repro.harness.protocols.make_binding` (ignored when an explicit
    ``binding`` is supplied, exactly as before).
    """

    protocol: str
    scenario: Scenario
    load: float
    num_flows: int = 300
    seed: int = 1
    pase_config: Optional[PaseConfig] = None
    horizon: Optional[float] = None
    fault_schedule: Optional[FaultSchedule] = None
    binding: Optional[ProtocolBinding] = None
    binding_overrides: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def build(cls, protocol: str, scenario: Scenario, load: float,
              num_flows: int = 300, seed: int = 1,
              pase_config: Optional[PaseConfig] = None,
              horizon: Optional[float] = None,
              binding: Optional["ProtocolBinding"] = None,
              fault_schedule: Optional[FaultSchedule] = None,
              **binding_overrides: Any) -> "ExperimentSpec":
        """Construct a spec from loose keywords — the parameter order is the
        historical ``run_experiment`` signature, and unrecognised keywords
        land in ``binding_overrides``.  This is the bridge for the
        deprecation shim and for sweep plumbing that forwards ``**kwargs``
        untyped."""
        return cls(protocol, scenario, load, num_flows=num_flows, seed=seed,
                   pase_config=pase_config, horizon=horizon,
                   fault_schedule=fault_schedule, binding=binding,
                   binding_overrides=binding_overrides)

    def replace(self, **changes: Any) -> "ExperimentSpec":
        """A copy with the given fields changed (spec fields only)."""
        return replace(self, **changes)

    @property
    def label(self) -> str:
        return (f"{self.protocol}/{self.scenario.name}"
                f"/load={self.load:g}/seed={self.seed}")


@dataclass
class ExperimentResult:
    """Everything measured in one run."""

    protocol: str
    scenario: str
    load: float
    flows: List[Flow]
    stats: FlowStats
    network: NetworkCounters
    control_plane: Optional[ControlPlaneCounters]
    sim_duration: float
    wallclock: float
    events: int
    #: Fault-injection roll-up; None when the run had no fault schedule.
    faults: Optional[FaultCounters] = None

    @property
    def afct(self) -> float:
        return self.stats.afct

    @property
    def p99_fct(self) -> float:
        return self.stats.p99_fct

    @property
    def application_throughput(self) -> float:
        return self.stats.application_throughput

    @property
    def loss_rate(self) -> float:
        return self.network.loss_rate

    def detach(self) -> "ExperimentResult":
        """A copy safe to ship across process boundaries.

        ``Flow`` is a plain dataclass and none of the transports store
        simulator back-references on it today, but nothing stops an agent
        from stashing one (``flow.__dict__`` is open).  Rebuilding every
        flow from its declared fields drops any such foreign attributes,
        so pickling a result can never drag a live :class:`Simulator`
        (and its event heap) across the pipe.
        """
        return replace(self, flows=[replace(f) for f in self.flows])


def run_experiment(spec, *legacy_args, **legacy_kwargs) -> ExperimentResult:
    """Run one experiment and collect its metrics.

    The canonical call is ``run_experiment(spec)`` with an
    :class:`ExperimentSpec`.  The historical keyword form
    ``run_experiment(protocol, scenario, load, ...)`` still works but emits
    a :class:`DeprecationWarning`; it will be removed once external callers
    have migrated.
    """
    if isinstance(spec, ExperimentSpec):
        if legacy_args or legacy_kwargs:
            raise TypeError(
                "run_experiment(spec) takes no additional arguments; "
                "put them on the ExperimentSpec instead")
        return _execute(spec)
    warnings.warn(
        "run_experiment(protocol, scenario, load, ...) is deprecated; "
        "pass an ExperimentSpec: run_experiment(ExperimentSpec(...))",
        DeprecationWarning, stacklevel=2)
    return _execute(ExperimentSpec.build(spec, *legacy_args, **legacy_kwargs))


def _execute(spec: ExperimentSpec) -> ExperimentResult:
    """Execute one :class:`ExperimentSpec`.

    ``spec.horizon`` caps simulated time past the last arrival (default 2 s)
    so a protocol that strands flows still terminates; stranded flows show
    up in ``stats.completion_fraction`` and count as missed deadlines.

    ``spec.fault_schedule`` (or the scenario's own ``fault_schedule``) arms
    a :class:`~repro.faults.FaultInjector` against the run; the result then
    carries a :class:`~repro.metrics.faults.FaultCounters`.  Without one,
    nothing fault-related executes and results are byte-identical to a
    fault-free build.
    """
    protocol = spec.protocol
    scenario = spec.scenario
    load = spec.load
    num_flows = spec.num_flows
    seed = spec.seed
    horizon = spec.horizon
    fault_schedule = spec.fault_schedule

    sim = Simulator()
    binding = spec.binding
    if binding is None:
        binding = make_binding(protocol, scenario, spec.pase_config,
                               **spec.binding_overrides)
    topology = scenario.build_topology(sim, binding.queue_factory())
    binding.setup_network(sim, topology)

    if fault_schedule is None:
        fault_schedule = scenario.fault_schedule
    injector: Optional[FaultInjector] = None
    if fault_schedule:
        injector = FaultInjector(
            sim, topology.network, fault_schedule,
            control_plane=getattr(binding, "control_plane", None))

    pattern = scenario.build_pattern(topology)
    workload = WorkloadConfig(
        pattern=pattern,
        size_dist=scenario.size_dist,
        load=load,
        num_flows=num_flows,
        seed=seed,
        deadline_dist=scenario.deadline_dist,
        num_background_flows=scenario.num_background_flows,
    )
    flows = generate_workload(workload)
    foreground = [f for f in flows if not f.background]
    remaining = len(foreground)

    def on_complete(_flow: Flow) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining == 0:
            sim.stop()

    def on_sender_done(flow: Flow) -> None:
        # Early-terminated flows never reach the receiver-side completion
        # callback; count them here so the run still ends promptly.
        if flow.terminated and not flow.completed and not flow.background:
            on_complete(flow)

    def launch(flow: Flow) -> None:
        dst_host = topology.network.nodes[flow.dst]
        src_host = topology.network.nodes[flow.src]
        done = None if flow.background else on_complete
        binding.make_receiver(sim, dst_host, flow, done)
        sender = binding.make_sender(sim, src_host, flow, on_done=on_sender_done)
        sender.start()

    for flow in flows:
        sim.schedule_at(flow.start_time, launch, flow)

    last_arrival = max(f.start_time for f in flows)
    cap = last_arrival + (2.0 if horizon is None else horizon)
    start_wall = time.perf_counter()
    sim.run(until=cap)
    wallclock = time.perf_counter() - start_wall

    duration = sim.now
    control: Optional[ControlPlaneCounters] = None
    cp = getattr(binding, "control_plane", None)
    if isinstance(cp, PaseControlPlane):
        control = ControlPlaneCounters(
            messages=cp.messages_sent,
            messages_by_level=dict(cp.messages_by_level),
            requests=cp.requests_started,
            prunes=cp.prunes,
            duration=duration,
            processed_by_level=dict(cp.processed_by_level),
            requests_failed=cp.requests_failed,
            consults_aborted=cp.consults_aborted,
            messages_lost=cp.control_messages_lost,
        )

    faults: Optional[FaultCounters] = None
    if injector is not None:
        faults = FaultCounters.collect(
            injector, flows,
            control_plane=cp if isinstance(cp, PaseControlPlane) else None)

    return ExperimentResult(
        protocol=protocol,
        scenario=scenario.name,
        load=load,
        flows=flows,
        stats=FlowStats.from_flows(flows),
        network=NetworkCounters.from_network(topology.network, duration),
        control_plane=control,
        sim_duration=duration,
        wallclock=wallclock,
        events=sim.events_processed,
        faults=faults,
    )


def sweep_loads(
    protocol: str,
    scenario_factory,
    loads,
    num_flows: int = 300,
    seed: int = 1,
    pase_config: Optional[PaseConfig] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
    cache_dir=None,
    **kwargs,
) -> Dict[float, ExperimentResult]:
    """Run ``protocol`` across ``loads``; a fresh scenario per point keeps
    runs independent.  ``scenario_factory`` is a zero-argument callable
    (or a :class:`repro.runner.ScenarioSpec` to make the points cacheable).

    ``jobs=1`` (the default) executes serially in-process, exactly as it
    always has; ``jobs > 1`` fans the points out over ``repro.runner``
    worker processes.  ``cache_dir`` opts into the on-disk result cache
    (only effective for ScenarioSpec-described scenarios).
    """
    if jobs == 1 and cache_dir is None:
        results: Dict[float, ExperimentResult] = {}
        for load in loads:
            spec = ExperimentSpec.build(
                protocol, scenario_factory(), load,
                num_flows=num_flows, seed=seed, pase_config=pase_config,
                **kwargs,
            )
            results[load] = run_experiment(spec)
        return results

    from repro.runner import (RunDescriptor, RunnerConfig, results_by_load,
                              run_sweep)

    horizon = kwargs.pop("horizon", None)
    descriptors = [
        RunDescriptor(protocol=protocol, scenario=scenario_factory,
                      load=load, seed=seed, num_flows=num_flows,
                      pase_config=pase_config, horizon=horizon,
                      overrides=dict(kwargs))
        for load in loads
    ]
    outcome = run_sweep(descriptors, RunnerConfig(
        jobs=jobs, timeout=timeout, retries=retries,
        use_cache=cache_dir is not None, cache_dir=cache_dir,
        on_error="raise",
    ))
    return results_by_load(outcome.records)
