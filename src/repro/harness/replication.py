"""Multi-seed replication: mean, spread, and confidence intervals.

Single-seed sweeps are fine for shape-checking; claims about one protocol
beating another by X% deserve replication.  :func:`replicate` runs the same
experiment across seeds and aggregates any scalar metric;
:func:`compare_protocols` reports each protocol's mean ± half-width of a
normal-approximation confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core import PaseConfig
from repro.harness.experiment import (ExperimentResult, ExperimentSpec,
                                      run_experiment)
from repro.harness.scenarios import Scenario

#: Extracts a scalar from a result, e.g. ``lambda r: r.afct``.
Metric = Callable[[ExperimentResult], float]

#: z-values for common confidence levels (normal approximation).
_Z = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


@dataclass
class Replication:
    """Aggregated scalar metric over seed replicas."""

    values: List[float]
    confidence: float = 0.95

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / (self.n - 1))

    @property
    def ci_halfwidth(self) -> float:
        """Half-width of the normal-approximation confidence interval."""
        if self.n < 2:
            return 0.0
        z = _Z.get(self.confidence)
        if z is None:
            raise ValueError(f"unsupported confidence {self.confidence}; "
                             f"use one of {sorted(_Z)}")
        return z * self.std / math.sqrt(self.n)

    @property
    def low(self) -> float:
        return self.mean - self.ci_halfwidth

    @property
    def high(self) -> float:
        return self.mean + self.ci_halfwidth

    def overlaps(self, other: "Replication") -> bool:
        """True when the two confidence intervals overlap (a difference is
        only trustworthy when they do not)."""
        return self.low <= other.high and other.low <= self.high

    def __repr__(self) -> str:
        return (f"Replication(n={self.n}, mean={self.mean:.6g} "
                f"± {self.ci_halfwidth:.2g})")


def replicate(
    protocol: str,
    scenario_factory: Callable[[], Scenario],
    load: float,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    metric: Metric = lambda r: r.afct,
    num_flows: int = 150,
    pase_config: Optional[PaseConfig] = None,
    confidence: float = 0.95,
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
    cache_dir=None,
    **kwargs,
) -> Replication:
    """Run one experiment once per seed and aggregate ``metric``.

    ``jobs > 1`` fans the seed replicas out over ``repro.runner`` worker
    processes (seed order is preserved in the aggregate either way);
    ``jobs=1`` without a cache keeps the legacy serial path."""
    if jobs == 1 and cache_dir is None:
        values = []
        for seed in seeds:
            spec = ExperimentSpec.build(protocol, scenario_factory(), load,
                                        num_flows=num_flows, seed=seed,
                                        pase_config=pase_config, **kwargs)
            values.append(metric(run_experiment(spec)))
        return Replication(values, confidence=confidence)

    from repro.runner import (RunDescriptor, RunnerConfig,
                              metric_values_by_seed, run_sweep)

    horizon = kwargs.pop("horizon", None)
    descriptors = [
        RunDescriptor(protocol=protocol, scenario=scenario_factory,
                      load=load, seed=seed, num_flows=num_flows,
                      pase_config=pase_config, horizon=horizon,
                      overrides=dict(kwargs))
        for seed in seeds
    ]
    outcome = run_sweep(descriptors, RunnerConfig(
        jobs=jobs, timeout=timeout, retries=retries,
        use_cache=cache_dir is not None, cache_dir=cache_dir,
        on_error="raise",
    ))
    return Replication(metric_values_by_seed(outcome.records, metric),
                       confidence=confidence)


def compare_protocols(
    protocols: Sequence[str],
    scenario_factory: Callable[[], Scenario],
    load: float,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    metric: Metric = lambda r: r.afct,
    **kwargs,
) -> Dict[str, Replication]:
    """Replicate each protocol on identical workloads (same seed set)."""
    return {
        protocol: replicate(protocol, scenario_factory, load, seeds=seeds,
                            metric=metric, **kwargs)
        for protocol in protocols
    }


def significantly_better(
    candidate: Replication,
    baseline: Replication,
) -> bool:
    """True when the candidate's CI lies entirely below the baseline's
    (smaller is better, as for FCT metrics)."""
    return candidate.high < baseline.low
