"""Normalized FCT ("slowdown") and per-size-bucket statistics.

The transport literature (pFabric, PIAS, Homa) reports *slowdown* — a
flow's FCT divided by the FCT it would achieve alone on an idle path — so
short and long flows can share one scale, and breaks results into size
buckets (e.g. "(0, 100 KB]" vs "(1 MB, inf)").  The PASE paper reports raw
FCTs; these helpers support the deeper per-bucket analysis used in our
extended benchmarks and in debugging scheduling behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.metrics.stats import percentile
from repro.transports.flow import Flow
from repro.utils.units import bytes_to_bits


def ideal_fct(flow: Flow, bottleneck_bps: float, base_rtt: float) -> float:
    """FCT of ``flow`` alone on an idle path: one RTT of signalling plus
    serialization at the bottleneck."""
    if bottleneck_bps <= 0:
        raise ValueError(f"bottleneck_bps must be positive, got {bottleneck_bps}")
    return base_rtt + bytes_to_bits(flow.size_bytes) / bottleneck_bps


def slowdowns(
    flows: Iterable[Flow],
    bottleneck_bps: float,
    base_rtt: float,
) -> List[float]:
    """Per-flow slowdowns for completed foreground flows (>= 1 up to
    scheduling noise)."""
    out = []
    for flow in flows:
        if flow.background or not flow.completed:
            continue
        out.append(flow.fct / ideal_fct(flow, bottleneck_bps, base_rtt))
    return out


@dataclass
class BucketStats:
    """FCT statistics for one flow-size bucket."""

    low_bytes: float
    high_bytes: float
    count: int
    mean_fct: float
    p99_fct: float
    mean_slowdown: float

    @property
    def label(self) -> str:
        high = "inf" if math.isinf(self.high_bytes) else f"{self.high_bytes / 1000:.0f}KB"
        return f"({self.low_bytes / 1000:.0f}KB, {high}]"


def bucket_stats(
    flows: Iterable[Flow],
    edges_bytes: Sequence[float],
    bottleneck_bps: float,
    base_rtt: float,
) -> List[BucketStats]:
    """Bucket completed foreground flows by size at ``edges_bytes``
    boundaries (an implicit final bucket extends to infinity)."""
    if list(edges_bytes) != sorted(edges_bytes):
        raise ValueError("edges must be sorted ascending")
    bounds = [0.0] + list(edges_bytes) + [math.inf]
    buckets: List[List[Flow]] = [[] for _ in range(len(bounds) - 1)]
    for flow in flows:
        if flow.background or not flow.completed:
            continue
        for i in range(len(bounds) - 1):
            if bounds[i] < flow.size_bytes <= bounds[i + 1]:
                buckets[i].append(flow)
                break
    stats: List[BucketStats] = []
    for i, members in enumerate(buckets):
        if not members:
            stats.append(BucketStats(bounds[i], bounds[i + 1], 0,
                                     float("nan"), float("nan"), float("nan")))
            continue
        fcts = sorted(f.fct for f in members)
        slows = [f.fct / ideal_fct(f, bottleneck_bps, base_rtt)
                 for f in members]
        stats.append(BucketStats(
            low_bytes=bounds[i],
            high_bytes=bounds[i + 1],
            count=len(members),
            mean_fct=sum(fcts) / len(fcts),
            p99_fct=percentile(fcts, 99),
            mean_slowdown=sum(slows) / len(slows),
        ))
    return stats


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index over per-flow allocations/throughputs:
    1.0 = perfectly fair, 1/n = maximally unfair."""
    vals = [v for v in values if v == v]  # drop NaNs
    if not vals:
        raise ValueError("jain_fairness of empty data")
    total = sum(vals)
    squares = sum(v * v for v in vals)
    if squares == 0:
        return 1.0
    return (total * total) / (len(vals) * squares)


def throughputs(flows: Iterable[Flow]) -> List[float]:
    """Achieved goodput (bits/s) of each completed foreground flow."""
    out = []
    for flow in flows:
        if flow.background or not flow.completed or flow.fct <= 0:
            continue
        out.append(bytes_to_bits(flow.size_bytes) / flow.fct)
    return out
