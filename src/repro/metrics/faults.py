"""Fault-injection observability.

:class:`FaultCounters` rolls up one run's degradation story: what the
:class:`~repro.faults.injector.FaultInjector` actually fired, what it cost
the data plane (injected drops, link-outage losses), and how the protocol
degraded and recovered (DCTCP fallback episodes, time in fallback, recovery
latency, failed/aborted arbitration requests).  The harness attaches one to
:class:`~repro.harness.experiment.ExperimentResult` whenever a fault
schedule ran; the runner flattens it into the JSONL ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.control_plane import PaseControlPlane
    from repro.faults.injector import FaultInjector
    from repro.transports.flow import Flow


@dataclass
class FaultCounters:
    """Snapshot of one run's fault injections and degradation response."""

    #: Fault activations by kind (e.g. ``{"link-down": 2, "link-up": 2}``).
    injected: Dict[str, int] = field(default_factory=dict)
    #: Data packets eaten by injected loss models (Bernoulli / Gilbert–Elliott).
    injected_loss_drops: int = 0
    #: Packets lost to link outages (flushed, corrupted, or offered while down).
    link_down_drops: int = 0
    # -- PASE degradation story ----------------------------------------
    #: DCTCP-fallback entries summed over all flows.
    fallback_episodes: int = 0
    #: Flows that fell back at least once.
    flows_in_fallback: int = 0
    #: Total seconds spent in fallback, summed over flows.
    fallback_time: float = 0.0
    #: Seconds from fallback entry to the next arbitration response, one
    #: entry per recovered episode (episodes open at flow completion count
    #: toward ``fallback_time`` only).
    recovery_latencies: List[float] = field(default_factory=list)
    # -- control-plane failure accounting -------------------------------
    #: Requests refused outright (local arbitrator / whole plane down).
    requests_failed: int = 0
    #: Half-path walks that died at a crashed arbitrator mid-chain.
    consults_aborted: int = 0
    #: Explicit control messages eaten by a degraded control channel.
    control_messages_lost: int = 0
    #: crash() invocations (one per ArbitratorCrash activation).
    arbitrator_crashes: int = 0

    @classmethod
    def collect(
        cls,
        injector: "FaultInjector",
        flows: Iterable["Flow"],
        control_plane: Optional["PaseControlPlane"] = None,
    ) -> "FaultCounters":
        counters = cls(
            injected=dict(injector.injected),
            injected_loss_drops=injector.injected_loss_drops,
            link_down_drops=injector.link_down_drops,
        )
        for flow in flows:
            if flow.fallback_episodes:
                counters.fallback_episodes += flow.fallback_episodes
                counters.flows_in_fallback += 1
                counters.fallback_time += flow.fallback_time
                counters.recovery_latencies.extend(flow.recovery_latencies)
        if control_plane is not None:
            counters.requests_failed = control_plane.requests_failed
            counters.consults_aborted = control_plane.consults_aborted
            counters.control_messages_lost = control_plane.control_messages_lost
            counters.arbitrator_crashes = control_plane.arbitrator_crashes
        return counters

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def mean_recovery_latency(self) -> Optional[float]:
        if not self.recovery_latencies:
            return None
        return sum(self.recovery_latencies) / len(self.recovery_latencies)

    @property
    def max_recovery_latency(self) -> Optional[float]:
        if not self.recovery_latencies:
            return None
        return max(self.recovery_latencies)

    def to_json_dict(self) -> Dict[str, Any]:
        """Flatten for the runner's JSONL ledger (no per-episode list)."""
        return {
            "injected": dict(self.injected),
            "injected_loss_drops": self.injected_loss_drops,
            "link_down_drops": self.link_down_drops,
            "fallback_episodes": self.fallback_episodes,
            "flows_in_fallback": self.flows_in_fallback,
            "fallback_time_s": round(self.fallback_time, 9),
            "recoveries": len(self.recovery_latencies),
            "mean_recovery_latency_s": self.mean_recovery_latency,
            "max_recovery_latency_s": self.max_recovery_latency,
            "requests_failed": self.requests_failed,
            "consults_aborted": self.consults_aborted,
            "control_messages_lost": self.control_messages_lost,
            "arbitrator_crashes": self.arbitrator_crashes,
        }
