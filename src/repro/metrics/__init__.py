"""Measurement: FCT statistics, deadline throughput, loss and control
overhead accounting."""

from repro.metrics.faults import FaultCounters
from repro.metrics.overhead import (
    ControlPlaneCounters,
    NetworkCounters,
    overhead_reduction,
)
from repro.metrics.slowdown import (
    BucketStats,
    bucket_stats,
    ideal_fct,
    jain_fairness,
    slowdowns,
    throughputs,
)
from repro.metrics.stats import FlowStats, afct_improvement, percentile
from repro.metrics.timeseries import Series, TimeSeriesProbe

__all__ = [
    "FaultCounters",
    "ControlPlaneCounters",
    "NetworkCounters",
    "overhead_reduction",
    "FlowStats",
    "afct_improvement",
    "percentile",
    "BucketStats",
    "bucket_stats",
    "ideal_fct",
    "jain_fairness",
    "slowdowns",
    "throughputs",
    "Series",
    "TimeSeriesProbe",
]
