"""Network-side metrics: loss rate and control-plane overhead.

Loss rate (Fig. 4) is counted at egress queues as dropped-data-packets over
offered-data-packets.  Control overhead (Fig. 11b) is the arbitration
message count from :class:`~repro.core.control_plane.PaseControlPlane`,
normalized per second of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.network import Network


@dataclass
class NetworkCounters:
    """Snapshot of a run's data-plane accounting."""

    data_pkts_offered: int
    data_pkts_dropped: int
    duration: float

    @classmethod
    def from_network(cls, network: Network, duration: float) -> "NetworkCounters":
        return cls(
            data_pkts_offered=network.total_data_offered(),
            data_pkts_dropped=network.total_drops(),
            duration=duration,
        )

    @property
    def loss_rate(self) -> float:
        if self.data_pkts_offered == 0:
            return 0.0
        return self.data_pkts_dropped / self.data_pkts_offered


@dataclass
class ControlPlaneCounters:
    """Arbitration overhead accounting (PASE runs only)."""

    messages: int
    messages_by_level: Dict[int, int]
    requests: int
    prunes: int
    duration: float
    #: Arbitration decisions computed per placement level (0 host, 1 ToR,
    #: 2 aggregation) — the processing-load metric early pruning targets.
    processed_by_level: Optional[Dict[int, int]] = None
    #: Fault-injection failure accounting (all zero in clean runs):
    #: requests refused outright, half-path walks dead-ended at a crashed
    #: arbitrator, and control messages eaten by a degraded channel.
    requests_failed: int = 0
    consults_aborted: int = 0
    messages_lost: int = 0

    @property
    def messages_per_sec(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.messages / self.duration


def overhead_reduction(baseline_messages: float, optimized_messages: float) -> float:
    """Percent reduction in control messages (Fig. 11b's metric)."""
    if baseline_messages <= 0:
        return 0.0
    return 100.0 * (baseline_messages - optimized_messages) / baseline_messages
