"""Windowed time-series collection: queue depths, link utilization, and
active-flow counts sampled on a fixed period.

The figure benchmarks only need end-of-run aggregates, but diagnosing *why*
a protocol behaves as it does (is the bottleneck idle during flow
switching? how deep does the top queue run?) needs the trajectory.  A
:class:`TimeSeriesProbe` schedules itself on the simulator and snapshots a
set of user-provided gauges every ``period`` seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.utils.validation import check_positive

#: A gauge reads one float from the live simulation.
Gauge = Callable[[], float]


@dataclass
class Series:
    """One sampled metric: parallel time/value arrays."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, t: float, v: float) -> None:
        self.times.append(t)
        self.values.append(v)

    @property
    def mean(self) -> float:
        if not self.values:
            return float("nan")
        return sum(self.values) / len(self.values)

    @property
    def peak(self) -> float:
        if not self.values:
            return float("nan")
        return max(self.values)

    def over(self, threshold: float) -> float:
        """Fraction of samples strictly above ``threshold``."""
        if not self.values:
            return float("nan")
        return sum(1 for v in self.values if v > threshold) / len(self.values)


class TimeSeriesProbe:
    """Samples registered gauges every ``period`` simulated seconds."""

    def __init__(self, sim: Simulator, period: float = 100e-6) -> None:
        self.sim = sim
        self.period = check_positive("period", period)
        self.series: Dict[str, Series] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._running = False

    def add_gauge(self, name: str, gauge: Gauge) -> Series:
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} already registered")
        self._gauges[name] = gauge
        series = Series(name)
        self.series[name] = series
        return series

    # -- convenience gauges ------------------------------------------------
    def watch_queue_depth(self, link: Link, name: Optional[str] = None) -> Series:
        """Sample the packet occupancy of a link's egress queue."""
        return self.add_gauge(name or f"qdepth:{link.name}",
                              lambda: float(len(link.queue)))

    def watch_utilization(self, link: Link, name: Optional[str] = None) -> Series:
        """Sample a link's cumulative busy fraction (monotone in time)."""
        return self.add_gauge(name or f"util:{link.name}",
                              lambda: link.utilization())

    def watch_busy(self, link: Link, name: Optional[str] = None) -> Series:
        """Sample whether the link is transmitting right now (0/1)."""
        return self.add_gauge(name or f"busy:{link.name}",
                              lambda: 1.0 if link.busy else 0.0)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule(0.0, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        for name, gauge in self._gauges.items():
            self.series[name].append(now, gauge())
        self.sim.schedule(self.period, self._tick)

    def window_utilization(self, link_series: Series) -> List[Tuple[float, float]]:
        """Differentiate a cumulative-utilization series into per-window
        utilization values: ``[(t, rho_window), ...]``."""
        out: List[Tuple[float, float]] = []
        times, vals = link_series.times, link_series.values
        for i in range(1, len(times)):
            dt = times[i] - times[i - 1]
            if dt <= 0:
                continue
            # utilization() is busy_time/now; recover the window's share.
            busy_i = vals[i] * times[i]
            busy_prev = vals[i - 1] * times[i - 1]
            out.append((times[i], max(0.0, min(1.0, (busy_i - busy_prev) / dt))))
        return out
