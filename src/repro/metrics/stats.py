"""Flow-completion-time statistics: the paper's headline metrics.

* **AFCT** — average FCT of completed foreground flows (Figs. 2, 9a, 10c,
  11a, 12, 13),
* **99th-percentile FCT** — tail latency (Fig. 10a),
* **FCT CDF** — distribution at a fixed load (Figs. 9b, 10b),
* **application throughput** — fraction of deadline flows finishing within
  their deadline (Figs. 1, 9c).

Incomplete foreground flows are a reproduction hazard: silently ignoring
them flatters a protocol that strands flows.  :class:`FlowStats` therefore
tracks the completion fraction explicitly and (optionally) penalizes
incomplete flows in deadline metrics, matching how the paper counts a flow
that misses its deadline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.transports.flow import Flow


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile (``p`` in [0, 100]) of sorted data."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0 <= p <= 100:
        raise ValueError(f"p must be in [0, 100], got {p}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100) * (len(sorted_values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    frac = rank - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


@dataclass
class FlowStats:
    """Summary statistics over one experiment's foreground flows."""

    num_flows: int
    num_completed: int
    fcts: List[float]  # sorted, completed foreground flows only
    num_deadline_flows: int
    num_deadlines_met: int

    @classmethod
    def from_flows(cls, flows: Iterable[Flow]) -> "FlowStats":
        foreground = [f for f in flows if not f.background]
        fcts = sorted(f.fct for f in foreground if f.completed)
        deadline_flows = [f for f in foreground if f.deadline is not None]
        met = sum(1 for f in deadline_flows if f.met_deadline)
        return cls(
            num_flows=len(foreground),
            num_completed=sum(1 for f in foreground if f.completed),
            fcts=fcts,
            num_deadline_flows=len(deadline_flows),
            num_deadlines_met=met,
        )

    # -- FCT ------------------------------------------------------------
    @property
    def afct(self) -> float:
        """Average FCT (seconds) over completed foreground flows."""
        if not self.fcts:
            return float("nan")
        return sum(self.fcts) / len(self.fcts)

    def fct_percentile(self, p: float) -> float:
        if not self.fcts:
            return float("nan")
        return percentile(self.fcts, p)

    @property
    def p99_fct(self) -> float:
        return self.fct_percentile(99)

    @property
    def median_fct(self) -> float:
        return self.fct_percentile(50)

    def fct_cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """``(fct_seconds, cumulative_fraction)`` pairs for CDF plots."""
        if not self.fcts:
            return []
        n = len(self.fcts)
        step = max(1, n // points)
        cdf = [(self.fcts[i], (i + 1) / n) for i in range(0, n, step)]
        if cdf[-1][1] != 1.0:
            cdf.append((self.fcts[-1], 1.0))
        return cdf

    # -- deadlines --------------------------------------------------------
    @property
    def application_throughput(self) -> float:
        """Fraction of deadline-carrying flows that met their deadline.
        Flows that never completed count as missed."""
        if self.num_deadline_flows == 0:
            return float("nan")
        return self.num_deadlines_met / self.num_deadline_flows

    # -- completeness ------------------------------------------------------
    @property
    def completion_fraction(self) -> float:
        if self.num_flows == 0:
            return float("nan")
        return self.num_completed / self.num_flows


def afct_improvement(baseline: FlowStats, candidate: FlowStats) -> float:
    """Percent AFCT improvement of ``candidate`` over ``baseline`` (the
    paper reports "X% improvement" as reduction relative to baseline)."""
    if not baseline.fcts or not candidate.fcts:
        return float("nan")
    return 100.0 * (baseline.afct - candidate.afct) / baseline.afct
