"""Shared helpers: unit constants/conversions and argument validation."""

from repro.utils.units import (
    BITS_PER_BYTE,
    GBPS,
    KB,
    MB,
    MBPS,
    USEC,
    MSEC,
    bytes_to_bits,
    transmission_delay,
    rate_to_pkts_per_sec,
)
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_probability,
)

__all__ = [
    "BITS_PER_BYTE",
    "GBPS",
    "KB",
    "MB",
    "MBPS",
    "USEC",
    "MSEC",
    "bytes_to_bits",
    "transmission_delay",
    "rate_to_pkts_per_sec",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
]
