"""Small argument-validation helpers.

These raise ``ValueError`` with consistent, greppable messages.  They exist
so configuration dataclasses across the package validate uniformly instead of
each re-implementing slightly different checks.
"""

from __future__ import annotations


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for fluent use."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for fluent use."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Require ``low <= value <= high``; return it for fluent use."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it for fluent use."""
    return check_in_range(name, value, 0.0, 1.0)
