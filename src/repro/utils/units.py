"""Unit constants and conversion helpers.

Conventions used throughout the simulator:

* time is measured in **seconds** (floats),
* link capacity is measured in **bits per second**,
* packet and flow sizes are measured in **bytes**.

The constants below let scenario code read like the paper: a 1 Gbps access
link is ``1 * GBPS``, a 198 KB flow is ``198 * KB``, a 300 microsecond RTT is
``300 * USEC``.
"""

from __future__ import annotations

BITS_PER_BYTE = 8

#: One kilobyte, in bytes.  The paper's flow-size intervals ([2 KB, 198 KB],
#: [100 KB, 500 KB]) use decimal kilobytes, as is conventional in the
#: data-center transport literature.
KB = 1000

#: One megabyte, in bytes.
MB = 1000 * KB

#: One megabit per second, in bits per second.
MBPS = 1_000_000

#: One gigabit per second, in bits per second.
GBPS = 1_000_000_000

#: One microsecond, in seconds.
USEC = 1e-6

#: One millisecond, in seconds.
MSEC = 1e-3


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a size in bytes to bits."""
    return num_bytes * BITS_PER_BYTE


def transmission_delay(size_bytes: float, capacity_bps: float) -> float:
    """Time (seconds) to serialize ``size_bytes`` onto a link of
    ``capacity_bps`` bits per second.

    >>> transmission_delay(1500, 1 * GBPS)
    1.2e-05
    """
    if capacity_bps <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_bps}")
    return bytes_to_bits(size_bytes) / capacity_bps


def rate_to_pkts_per_sec(rate_bps: float, pkt_size_bytes: float) -> float:
    """Convert a bit rate to an equivalent packet rate for a fixed MTU."""
    if pkt_size_bytes <= 0:
        raise ValueError(f"packet size must be positive, got {pkt_size_bytes}")
    return rate_bps / bytes_to_bits(pkt_size_bytes)
