"""PASE: the paper's primary contribution.

* :mod:`~repro.core.config` — every framework knob (:class:`PaseConfig`),
* :mod:`~repro.core.arbitration` — Algorithm 1 per-link arbitration,
* :mod:`~repro.core.control_plane` — the bottom-up hierarchy with early
  pruning and delegation,
* :mod:`~repro.core.endhost` — Algorithm 2 rate control, probe-based loss
  recovery, and the promotion reordering guard.

Quick sketch::

    sim = Simulator()
    topo = TreeTopology(sim, queue_factory=pase_queue_factory(cfg))
    cp = PaseControlPlane(sim, topo, cfg)
    PaseReceiver(sim, dst_host, flow)
    PaseSender(sim, src_host, flow, cp).start()
    sim.run()
"""

from repro.core.arbitration import (
    ArbitratedFlow,
    ArbitrationResult,
    LinkArbitrator,
    VirtualLinkArbitrator,
)
from repro.core.config import PaseConfig
from repro.core.control_plane import ChainHop, FlowChains, PaseControlPlane
from repro.core.endhost import PaseReceiver, PaseSender
from repro.sim.queues import PriorityQueueBank


def pase_queue_factory(config: PaseConfig = None):
    """Queue factory building each port's strict-priority bank from a
    :class:`PaseConfig` (used when constructing topologies for PASE runs)."""
    cfg = config or PaseConfig()

    def factory() -> PriorityQueueBank:
        # Default: per-class capacity, mirroring the paper's Linux
        # PRIO-over-RED stack (each band its own RED queue) — a burst into
        # a low class can never evict top-priority arrivals.  Set
        # ``shared_queue_capacity`` for shared-memory-switch semantics.
        return PriorityQueueBank(
            num_queues=cfg.num_queues,
            capacity_pkts=cfg.queue_capacity_pkts,
            mark_threshold_pkts=cfg.mark_threshold_pkts,
            per_queue_capacity=not cfg.shared_queue_capacity,
        )
    return factory


__all__ = [
    "ArbitratedFlow",
    "ArbitrationResult",
    "LinkArbitrator",
    "VirtualLinkArbitrator",
    "PaseConfig",
    "ChainHop",
    "FlowChains",
    "PaseControlPlane",
    "PaseReceiver",
    "PaseSender",
    "pase_queue_factory",
]
