"""PASE's arbitration control plane (§3.1).

One :class:`~repro.core.arbitration.LinkArbitrator` exists per link that a
flow can bottleneck on.  Arbitrators are *placed*: a host's access links are
arbitrated at the host itself; ToR–aggregation links at the ToR; aggregation–
core links at the aggregation switch — or, with **delegation**, at each child
ToR over a virtual slice of the core link's capacity.

Arbitration is bottom-up (Fig. 5).  A request walks the source half of the
path (host uplink → ToR → agg), then the destination half walks symmetrically
from the destination host upward.  The paper's two scalability optimizations
are implemented faithfully:

* **Early pruning** — a half stops climbing as soon as the flow fails to map
  within the top ``pruning_queues`` classes at the current level, since a
  flow's final queue is the lowest along its path and further consultation
  cannot improve it (§3.1.2).
* **Delegation** — aggregation–core capacity is split into per-ToR virtual
  links rebalanced periodically from child demand reports, so inter-rack
  flows never need to contact an arbitrator above the ToR.

Control-message accounting (for Fig. 11b): every consultation of a non-local
arbitrator costs a request + a response message; delegation's rebalance costs
two messages per child per period; intra-rack exchanges between the two
endpoints are piggybacked on data/ACK packets and cost nothing (§3.1.2:
"for intra-rack communication ... flows incur no additional network latency
for arbitration" — nor messages).  Control traffic rides a modeled control
channel (per-hop propagation + processing delay) rather than consuming
data-plane bandwidth; see DESIGN.md for why this substitution is sound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.arbitration import (
    ArbitrationResult,
    LinkArbitrator,
    VirtualLinkArbitrator,
)
from repro.core.config import PaseConfig
from repro.sim.engine import Event, Simulator
from repro.sim.link import Link
from repro.sim.topology import Topology, TreeTopology
from repro.transports.flow import Flow
from repro.utils.units import bytes_to_bits

#: Invoked as ``callback(half, result)`` — ``half`` is "src" or "dst" —
#: whenever one half-path's arbitration outcome reaches the source.  The
#: sender merges the most recent result of each half (a flow obeys the
#: lowest queue / smallest rate along its whole path), so a fresh source
#: half never transiently overrides a still-binding destination half.
ArbitrationCallback = Callable[[str, ArbitrationResult], None]

#: Arbitrator placement levels (for message/processing statistics).
LEVEL_HOST = 0
LEVEL_TOR = 1
LEVEL_AGG = 2


@dataclass(slots=True)
class ChainHop:
    """One arbitrator consultation on a flow's (half-)path."""

    arbitrator: LinkArbitrator
    #: One-way control latency from the half's initiating endpoint to this
    #: arbitrator (cumulative, includes processing).
    latency: float
    #: Control messages charged when this hop is consulted (request +
    #: response); 0 for endpoint-local and piggybacked consultations.
    message_cost: int
    level: int


@dataclass(slots=True)
class FlowChains:
    """Cached per-flow arbitration chains (the path is static)."""

    src_hops: List[ChainHop]
    dst_hops: List[ChainHop]
    #: One-way data-path latency (the destination half starts this late and
    #: its response rides back to the source over the same path).
    transfer_latency: float


class PaseControlPlane:
    """All arbitrators for one topology plus the request machinery."""

    def __init__(self, sim: Simulator, topology: Topology, config: Optional[PaseConfig] = None) -> None:
        self.sim = sim
        self.topology = topology
        self.config = config or PaseConfig()
        if isinstance(topology, TreeTopology) and topology.config.multipath:
            raise ValueError(
                "the PASE control plane requires deterministic single-path "
                "routing; build the tree with multipath=False")
        self.arbitrators: Dict[str, LinkArbitrator] = {}
        #: (parent link name, child ToR node id) -> virtual arbitrator.
        self.virtual: Dict[Tuple[str, int], VirtualLinkArbitrator] = {}
        self._delegation_groups: List[Tuple[Link, List[VirtualLinkArbitrator]]] = []
        self._chains: Dict[int, FlowChains] = {}
        # -- fault model (all inert until a FaultInjector arms them) ----
        #: True once fault injection is active: requests may fail, and
        #: senders arm their timeout/retry/fallback machinery.  Clean runs
        #: never set this, keeping them byte-identical to a fault-free build.
        self.fallible = False
        #: True while the whole control plane is crashed.
        self.cp_down = False
        #: Names of individually crashed arbitrators (link or virtual names).
        self._crashed: Set[str] = set()
        #: Loss probability / extra latency applied to each explicit control
        #: message while a ControlDegrade window is open.
        self.control_loss_rate = 0.0
        self.control_extra_delay = 0.0
        self.control_rng: Optional[random.Random] = None
        # -- statistics ------------------------------------------------
        self.messages_sent = 0
        self.messages_by_level = {LEVEL_HOST: 0, LEVEL_TOR: 0, LEVEL_AGG: 0}
        #: Arbitration decisions computed per placement level — the
        #: processing-load metric of §3.1.2 (early pruning exists to keep
        #: the higher levels' numbers down).
        self.processed_by_level = {LEVEL_HOST: 0, LEVEL_TOR: 0, LEVEL_AGG: 0}
        self.requests_started = 0
        self.prunes = 0
        #: Requests refused outright because the local arbitrator was down.
        self.requests_failed = 0
        #: Half-path walks that died at a crashed arbitrator (no response).
        self.consults_aborted = 0
        #: Control messages eaten by a degraded control channel.
        self.control_messages_lost = 0
        self.arbitrator_crashes = 0
        #: Soft-state entries dropped by the periodic expiry sweep.
        self.entries_expired = 0
        #: Optional ``callback(arbitrator_name, [flow_id, ...])`` fired when
        #: the sweep evicts stale entries, so sources can be notified.
        self.on_expired: Optional[Callable[[str, List[int]], None]] = None

        self._build_arbitrators()
        if self.config.delegation_enabled and self._delegation_groups:
            self.sim.schedule(self.config.delegation_update_interval, self._rebalance_delegation)
        self._expire_event: Optional["Event"] = self.sim.schedule(
            self.config.entry_timeout, self._expire_sweep)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _base_rate_for(self, link: Link) -> float:
        """Algorithm 1's "baserate": one MTU per RTT, in bits/s."""
        rtt = getattr(self.topology, "rtt", None)
        if rtt is None:
            rtt = self.topology.config.core_rtt  # TreeTopology
        return self.config.base_rate_pkts_per_rtt * bytes_to_bits(1500) / rtt

    def _make_arbitrator(self, link: Link) -> LinkArbitrator:
        arb = LinkArbitrator(
            link.name,
            link.capacity_bps,
            self.config.num_data_queues,
            self._base_rate_for(link),
        )
        self.arbitrators[link.name] = arb
        return arb

    def _build_arbitrators(self) -> None:
        for link in self.topology.network.links.values():
            self._make_arbitrator(link)
        if not isinstance(self.topology, TreeTopology) or not self.config.delegation_enabled:
            return
        topo: TreeTopology = self.topology
        net = topo.network
        # Delegate each agg<->core direction to the ToRs under that agg.
        for agg in topo.aggs:
            children = [tor for tor in topo.tors if topo.agg_of(tor) is agg]
            if not children:
                continue
            for parent_link in (net.link_between(agg, topo.core),
                                net.link_between(topo.core, agg)):
                group: List[VirtualLinkArbitrator] = []
                share = 1.0 / len(children)
                for tor in children:
                    varb = VirtualLinkArbitrator(
                        f"{parent_link.name}@{tor.name}",
                        parent_link.capacity_bps,
                        self.config.num_data_queues,
                        self._base_rate_for(parent_link),
                        initial_share=share,
                    )
                    self.virtual[(parent_link.name, tor.node_id)] = varb
                    group.append(varb)
                self._delegation_groups.append((parent_link, group))

    # ------------------------------------------------------------------
    # Chain construction
    # ------------------------------------------------------------------
    def chains_for(self, flow: Flow) -> FlowChains:
        chains = self._chains.get(flow.flow_id)
        if chains is None:
            chains = self._build_chains(flow)
            self._chains[flow.flow_id] = chains
        return chains

    def _build_chains(self, flow: Flow) -> FlowChains:
        cfg = self.config
        topo = self.topology
        net = topo.network
        src_host = net.nodes[flow.src]
        dst_host = net.nodes[flow.dst]
        transfer = topo.base_rtt(flow.src, flow.dst) / 2.0

        up = topo.host_uplink(src_host)
        down = topo.host_downlink(dst_host)
        src_hops = [ChainHop(self.arbitrators[up.name], 0.0, 0, LEVEL_HOST)]
        dst_hops = [ChainHop(self.arbitrators[down.name], 0.0, 0, LEVEL_HOST)]

        if (cfg.end_to_end_arbitration and isinstance(topo, TreeTopology)
                and not topo.same_rack(flow.src, flow.dst)):
            self._extend_tree_hops(flow, topo, src_hops, dst_hops)
        return FlowChains(src_hops, dst_hops, transfer)

    def _extend_tree_hops(
        self,
        flow: Flow,
        topo: TreeTopology,
        src_hops: List[ChainHop],
        dst_hops: List[ChainHop],
    ) -> None:
        cfg = self.config
        net = topo.network
        proc = cfg.processing_delay
        d_host = topo.host_uplink(net.nodes[flow.src]).prop_delay
        d_fabric = topo.config.per_link_delay

        src_tor = topo.tor_of(net.nodes[flow.src])
        dst_tor = topo.tor_of(net.nodes[flow.dst])
        src_agg = topo.agg_of(src_tor)
        dst_agg = topo.agg_of(dst_tor)

        # ToR level: the rack's up/down fabric links.
        tor_up = net.link_between(src_tor, src_agg)
        agg_down = net.link_between(dst_agg, dst_tor)
        src_hops.append(ChainHop(self.arbitrators[tor_up.name],
                                 d_host + proc, 2, LEVEL_TOR))
        dst_hops.append(ChainHop(self.arbitrators[agg_down.name],
                                 d_host + proc, 2, LEVEL_TOR))

        if src_agg is dst_agg:
            return  # path turns around at the aggregation switch
        agg_up = net.link_between(src_agg, topo.core)
        core_down = net.link_between(topo.core, dst_agg)
        if cfg.delegation_enabled:
            # Same control message as the ToR hop: zero marginal cost.
            src_hops.append(ChainHop(self.virtual[(agg_up.name, src_tor.node_id)],
                                     d_host + proc, 0, LEVEL_TOR))
            dst_hops.append(ChainHop(self.virtual[(core_down.name, dst_tor.node_id)],
                                     d_host + proc, 0, LEVEL_TOR))
        else:
            src_hops.append(ChainHop(self.arbitrators[agg_up.name],
                                     d_host + d_fabric + 2 * proc, 2, LEVEL_AGG))
            dst_hops.append(ChainHop(self.arbitrators[core_down.name],
                                     d_host + d_fabric + 2 * proc, 2, LEVEL_AGG))

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def request(
        self,
        flow: Flow,
        criterion_value: float,
        demand: float,
        callback: ArbitrationCallback,
    ) -> Optional[ArbitrationResult]:
        """Run one bottom-up arbitration round for ``flow``.

        The source half's *local* decision is computed synchronously and
        returned, so a new flow can start sending immediately (§3.1.2).
        Higher-level consultations and the whole destination half proceed
        asynchronously; ``callback`` fires with the merged result as each
        half completes.

        Under fault injection the request is fallible: when the control
        plane (or the source host's own arbitrator) is crashed, ``None``
        comes back immediately and no callback will ever fire — the sender's
        retry/fallback machinery takes over.  A crashed arbitrator higher
        up the chain silently swallows that half's walk (the response simply
        never arrives), which the sender detects by timeout.
        """
        self.requests_started += 1
        chains = self.chains_for(flow)
        if self.cp_down or self._is_crashed(chains.src_hops[0]):
            self.requests_failed += 1
            return None
        state = _RequestState(criterion_value, demand, callback)

        local = chains.src_hops[0].arbitrator.arbitrate(
            flow.flow_id, criterion_value, demand, self.sim.now)
        self.processed_by_level[LEVEL_HOST] += 1
        if self._expire_event is None:
            # The expiry sweep parked itself when every table emptied;
            # fresh soft state re-arms it.
            self._expire_event = self.sim.schedule(
                self.config.entry_timeout, self._expire_sweep)
        self._walk(flow, chains.src_hops, 1, local, state, "src",
                   return_extra=0.0)
        dst_start = chains.transfer_latency
        self.sim.schedule(dst_start, self._walk, flow, chains.dst_hops, 0,
                          None, state, "dst", chains.transfer_latency)
        return local

    def _walk(
        self,
        flow: Flow,
        hops: List[ChainHop],
        index: int,
        acc: Optional[ArbitrationResult],
        state: "_RequestState",
        half: str,
        return_extra: float,
    ) -> None:
        """Consult ``hops[index:]`` bottom-up, then deliver the half result."""
        cfg = self.config
        prev_latency = hops[index - 1].latency if index > 0 else 0.0
        while index < len(hops):
            hop = hops[index]
            if self._is_crashed(hop):
                # The request reached a dead arbitrator: the chain is
                # severed and this half never answers (sender times out).
                self.consults_aborted += 1
                return
            pruned = (cfg.pruning_enabled and acc is not None
                      and acc.queue >= cfg.pruning_queues)
            if pruned:
                self.prunes += 1
                break
            step = hop.latency - prev_latency
            if step > 1e-12:
                # Climb to the next arbitrator; resume there after the hop.
                if hop.message_cost and self._lose_control_message():
                    return  # request message eaten by the control channel
                if self.control_extra_delay > 0.0:
                    step += self.control_extra_delay
                self.sim.schedule(step, self._consult_and_continue, flow,
                                  hops, index, acc, state, half, return_extra)
                return
            acc = self._consult(flow, hop, acc, state)
            prev_latency = hop.latency
            index += 1
        self._deliver(hops, index, acc, state, half, return_extra)

    def _consult_and_continue(self, flow, hops, index, acc, state, half, return_extra):
        if self._is_crashed(hops[index]):
            self.consults_aborted += 1
            return
        acc = self._consult(flow, hops[index], acc, state)
        self._walk(flow, hops, index + 1, acc, state, half, return_extra)

    def _consult(self, flow, hop: ChainHop, acc, state: "_RequestState"):
        self.messages_sent += hop.message_cost
        self.messages_by_level[hop.level] += hop.message_cost
        self.processed_by_level[hop.level] += 1
        result = hop.arbitrator.arbitrate(
            flow.flow_id, state.criterion_value, state.demand, self.sim.now)
        return result if acc is None else acc.merge(result)

    def _deliver(self, hops, consulted_until, acc, state, half, return_extra):
        """Send the half's result back to the source and fire the callback."""
        if acc is None:
            return
        used_messages = any(h.message_cost for h in hops[:consulted_until])
        if used_messages and self._lose_control_message():
            return  # response message eaten by the control channel
        deepest = hops[min(consulted_until, len(hops)) - 1].latency if consulted_until > 0 else 0.0
        delay = deepest + return_extra
        if used_messages and self.control_extra_delay > 0.0:
            delay += self.control_extra_delay
        if delay > 1e-12:
            self.sim.schedule(delay, state.fire, half, acc)
        else:
            state.fire(half, acc)

    # ------------------------------------------------------------------
    # Fault hooks (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def _is_crashed(self, hop: ChainHop) -> bool:
        if not self.fallible:
            return False
        return self.cp_down or hop.arbitrator.name in self._crashed

    def _lose_control_message(self) -> bool:
        """Roll the control channel's loss dice for one explicit message."""
        if self.control_rng is None or self.control_loss_rate <= 0.0:
            return False
        if self.control_rng.random() < self.control_loss_rate:
            self.control_messages_lost += 1
            return True
        return False

    def crash(self, names: Optional[Sequence[str]] = None) -> None:
        """Crash arbitrators, wiping their soft state.

        ``names=None`` takes the whole control plane down: every flow table
        (real and virtual) is lost and :meth:`request` refuses service until
        :meth:`recover`.  Otherwise only the named arbitrators (link names,
        or ``link@tor`` virtual names) crash; walks that reach them die
        silently and the senders' timeouts kick in.
        """
        self.fallible = True
        self.arbitrator_crashes += 1
        if names is None:
            self.cp_down = True
            for arb in self.arbitrators.values():
                arb.clear()
            for varb in self.virtual.values():
                varb.clear()
            return
        for name in names:
            arb = self.arbitrators.get(name)
            if arb is None:
                arb = next((v for v in self.virtual.values() if v.name == name), None)
            if arb is None:
                raise KeyError(f"no arbitrator named {name!r}")
            self._crashed.add(name)
            arb.clear()

    def recover(self, names: Optional[Sequence[str]] = None) -> None:
        """Bring arbitrators back.  They restart *empty* — the paper's soft
        state is rebuilt organically by the senders' periodic requests."""
        if names is None:
            self.cp_down = False
            self._crashed.clear()
            return
        for name in names:
            self._crashed.discard(name)

    # ------------------------------------------------------------------
    # Completion / maintenance
    # ------------------------------------------------------------------
    def notify_complete(self, flow: Flow) -> None:
        """Explicitly clear the flow from every arbitrator that knows it."""
        chains = self._chains.pop(flow.flow_id, None)
        if chains is None:
            return
        for hop in chains.src_hops + chains.dst_hops:
            if flow.flow_id in hop.arbitrator.flows:
                hop.arbitrator.remove(flow.flow_id)
                if hop.message_cost:
                    self.messages_sent += 1
                    self.messages_by_level[hop.level] += 1

    def _expire_sweep(self) -> None:
        timeout = self.config.entry_timeout
        now = self.sim.now
        occupied = False
        for tables in (self.arbitrators, self.virtual):
            for arb in tables.values():
                self._consume_expired(arb, arb.expire(now, timeout))
                if arb.flows:
                    occupied = True
                    # Epoch-batch: recompute the surviving table once, so
                    # every decision until the next mutation is memoized.
                    arb.decide_all()
        if occupied:
            self._expire_event = self.sim.schedule(timeout, self._expire_sweep)
        else:
            # Every table is empty: park the sweep so an idle simulation can
            # drain.  request() re-arms it when fresh soft state appears.
            self._expire_event = None

    def _consume_expired(self, arb: LinkArbitrator, stale: List[int]) -> None:
        """Account for entries :meth:`LinkArbitrator.expire` dropped and let
        interested sources know their soft state is gone (a source that is
        still alive will simply re-register on its next periodic request)."""
        if not stale:
            return
        self.entries_expired += len(stale)
        if self.on_expired is not None:
            self.on_expired(arb.name, stale)

    def _rebalance_delegation(self) -> None:
        """Periodic virtual-link capacity refresh from child demand reports."""
        cfg = self.config
        if self.cp_down:
            # A crashed control plane neither reports demand nor reassigns
            # shares; the last shares stay frozen until recovery.
            self.sim.schedule(cfg.delegation_update_interval, self._rebalance_delegation)
            return
        for parent_link, group in self._delegation_groups:
            demands = [max(v.aggregate_demand(top_queues=1), 0.0) for v in group]
            total = sum(demands)
            floor = cfg.delegation_min_share
            if total <= 0:
                shares = [1.0 / len(group)] * len(group)
            else:
                raw = [d / total for d in demands]
                shares = [floor + (1 - floor * len(group)) * r for r in raw]
            for varb, share in zip(group, shares):
                varb.set_share(max(share, 1e-6))
                # Epoch-batch: rebuild the slice's whole (PrioQue, Rref)
                # table in one sorted pass, so every consult until the next
                # table mutation is a memoized dict hit instead of a
                # per-flow recompute.
                varb.decide_all()
            # One report up + one share notification down per child.
            self.messages_sent += 2 * len(group)
            self.messages_by_level[LEVEL_AGG] += 2 * len(group)
        self.sim.schedule(cfg.delegation_update_interval, self._rebalance_delegation)


class _RequestState:
    """Carries one round's inputs and routes per-half results back."""

    __slots__ = ("criterion_value", "demand", "callback")

    def __init__(self, criterion_value: float, demand: float, callback: ArbitrationCallback):
        self.criterion_value = criterion_value
        self.demand = demand
        self.callback = callback

    def fire(self, half: str, result: ArbitrationResult) -> None:
        self.callback(half, result)
