"""PASE configuration.

Defaults follow Table 3 of the paper (8 priority queues, 10 ms RTO for
top-queue flows, 200 ms for the rest, 500-packet switch buffers) plus the
control-plane settings described in §3.1 (bottom-up arbitration with early
pruning propagating the top two queues, and delegation of aggregation–core
capacity to ToR arbitrators).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.units import MSEC, USEC
from repro.utils.validation import check_positive


@dataclass
class PaseConfig:
    """All knobs for the PASE framework (control plane + end-host)."""

    # -- in-network prioritization ------------------------------------
    #: Priority queues per switch port (Table 2: commodity gear has 3-10).
    num_queues: int = 8
    #: The lowest queue is reserved for background traffic (§3.3), so data
    #: flows are arbitrated across ``num_queues - 1`` classes.
    reserve_background_queue: bool = True
    #: Per-port buffer (Table 3: qSize = 500 pkts).
    queue_capacity_pkts: int = 500
    #: When True, ``queue_capacity_pkts`` caps the whole port (one shared
    #: buffer carved into classes, as in shared-memory switch ASICs); when
    #: False (default) each priority class has its own capacity, as in the
    #: paper's Linux PRIO-over-RED testbed stack.  The distinction matters:
    #: with a shared buffer, end-to-end arbitration is also what protects
    #: high-priority arrivals from buffer overruns (see Fig. 12a bench).
    shared_queue_capacity: bool = False
    #: DCTCP marking threshold K within each priority class.
    mark_threshold_pkts: int = 65

    # -- end-host transport (Algorithm 2 / Table 3) --------------------
    min_rto_top: float = 10 * MSEC
    min_rto_low: float = 200 * MSEC
    #: DCTCP gain for the alpha estimator.
    g: float = 0.0625
    #: Use header-only probes (not data retransmissions) to disambiguate
    #: loss from low-priority queueing delay (§3.2).
    probing_enabled: bool = True

    # -- arbitration (Algorithm 1) --------------------------------------
    #: Scheduling criterion (§3.1.1 — "the FlowSize can be replaced by
    #: deadline or task-id"):
    #:   "size"     — shortest remaining flow first (FCT minimization),
    #:   "deadline" — earliest deadline first (deadline workloads),
    #:   "las"      — least attained service first: size-*unaware* SRPT
    #:                approximation for workloads where flow sizes are not
    #:                known up front,
    #:   "task"     — task-aware FIFO-LM (Baraat-style): tasks in arrival
    #:                order, shortest-remaining within a task.
    criterion: str = "size"
    #: Deadline mode only: terminate flows whose deadline is provably
    #: unreachable at NIC line rate, freeing their capacity for flows that
    #: can still make it (PDQ's Early Termination, applied to PASE).
    early_termination: bool = False
    #: Reference rate assigned to flows that cannot make the top queue:
    #: one MTU per RTT ("baserate" in Algorithm 1), expressed as packets.
    base_rate_pkts_per_rtt: float = 1.0
    #: How often a source refreshes its arbitration (s).  One network RTT by
    #: default so promotions lag at most an RTT behind flow completions.
    arbitration_interval: float = 300 * USEC
    #: Arbitrator entries not refreshed in this many intervals are dropped
    #: (safety net; normal removal is the explicit completion message).
    entry_timeout_intervals: float = 4.0
    #: Per-arbitrator processing delay for a control message (s).
    processing_delay: float = 10 * USEC

    # -- fault tolerance (§3.1's soft-state argument, exercised by
    # -- repro.faults; all of these are inert in clean runs) -------------
    #: Consecutive unanswered/refused arbitration requests tolerated before
    #: the sender falls back to pure DCTCP behavior.
    arbitration_max_retries: int = 3
    #: Cap on the exponential backoff multiplier applied to the re-request
    #: interval while requests keep failing (also the fallback re-probe
    #: cadence, so recovery is detected within cap x interval).
    arbitration_backoff_cap: float = 8.0
    #: Priority class used while in DCTCP fallback; None means the lowest
    #: data class (conservative: degraded flows cannot starve arbitrated
    #: top-queue traffic).
    fallback_queue: Optional[int] = None

    # -- control-plane optimizations (§3.1.2) ----------------------------
    #: Early pruning: only flows mapped within the top ``pruning_queues``
    #: classes at a lower-level arbitrator propagate upward.  The paper
    #: finds two queues the right balance.  Set to 0 to disable pruning.
    pruning_queues: int = 2
    #: Delegate aggregation-core capacity to ToR arbitrators as virtual
    #: links (§3.1.2 "Delegation").
    delegation_enabled: bool = True
    #: Period between virtual-link capacity rebalances (s).
    delegation_update_interval: float = 1 * MSEC
    #: Minimum fraction of the delegated link any child retains, so a burst
    #: at a quiet child is never completely locked out while waiting for
    #: the next rebalance.
    delegation_min_share: float = 0.05

    # -- end-to-end vs local arbitration (Fig. 12a ablation) -------------
    #: When False, only the source/destination access links are arbitrated
    #: ("local arbitration"); fabric links are ignored.
    end_to_end_arbitration: bool = True

    def __post_init__(self) -> None:
        check_positive("num_queues", self.num_queues)
        check_positive("queue_capacity_pkts", self.queue_capacity_pkts)
        check_positive("mark_threshold_pkts", self.mark_threshold_pkts)
        check_positive("min_rto_top", self.min_rto_top)
        check_positive("min_rto_low", self.min_rto_low)
        check_positive("arbitration_interval", self.arbitration_interval)
        check_positive("delegation_update_interval", self.delegation_update_interval)
        valid_criteria = ("size", "deadline", "las", "task")
        if self.criterion not in valid_criteria:
            raise ValueError(
                f"criterion must be one of {valid_criteria}, got {self.criterion!r}")
        if self.pruning_queues < 0:
            raise ValueError("pruning_queues must be >= 0 (0 disables pruning)")
        if not 0 <= self.delegation_min_share < 1:
            raise ValueError("delegation_min_share must be in [0, 1)")
        if self.reserve_background_queue and self.num_queues < 2:
            raise ValueError("need >= 2 queues when one is reserved for background")
        if self.arbitration_max_retries < 0:
            raise ValueError("arbitration_max_retries must be >= 0")
        if self.arbitration_backoff_cap < 1:
            raise ValueError("arbitration_backoff_cap must be >= 1")
        if self.fallback_queue is not None and not (
                0 <= self.fallback_queue < self.num_data_queues):
            raise ValueError(
                f"fallback_queue must be in [0, {self.num_data_queues}), "
                f"got {self.fallback_queue}")

    @property
    def num_data_queues(self) -> int:
        """Priority classes available to arbitrated (non-background) flows."""
        if self.reserve_background_queue:
            return self.num_queues - 1
        return self.num_queues

    @property
    def background_queue(self) -> int:
        """Queue index used by long-lived background flows."""
        return self.num_queues - 1

    @property
    def entry_timeout(self) -> float:
        return self.entry_timeout_intervals * self.arbitration_interval

    @property
    def pruning_enabled(self) -> bool:
        return self.pruning_queues > 0
