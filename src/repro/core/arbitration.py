"""Algorithm 1: per-link arbitration.

Each network link has one :class:`LinkArbitrator`.  It maintains the set of
flows currently crossing the link sorted by the scheduling criterion
(remaining size for shortest-flow-first, absolute deadline for EDF) and, for
a given flow, computes:

* ``PrioQue`` — the priority class, from the aggregate demand of flows with
  higher priority (ADH): a flow sits in queue ``floor(ADH / C)`` (0-based;
  queue 0 is the top), clamped to the lowest data queue.  Each intermediate
  queue therefore holds one link's worth (C) of aggregate demand, and the
  bottom queue holds everything else — exactly the paper's Algorithm 1.
* ``Rref`` — the reference rate: spare top-queue capacity ``C - ADH``
  (capped by the flow's demand) when the flow makes the top queue, otherwise
  the base rate (one packet per RTT) so low-priority flows can still probe.

Fast-path design
----------------
The table is kept **sorted** by ``(criterion_value, flow_id)`` in three
parallel lists (keys, demands, cached prefix demand), maintained by
``bisect`` on insert/update/remove.  ADH for the flow at sorted position
``i`` is then just ``prefix[i]``, so one :meth:`_decide` is an O(log F)
lookup instead of the historical O(F) scan — and a full ``arbitrate()``
(update + decide) costs one memmove plus at most a C-speed
``itertools.accumulate`` over the invalidated prefix suffix.

Prefix invalidation is *positional*: a mutation at sorted position ``p``
only discards ``prefix[p+1:]`` (the watermark ``_valid``), so interleaved
update/decide traffic — the control plane's actual access pattern — re-sums
only the slice between the lowest dirty position and the queried index.
The summation order is always left-to-right over the sorted order, so
repeated partial extensions are bit-identical to one full rebuild.

:meth:`decide_all` is the epoch-batch API: one sorted pass yields every
registered flow's ``(PrioQue, Rref)`` and memoizes the table until the next
mutation (or capacity change), so unchanged epochs are served from cache.
:meth:`aggregate_demand` reads the same cached prefix sums.

:class:`VirtualLinkArbitrator` is the same machine over a mutable capacity —
the delegated slice of a parent (aggregation–core) link (§3.1.2).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from itertools import accumulate, islice
from typing import Dict, List, Optional, Tuple

from repro.utils.validation import check_non_negative, check_positive

_INF = float("inf")


@dataclass(slots=True)
class ArbitratedFlow:
    """A flow's entry in one link arbitrator's table."""

    flow_id: int
    #: Scheduling key: remaining bytes (SJF) or absolute deadline (EDF).
    criterion_value: float
    #: Maximum rate (bits/s) the source can currently use.
    demand: float
    last_update: float

    def sort_key(self) -> Tuple[float, int]:
        # flow_id tie-break keeps the ordering total and deterministic.
        return (self.criterion_value, self.flow_id)


@dataclass(slots=True)
class ArbitrationResult:
    """The (PrioQue, Rref) pair returned to a source."""

    queue: int
    reference_rate: float

    def merge(self, other: "ArbitrationResult") -> "ArbitrationResult":
        """Combine decisions from two links on a path: a flow obeys the most
        restrictive — the lowest of the priority queues and the smallest of
        the reference rates (§3.1.2: "a flow always uses the lowest of the
        priority queues assigned by all the arbitrators")."""
        return ArbitrationResult(
            queue=max(self.queue, other.queue),
            reference_rate=min(self.reference_rate, other.reference_rate),
        )


class LinkArbitrator:
    """Algorithm 1 over one link.

    ``num_queues`` is the number of *data* queues (the background class is
    outside arbitration).  ``base_rate`` is the Rref handed to flows that do
    not make the top queue.
    """

    __slots__ = (
        "name",
        "capacity_bps",
        "num_queues",
        "base_rate_bps",
        "flows",
        "requests_served",
        "_keys",
        "_demands",
        "_prefix",
        "_valid",
        "_decisions",
        "_min_update",
    )

    def __init__(
        self,
        name: str,
        capacity_bps: float,
        num_queues: int,
        base_rate_bps: float,
    ) -> None:
        self.name = name
        self.capacity_bps = check_positive("capacity_bps", capacity_bps)
        self.num_queues = int(check_positive("num_queues", num_queues))
        self.base_rate_bps = check_positive("base_rate_bps", base_rate_bps)
        self.flows: Dict[int, ArbitratedFlow] = {}
        #: Number of arbitrate() calls served (processing-load metric).
        self.requests_served = 0
        # -- sorted-table fast path ------------------------------------
        #: Sort keys ``(criterion_value, flow_id)``, ascending.
        self._keys: List[Tuple[float, int]] = []
        #: Demands in the same sorted order (C-speed accumulate fodder).
        self._demands: List[float] = []
        #: ``_prefix[i]`` = demand of the first ``i`` sorted flows (ADH of
        #: position ``i``); only ``_prefix[: _valid + 1]`` is trustworthy.
        self._prefix: List[float] = [0.0]
        self._valid = 0
        #: Memoized epoch decision table from :meth:`decide_all`; ``None``
        #: whenever the table (or the capacity) changed since it was built.
        self._decisions: Optional[Dict[int, ArbitrationResult]] = None
        #: Lower bound on ``min(entry.last_update)`` — lets :meth:`expire`
        #: skip the scan outright while every entry is provably fresh.
        self._min_update = _INF

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> float:
        """Capacity used for queue/rate computation; virtual links override."""
        return self.capacity_bps

    # ------------------------------------------------------------------
    # Sorted-table maintenance
    # ------------------------------------------------------------------
    def _insert_entry(self, key: Tuple[float, int], demand: float) -> None:
        i = bisect_left(self._keys, key)
        self._keys.insert(i, key)
        self._demands.insert(i, demand)
        if i < self._valid:
            del self._prefix[i + 1:]
            self._valid = i
        self._decisions = None

    def _remove_entry(self, key: Tuple[float, int]) -> None:
        i = bisect_left(self._keys, key)
        del self._keys[i]
        del self._demands[i]
        if i < self._valid:
            del self._prefix[i + 1:]
            self._valid = i
        elif self._valid > len(self._keys):
            del self._prefix[len(self._keys) + 1:]
            self._valid = len(self._keys)
        self._decisions = None

    def _adh_before(self, index: int) -> float:
        """Aggregate demand of the first ``index`` sorted flows, extending
        the cached prefix (left-to-right, so partial extensions are
        bit-identical to a full rebuild) when the watermark is short."""
        if index > self._valid:
            prefix = self._prefix
            it = accumulate(islice(self._demands, self._valid, index),
                            initial=prefix[-1])
            next(it)  # the initial element is already the last cached value
            prefix.extend(it)
            self._valid = index
        return self._prefix[index]

    # ------------------------------------------------------------------
    def arbitrate(
        self,
        flow_id: int,
        criterion_value: float,
        demand: float,
        now: float,
    ) -> ArbitrationResult:
        """Register/update a flow and compute its (PrioQue, Rref)."""
        check_non_negative("criterion_value", criterion_value)
        check_non_negative("demand", demand)
        self.requests_served += 1
        entry = self.flows.get(flow_id)
        if entry is None:
            self.flows[flow_id] = ArbitratedFlow(
                flow_id, criterion_value, demand, now)
            self._insert_entry((criterion_value, flow_id), demand)
            if now < self._min_update:
                self._min_update = now
        else:
            if (entry.criterion_value != criterion_value
                    or entry.demand != demand):
                self._remove_entry((entry.criterion_value, flow_id))
                entry.criterion_value = criterion_value
                entry.demand = demand
                self._insert_entry((criterion_value, flow_id), demand)
            entry.last_update = now
        return self._decide(flow_id)

    def _decide(self, flow_id: int) -> ArbitrationResult:
        """Step 2 of Algorithm 1: ADH -> (PrioQue, Rref).

        Served from the memoized epoch table when one is live, otherwise an
        O(log F) bisect into the sorted table plus a cached-prefix read.
        """
        decisions = self._decisions
        if decisions is not None:
            cached = decisions.get(flow_id)
            if cached is not None:
                return cached
        me = self.flows[flow_id]
        idx = bisect_left(self._keys, (me.criterion_value, flow_id))
        adh = self._adh_before(idx)
        capacity = self.capacity
        if adh < capacity:
            rate = min(me.demand, capacity - adh)
            queue = 0
        else:
            rate = self.base_rate_bps
            queue = min(int(adh // capacity), self.num_queues - 1)
        return ArbitrationResult(queue=queue, reference_rate=rate)

    def decide_all(self) -> Dict[int, ArbitrationResult]:
        """Epoch-batch API: every registered flow's (PrioQue, Rref) in one
        sorted pass over the cached prefix sums.

        The result is memoized and returned as-is until the table mutates
        (insert/update/remove/expire) or the capacity changes, so callers
        that poll an unchanged epoch pay a dict lookup, not a recompute.
        The returned mapping is shared — treat it as read-only.
        """
        decisions = self._decisions
        if decisions is not None:
            return decisions
        n = len(self._keys)
        self._adh_before(n)
        prefix = self._prefix
        demands = self._demands
        capacity = self.capacity
        lowest = self.num_queues - 1
        base = self.base_rate_bps
        decisions = {}
        for i, (_, fid) in enumerate(self._keys):
            adh = prefix[i]
            if adh < capacity:
                decisions[fid] = ArbitrationResult(
                    0, min(demands[i], capacity - adh))
            else:
                decisions[fid] = ArbitrationResult(
                    min(int(adh // capacity), lowest), base)
        self._decisions = decisions
        return decisions

    # ------------------------------------------------------------------
    def remove(self, flow_id: int) -> None:
        """Explicit removal when the source reports completion."""
        entry = self.flows.pop(flow_id, None)
        if entry is not None:
            self._remove_entry((entry.criterion_value, flow_id))
            if not self.flows:
                self._min_update = _INF

    def clear(self) -> None:
        """Drop every entry (an arbitrator crash wipes its soft state)."""
        self.flows.clear()
        self._keys.clear()
        self._demands.clear()
        self._prefix = [0.0]
        self._valid = 0
        self._decisions = None
        self._min_update = _INF

    def expire(self, now: float, timeout: float) -> List[int]:
        """Drop entries not refreshed within ``timeout``; returns the
        removed flow ids so the control plane can notify their sources.

        The safety net for sources that died without a completion message.
        When every entry is provably fresh (the cached minimum last-update
        is within ``timeout``) the scan is skipped entirely.
        """
        if not self.flows or now - self._min_update <= timeout:
            return []
        stale: List[int] = []
        oldest = _INF
        for fid, entry in self.flows.items():
            if now - entry.last_update > timeout:
                stale.append(fid)
            elif entry.last_update < oldest:
                oldest = entry.last_update
        for fid in stale:
            entry = self.flows.pop(fid)
            self._remove_entry((entry.criterion_value, fid))
        self._min_update = oldest
        return stale

    @property
    def active_flows(self) -> int:
        return len(self.flows)

    def aggregate_demand(self, top_queues: Optional[int] = None) -> float:
        """Total demand registered at this link; with ``top_queues`` given,
        only flows currently mapping within those classes count.  Used by
        delegation's child demand reports.  Both forms read the cached
        prefix sums; ties on the criterion resolve by flow id (the table's
        total order), so the answer is deterministic."""
        n = len(self._keys)
        total = self._adh_before(n)
        if top_queues is None:
            return total
        limit = top_queues * self.capacity
        # First sorted position whose ADH reaches the class boundary: all
        # demand before it maps within the top classes (plus the crossing
        # flow itself, matching the historical cumulative scan).
        i = bisect_left(self._prefix, limit)
        if i > n:
            i = n
        return self._prefix[i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinkArbitrator({self.name}, {self.active_flows} flows)"


class VirtualLinkArbitrator(LinkArbitrator):
    """A delegated slice of a parent link (§3.1.2 "Delegation").

    The owning child arbitrator runs ordinary Algorithm 1 over the slice;
    :meth:`set_share` is called by the delegation manager on each rebalance.
    ``full_capacity_bps`` is the physical parent link's capacity.
    """

    __slots__ = ("full_capacity_bps", "_share")

    def __init__(
        self,
        name: str,
        full_capacity_bps: float,
        num_queues: int,
        base_rate_bps: float,
        initial_share: float,
    ) -> None:
        super().__init__(name, full_capacity_bps, num_queues, base_rate_bps)
        self.full_capacity_bps = full_capacity_bps
        self._share = initial_share

    @property
    def share(self) -> float:
        return self._share

    def set_share(self, share: float) -> None:
        if not 0 < share <= 1:
            raise ValueError(f"share must be in (0, 1], got {share!r}")
        if share != self._share:
            self._share = share
            # The slice capacity moved: every memoized epoch decision is
            # stale (queue boundaries and spare top-queue rate shifted),
            # but the prefix sums — pure demand — remain valid.
            self._decisions = None

    @property
    def capacity(self) -> float:
        return self.full_capacity_bps * self._share
