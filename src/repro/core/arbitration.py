"""Algorithm 1: per-link arbitration.

Each network link has one :class:`LinkArbitrator`.  It maintains the set of
flows currently crossing the link sorted by the scheduling criterion
(remaining size for shortest-flow-first, absolute deadline for EDF) and, for
a given flow, computes:

* ``PrioQue`` — the priority class, from the aggregate demand of flows with
  higher priority (ADH): a flow sits in queue ``floor(ADH / C)`` (0-based;
  queue 0 is the top), clamped to the lowest data queue.  Each intermediate
  queue therefore holds one link's worth (C) of aggregate demand, and the
  bottom queue holds everything else — exactly the paper's Algorithm 1.
* ``Rref`` — the reference rate: spare top-queue capacity ``C - ADH``
  (capped by the flow's demand) when the flow makes the top queue, otherwise
  the base rate (one packet per RTT) so low-priority flows can still probe.

:class:`VirtualLinkArbitrator` is the same machine over a mutable capacity —
the delegated slice of a parent (aggregation–core) link (§3.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.utils.validation import check_non_negative, check_positive


@dataclass
class ArbitratedFlow:
    """A flow's entry in one link arbitrator's table."""

    flow_id: int
    #: Scheduling key: remaining bytes (SJF) or absolute deadline (EDF).
    criterion_value: float
    #: Maximum rate (bits/s) the source can currently use.
    demand: float
    last_update: float

    def sort_key(self) -> Tuple[float, int]:
        # flow_id tie-break keeps the ordering total and deterministic.
        return (self.criterion_value, self.flow_id)


@dataclass
class ArbitrationResult:
    """The (PrioQue, Rref) pair returned to a source."""

    queue: int
    reference_rate: float

    def merge(self, other: "ArbitrationResult") -> "ArbitrationResult":
        """Combine decisions from two links on a path: a flow obeys the most
        restrictive — the lowest of the priority queues and the smallest of
        the reference rates (§3.1.2: "a flow always uses the lowest of the
        priority queues assigned by all the arbitrators")."""
        return ArbitrationResult(
            queue=max(self.queue, other.queue),
            reference_rate=min(self.reference_rate, other.reference_rate),
        )


class LinkArbitrator:
    """Algorithm 1 over one link.

    ``num_queues`` is the number of *data* queues (the background class is
    outside arbitration).  ``base_rate`` is the Rref handed to flows that do
    not make the top queue.
    """

    def __init__(
        self,
        name: str,
        capacity_bps: float,
        num_queues: int,
        base_rate_bps: float,
    ) -> None:
        self.name = name
        self.capacity_bps = check_positive("capacity_bps", capacity_bps)
        self.num_queues = int(check_positive("num_queues", num_queues))
        self.base_rate_bps = check_positive("base_rate_bps", base_rate_bps)
        self.flows: Dict[int, ArbitratedFlow] = {}
        #: Number of arbitrate() calls served (processing-load metric).
        self.requests_served = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> float:
        """Capacity used for queue/rate computation; virtual links override."""
        return self.capacity_bps

    def arbitrate(
        self,
        flow_id: int,
        criterion_value: float,
        demand: float,
        now: float,
    ) -> ArbitrationResult:
        """Register/update a flow and compute its (PrioQue, Rref)."""
        check_non_negative("criterion_value", criterion_value)
        check_non_negative("demand", demand)
        self.requests_served += 1
        entry = self.flows.get(flow_id)
        if entry is None:
            self.flows[flow_id] = ArbitratedFlow(flow_id, criterion_value, demand, now)
        else:
            entry.criterion_value = criterion_value
            entry.demand = demand
            entry.last_update = now
        return self._decide(flow_id)

    def _decide(self, flow_id: int) -> ArbitrationResult:
        """Step 2 of Algorithm 1: ADH -> (PrioQue, Rref)."""
        me = self.flows[flow_id]
        my_key = me.sort_key()
        adh = 0.0
        for other in self.flows.values():
            if other.flow_id != flow_id and other.sort_key() < my_key:
                adh += other.demand
        capacity = self.capacity
        if adh < capacity:
            rate = min(me.demand, capacity - adh)
            queue = 0
        else:
            rate = self.base_rate_bps
            queue = min(int(adh // capacity), self.num_queues - 1)
        return ArbitrationResult(queue=queue, reference_rate=rate)

    # ------------------------------------------------------------------
    def remove(self, flow_id: int) -> None:
        """Explicit removal when the source reports completion."""
        self.flows.pop(flow_id, None)

    def expire(self, now: float, timeout: float) -> int:
        """Drop entries not refreshed within ``timeout``; returns the count.

        The safety net for sources that died without a completion message.
        """
        stale = [fid for fid, e in self.flows.items() if now - e.last_update > timeout]
        for fid in stale:
            del self.flows[fid]
        return len(stale)

    @property
    def active_flows(self) -> int:
        return len(self.flows)

    def aggregate_demand(self, top_queues: Optional[int] = None) -> float:
        """Total demand registered at this link; with ``top_queues`` given,
        only flows currently mapping within those classes count.  Used by
        delegation's child demand reports."""
        if top_queues is None:
            return sum(e.demand for e in self.flows.values())
        limit = top_queues * self.capacity
        total = 0.0
        adh = 0.0
        for entry in sorted(self.flows.values(), key=ArbitratedFlow.sort_key):
            if adh >= limit:
                break
            total += entry.demand
            adh += entry.demand
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinkArbitrator({self.name}, {self.active_flows} flows)"


class VirtualLinkArbitrator(LinkArbitrator):
    """A delegated slice of a parent link (§3.1.2 "Delegation").

    The owning child arbitrator runs ordinary Algorithm 1 over the slice;
    :meth:`set_share` is called by the delegation manager on each rebalance.
    ``full_capacity_bps`` is the physical parent link's capacity.
    """

    def __init__(
        self,
        name: str,
        full_capacity_bps: float,
        num_queues: int,
        base_rate_bps: float,
        initial_share: float,
    ) -> None:
        super().__init__(name, full_capacity_bps, num_queues, base_rate_bps)
        self.full_capacity_bps = full_capacity_bps
        self._share = initial_share

    @property
    def share(self) -> float:
        return self._share

    def set_share(self, share: float) -> None:
        if not 0 < share <= 1:
            raise ValueError(f"share must be in (0, 1], got {share!r}")
        self._share = share

    @property
    def capacity(self) -> float:
        return self.full_capacity_bps * self._share
