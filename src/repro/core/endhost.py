"""PASE's end-host transport (§3.2, Algorithm 2).

Built on the shared reliable chassis and DCTCP's alpha estimator, but aware
of the two arbitration outputs:

* **Reference rate** — a top-queue flow pins its window to ``Rref * RTT``
  instead of slow-starting; a marked ACK still applies the DCTCP decrease,
  so endpoints remain self-adjusting when the arbitrator's estimate is off.
* **Priority queue** — intermediate-queue flows run DCTCP control laws from
  a one-packet window; bottom-queue flows stay at one packet per RTT.

Two further mechanisms from the paper:

* **Probe-based loss recovery** — a timeout in a non-top queue sends a
  header-only probe rather than retransmitting data: if the probe's ACK
  reports the packet missing, it was genuinely lost and is retransmitted;
  if the probe itself goes unanswered the flow is merely parked behind
  higher-priority traffic and keeps waiting (with backoff).
* **Promotion reordering guard** — on moving to a *higher* priority queue,
  the sender drains in-flight packets before sending at the new priority,
  avoiding reordering-induced backoff (§3.2).
"""

from __future__ import annotations

from typing import Optional

from repro.core.arbitration import ArbitrationResult
from repro.core.config import PaseConfig
from repro.core.control_plane import PaseControlPlane
from repro.sim.engine import Event
from repro.sim.packet import HEADER_SIZE, Packet, PacketKind, alloc_packet
from repro.sim.trace import CAT_FALLBACK, CAT_QUEUE_CHANGE
from repro.transports.base import ReceiverAgent, SenderAgent, TransportConfig
from repro.transports.dctcp import DctcpAlphaEstimator
from repro.utils.units import bytes_to_bits

#: PASE receivers are plain receivers: probe replies are part of the shared
#: chassis (the PASE paper introduced them; see ReceiverAgent._ack_probe).
PaseReceiver = ReceiverAgent


class PaseSender(SenderAgent):
    """Algorithm 2 rate control driven by (PrioQue, Rref) from arbitration."""

    def __init__(
        self,
        sim,
        host,
        flow,
        control_plane: PaseControlPlane,
        config: Optional[PaseConfig] = None,
        on_done=None,
        use_reference_rate: bool = True,
    ) -> None:
        #: Fig. 13a ablation ("PASE-DCTCP"): when False the flow still gets
        #: arbitrated queues but runs DCTCP control laws in every queue,
        #: ignoring the reference rate.
        self.use_reference_rate = use_reference_rate
        self.pase = config or control_plane.config
        base_cfg = TransportConfig(
            init_cwnd=1.0,
            min_rto=self.pase.min_rto_top,
            slow_start=False,
        )
        super().__init__(sim, host, flow, base_cfg, on_done)
        self.control_plane = control_plane
        self.nic_rate_bps = control_plane.topology.host_uplink(host).capacity_bps
        self.estimator = DctcpAlphaEstimator(self.pase.g)
        self.estimator.begin_window(self.cwnd)

        self.queue_index: int = self.pase.num_data_queues - 1
        self.reference_rate: float = 0.0
        self._is_intermediate = False
        self._pending_queue: Optional[int] = None
        self._last_reduction_seq = -1
        self._arb_event: Optional[Event] = None
        #: Latest known result per path half ("src"/"dst"); the flow obeys
        #: the merge of the two (lowest queue, smallest reference rate).
        self._half_results: dict = {}
        #: No data leaves before the first arbitration response (§3.1.2);
        #: background flows are exempt (they never arbitrate).
        self._arbitrated = False
        # -- fallback machinery (active only under fault injection) ----
        #: True between issuing a request and any arbitration response; if
        #: still set at the next periodic tick the request timed out.
        self._request_pending = False
        self._arb_failures = 0
        #: True while running pure DCTCP because arbitrators are unreachable.
        self._in_fallback = False
        self._fallback_since = 0.0

        if flow.background:
            # Background traffic lives in the reserved bottom class and runs
            # plain DCTCP laws; it never contacts arbitrators (§3.3).
            self.queue_index = self.pase.background_queue
            self._is_intermediate = True
            self.cwnd = 2.0

    # ------------------------------------------------------------------
    # Lifecycle / arbitration driver
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.started:
            return
        self.started = True
        self.host.attach_sender(self.flow.flow_id, self)
        if not self.flow.background:
            self._arbitrate()
        self.send_window()

    def _arbitrate(self) -> None:
        self._arb_event = None
        if self.finished:
            return
        if self.pase.early_termination and self._deadline_unreachable():
            self.terminate()
            return
        # The flow starts sending when the source half's *deepest child
        # arbitrator* has answered (§3.1.2: "a flow starts as soon as it
        # receives arbitration information from the child arbitrator") —
        # synchronously for intra-rack, after the ToR round trip otherwise.
        # Starting on host-local information alone would blast line-rate
        # top-queue bursts into fabric links the host knows nothing about.
        cp = self.control_plane
        if not cp.fallible:
            cp.request(self.flow, self._criterion_value(), self._demand(),
                       self._on_arbitration)
            self._arb_event = self.sim.schedule(
                self.pase.arbitration_interval, self._arbitrate)
            return
        # Fallible path.  A request that never answered by this tick has
        # timed out (no extra timeout events needed — the periodic cadence
        # is the timer); an outright refusal fails immediately.  Enough
        # consecutive failures and the flow falls back to pure DCTCP,
        # still re-requesting (with backoff) so it rejoins arbitration the
        # moment the control plane answers again.
        if self._request_pending:
            self._arb_failures += 1
        self._request_pending = True
        local = cp.request(self.flow, self._criterion_value(), self._demand(),
                           self._on_arbitration)
        if local is None:
            self._request_pending = False
            self._arb_failures += 1
        if self._arb_failures > self.pase.arbitration_max_retries:
            self._enter_fallback()
        interval = self.pase.arbitration_interval
        if self._arb_failures:
            interval *= min(2.0 ** self._arb_failures,
                            self.pase.arbitration_backoff_cap)
        self._arb_event = self.sim.schedule(interval, self._arbitrate)

    def _criterion_value(self) -> float:
        criterion = self.pase.criterion
        if criterion == "deadline":
            deadline = self.flow.absolute_deadline
            if deadline is None:
                return float("1e12")
            if deadline <= self.sim.now:
                # The deadline is already blown: stop competing with flows
                # that can still make theirs (EDF would otherwise hand the
                # top queue to provably useless work).
                return float("1e9") + deadline
            return deadline
        if criterion == "las":
            # Size-unaware: least attained service first.  Fresh flows win;
            # flows pay for what they have already received.
            return float(self.pkts_acked * self.mtu)
        if criterion == "task":
            # Tasks in arrival order (task ids are assigned monotonically),
            # shortest-remaining within a task; task-less flows sort last.
            task = self.flow.task_id
            if task is None:
                return 1e15 + float(self.remaining_bytes)
            return task * 1e10 + min(float(self.remaining_bytes), 1e10 - 1)
        return float(self.remaining_bytes)

    def _demand(self) -> float:
        """Max useful rate: NIC line rate, or less for sub-BDP flows."""
        rtt = max(self.base_rtt, 1e-9)
        return min(self.nic_rate_bps, bytes_to_bits(self.remaining_bytes) / rtt)

    def _deadline_unreachable(self) -> bool:
        """True when even NIC line rate cannot finish before the deadline."""
        deadline = self.flow.absolute_deadline
        if deadline is None:
            return False
        time_left = deadline - self.sim.now
        best_case = bytes_to_bits(self.remaining_bytes) / self.nic_rate_bps
        return best_case > time_left

    def terminate(self) -> None:
        """Give up on the flow (Early Termination): stop all timers, clear
        arbitration state, and mark the flow as abandoned.  Capacity the
        flow would have wasted goes to flows that can still make their
        deadlines."""
        if self.finished:
            return
        self.flow.terminated = True
        self._close_fallback_episode()
        self.finished = True
        self._cancel_rto()
        if self._arb_event is not None:
            self._arb_event.cancel()
            self._arb_event = None
        if not self.flow.background:
            self.control_plane.notify_complete(self.flow)
        self.host.detach_flow(self.flow.flow_id)
        if self.on_done is not None:
            self.on_done(self.flow)

    def _finish(self) -> None:
        if self.finished:
            return
        self._close_fallback_episode()
        if self._arb_event is not None:
            self._arb_event.cancel()
            self._arb_event = None
        if not self.flow.background:
            self.control_plane.notify_complete(self.flow)
        super()._finish()

    # ------------------------------------------------------------------
    # Applying arbitration decisions
    # ------------------------------------------------------------------
    def _on_arbitration(self, half: str, new_result: ArbitrationResult) -> None:
        if self.finished:
            return
        self._request_pending = False
        if self._arb_failures:
            self._arb_failures = 0
        if self._in_fallback:
            self._exit_fallback()
        self._arbitrated = True
        self._half_results[half] = new_result
        result = new_result
        for other_half, other in self._half_results.items():
            if other_half != half:
                result = result.merge(other)
        self.reference_rate = result.reference_rate
        new_queue = min(result.queue, self.pase.num_data_queues - 1)
        if new_queue < self.queue_index and self.inflight > 0:
            # Promotion: drain old-priority packets first (reordering guard).
            self._pending_queue = new_queue
        else:
            self._pending_queue = None
            self._set_queue(new_queue)
        self.send_window()

    def _set_queue(self, queue: int) -> None:
        if queue != self.queue_index and self.sim.tracer is not None:
            self.sim.tracer.record(self.sim.now, CAT_QUEUE_CHANGE,
                                   self.flow.flow_id,
                                   old=self.queue_index, new=queue)
        self.queue_index = queue
        if queue == 0:
            if not self.use_reference_rate:
                # PASE-DCTCP ablation: DCTCP laws even in the top queue.
                if not self._is_intermediate:
                    self._is_intermediate = True
                    self.cwnd = 2.0
                return
            self._is_intermediate = False
            self.cwnd = max(1.0, self._reference_window())
        elif queue < self.pase.num_data_queues - 1:
            if not self._is_intermediate:
                self._is_intermediate = True
                self.cwnd = 1.0
                # DCTCP increase law from a cold window includes slow start:
                # the flow probes for spare (work-conservation) capacity and
                # is tamed by ECN marks inside its priority class.  Without
                # this, intermediate flows crawl at +1 MSS/RTT and the gaps
                # left by completing top-queue flows go unused.
                self.ssthresh = self.config.max_cwnd
        else:
            self._is_intermediate = False
            self.cwnd = 1.0

    def _reference_window(self) -> float:
        """Rref expressed as a window: Rref x RTT, in packets.  Uses the
        propagation RTT — a queueing-inflated estimate would compound (more
        window -> more queueing -> more window)."""
        return self.reference_rate * max(self.base_rtt, 1e-9) / bytes_to_bits(self.mtu)

    def _maybe_complete_promotion(self) -> None:
        if self._pending_queue is not None and self.inflight == 0:
            pending = self._pending_queue
            self._pending_queue = None
            self._set_queue(pending)

    # ------------------------------------------------------------------
    # DCTCP fallback (§3.1's fault-tolerance argument, made concrete)
    # ------------------------------------------------------------------
    def _enter_fallback(self) -> None:
        """Arbitrators unreachable: run pure self-adjusting DCTCP in the
        fallback queue until a response arrives again."""
        if self._in_fallback:
            return
        self._in_fallback = True
        self._fallback_since = self.sim.now
        self.flow.fallback_episodes += 1
        # Pre-crash arbitration state is stale; drop it wholesale.
        self._half_results.clear()
        self._pending_queue = None
        self.reference_rate = 0.0
        queue = self.pase.fallback_queue
        if queue is None:
            queue = self.pase.num_data_queues - 1
        self.queue_index = queue
        self._is_intermediate = True  # DCTCP control laws
        self.cwnd = max(self.cwnd, 2.0)
        self.ssthresh = self.config.max_cwnd
        self._arbitrated = True  # sending no longer gated on arbitration
        if self.sim.tracer is not None:
            self.sim.tracer.record(self.sim.now, CAT_FALLBACK,
                                   self.flow.flow_id, phase="enter",
                                   queue=queue)
        self.send_window()

    def _exit_fallback(self) -> None:
        """An arbitration response arrived: soft state is rebuilding."""
        self._in_fallback = False
        duration = self.sim.now - self._fallback_since
        self.flow.fallback_time += duration
        self.flow.recovery_latencies.append(duration)
        if self.sim.tracer is not None:
            self.sim.tracer.record(self.sim.now, CAT_FALLBACK,
                                   self.flow.flow_id, phase="exit",
                                   duration=duration)

    def _close_fallback_episode(self) -> None:
        """Flow ended while still in fallback: book the time, no recovery."""
        if self._in_fallback:
            self._in_fallback = False
            self.flow.fallback_time += self.sim.now - self._fallback_since

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_window(self) -> None:
        if not self._arbitrated and not self.flow.background:
            return  # wait for the child arbitrator's first answer
        self._maybe_complete_promotion()
        if self._pending_queue is not None:
            return  # hold fire until the old-priority packets drain
        super().send_window()

    def decorate_packet(self, pkt: Packet) -> None:
        pkt.queue_index = self.queue_index
        pkt.priority = float(self.queue_index)

    # ------------------------------------------------------------------
    # Algorithm 2: window update per ACK
    # ------------------------------------------------------------------
    def on_ack_window_update(self, ack: Packet, newly_acked: bool) -> None:
        if not newly_acked:
            return
        self.estimator.observe(ack.ecn_echo, self.cwnd)
        if ack.ecn_echo and self._may_reduce():
            self.cwnd = max(1.0, self.cwnd * (1 - self.estimator.alpha / 2))
            self.ssthresh = max(self.cwnd, 2.0)
            return
        if self.flow.background or self._is_intermediate:
            if self.cwnd < self.ssthresh:
                self.cwnd = min(self.cwnd + 1.0, self.config.max_cwnd)
            else:
                self.cwnd = min(self.cwnd + 1.0 / max(self.cwnd, 1.0),
                                self.config.max_cwnd)
        elif self.queue_index == 0 and self.use_reference_rate:
            self.cwnd = min(max(1.0, self._reference_window()),
                            self.config.max_cwnd)
        else:
            self.cwnd = 1.0

    def _may_reduce(self) -> bool:
        if self.cum_ack > self._last_reduction_seq:
            self._last_reduction_seq = self.next_new
            return True
        return False

    # ------------------------------------------------------------------
    # Loss recovery: queue-dependent RTO + probing
    # ------------------------------------------------------------------
    def rto_value(self) -> float:
        floor = (self.pase.min_rto_top if self.queue_index == 0
                 else self.pase.min_rto_low)
        base = max(floor, self.srtt + 4 * self.rttvar)
        return min(self.config.max_rto, base * (2 ** self._rto_backoff))

    def handle_timeout(self) -> None:
        if self.queue_index == 0 or not self.pase.probing_enabled:
            super().handle_timeout()
            return
        # Low-priority timeout: probe instead of retransmitting data (§3.2).
        self._send_probe()
        self._rearm_rto()

    def _send_probe(self) -> None:
        probe = alloc_packet(
            PacketKind.PROBE, self.host.node_id, self.flow.dst,
            self.flow.flow_id, seq=min(self.cum_ack, self.total_pkts - 1),
            size=HEADER_SIZE, queue_index=self.queue_index,
        )
        probe.priority = float(self.queue_index)
        probe.sent_time = self.sim.now
        self.flow.probes_sent += 1
        self.host.send(probe)

    def handle_special_ack(self, ack: Packet) -> bool:
        if ack.ack_sacks == -1:
            # Probe answered but the probed packet never arrived.  The probe
            # travelled the same FIFO class as the data, so everything sent
            # before it either arrived (and was SACKed) or was dropped:
            # declare the whole in-flight set lost so the window can
            # actually re-send (a stale in-flight set would otherwise pin
            # the one-packet window shut forever).
            seq = ack.seq
            for lost in sorted(self._inflight):
                if lost not in self._retx_queue and not self._acked[lost]:
                    self._retx_queue.append(lost)
            self._inflight.clear()
            if seq not in self._retx_queue and not self._acked[seq]:
                self._retx_queue.insert(0, seq)
            self._rto_backoff = 0
            self._rearm_rto()
            self.send_window()
            return True
        return False
