"""Empirical flow-size distributions from production data centers.

Two workloads every data-center transport paper evaluates on, digitized
from the published CDFs:

* **Web search** (DCTCP paper, Alizadeh et al. 2010 — Microsoft search
  cluster): bimodal, with most flows short (query/response RPCs) but most
  *bytes* in the 1-30 MB background updates.
* **Data mining** (VL2 paper, Greenberg et al. 2009): extremely heavy
  tailed — ~80% of flows below 10 KB, while a thin tail of multi-hundred-MB
  flows carries almost all bytes.

The PASE paper itself sweeps uniform distributions; these are provided for
the extended benchmarks (heavier tails make scheduling matter more) and as
realistic inputs for downstream users.
"""

from __future__ import annotations

from repro.utils.units import KB, MB
from repro.workloads.distributions import EmpiricalSizeDistribution

#: Web-search workload (DCTCP Fig. 2 style CDF): (size_bytes, cum_prob).
WEB_SEARCH_CDF = [
    (6 * KB, 0.0),
    (6 * KB, 0.15),
    (13 * KB, 0.2),
    (19 * KB, 0.3),
    (33 * KB, 0.4),
    (53 * KB, 0.53),
    (133 * KB, 0.6),
    (667 * KB, 0.7),
    (1467 * KB, 0.8),
    (3 * MB, 0.9),
    (7 * MB, 0.97),
    (30 * MB, 1.0),
]

#: Data-mining workload (VL2 style CDF): (size_bytes, cum_prob).
DATA_MINING_CDF = [
    (1 * KB, 0.0),
    (1 * KB, 0.5),
    (2 * KB, 0.6),
    (3 * KB, 0.7),
    (7 * KB, 0.8),
    (267 * KB, 0.9),
    (2107 * KB, 0.95),
    (66_667 * KB, 0.99),
    (666_667 * KB, 1.0),
]


def web_search_sizes() -> EmpiricalSizeDistribution:
    """The DCTCP web-search flow-size distribution."""
    return EmpiricalSizeDistribution(WEB_SEARCH_CDF)


def data_mining_sizes() -> EmpiricalSizeDistribution:
    """The VL2 data-mining flow-size distribution (very heavy tailed)."""
    return EmpiricalSizeDistribution(DATA_MINING_CDF)
