"""Traffic patterns: who talks to whom, and what "offered load" divides by.

Each pattern yields ``(src, dst)`` host-id pairs and exposes
``capacity_basis_bps`` — the aggregate capacity against which the offered
load is normalized, so ``arrival_rate = load * basis / mean_flow_bits``:

* :class:`IntraRackRandom` — uniform random distinct pairs within one rack;
  the basis is the sum of access-link capacities, making ``load`` the
  average utilization of each access link (the convention in DCTCP/D2TCP
  style intra-rack experiments).
* :class:`AllToAllIntraRack` — the worker/aggregator fan-in of §2.1/§4.2.2:
  aggregators are picked round-robin, workers uniformly among the rest.
* :class:`LeftRight` — all sources in the left subtree of the core, all
  destinations in the right (§4.2.1); the basis is the capacity of the
  aggregation-core uplink those flows squeeze through.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.utils.validation import check_positive


class TrafficPattern:
    """Interface for source/destination selection.

    A pattern may be *bursty*: one workload arrival event can spawn several
    synchronized flows (partition-aggregate incast).  ``burst`` returns the
    pairs for one event; the default is a single pair.  ``flows_per_arrival``
    feeds the load computation so "offered load" stays the average link
    utilization regardless of burstiness.
    """

    def pair(self, rng: random.Random) -> Tuple[int, int]:
        raise NotImplementedError

    def burst(self, rng: random.Random) -> List[Tuple[int, int]]:
        return [self.pair(rng)]

    @property
    def flows_per_arrival(self) -> int:
        return 1

    @property
    def capacity_basis_bps(self) -> float:
        raise NotImplementedError


class IntraRackRandom(TrafficPattern):
    """Uniform random (src, dst) with src != dst within one host set."""

    def __init__(self, host_ids: Sequence[int], link_bps: float) -> None:
        if len(host_ids) < 2:
            raise ValueError("need at least two hosts")
        check_positive("link_bps", link_bps)
        self.host_ids = list(host_ids)
        self.link_bps = link_bps

    def pair(self, rng: random.Random) -> Tuple[int, int]:
        src, dst = rng.sample(self.host_ids, 2)
        return src, dst

    @property
    def capacity_basis_bps(self) -> float:
        return self.link_bps * len(self.host_ids)


class AllToAllIntraRack(TrafficPattern):
    """Worker -> aggregator fan-in with round-robin aggregators."""

    def __init__(self, host_ids: Sequence[int], link_bps: float) -> None:
        if len(host_ids) < 2:
            raise ValueError("need at least two hosts")
        check_positive("link_bps", link_bps)
        self.host_ids = list(host_ids)
        self.link_bps = link_bps
        self._next_aggregator = 0

    def pair(self, rng: random.Random) -> Tuple[int, int]:
        dst = self.host_ids[self._next_aggregator]
        self._next_aggregator = (self._next_aggregator + 1) % len(self.host_ids)
        others = [h for h in self.host_ids if h != dst]
        return rng.choice(others), dst

    @property
    def capacity_basis_bps(self) -> float:
        return self.link_bps * len(self.host_ids)


class IncastAllToAll(TrafficPattern):
    """Partition-aggregate incast: each query picks the next aggregator
    round-robin and ``fanin`` random workers answer it *simultaneously* —
    the search-application interaction of §2.1 (Fig. 4) and §4.2.2
    (Fig. 10c).  The synchronized responses are what overflow shallow
    buffers in protocols that start every flow at line rate."""

    def __init__(
        self,
        host_ids: Sequence[int],
        link_bps: float,
        fanin: int = 0,
    ) -> None:
        if len(host_ids) < 2:
            raise ValueError("need at least two hosts")
        check_positive("link_bps", link_bps)
        self.host_ids = list(host_ids)
        self.link_bps = link_bps
        max_fanin = len(host_ids) - 1
        self.fanin = max_fanin if fanin <= 0 else min(fanin, max_fanin)
        self._next_aggregator = 0

    def pair(self, rng: random.Random) -> Tuple[int, int]:
        raise NotImplementedError("IncastAllToAll only generates bursts")

    def burst(self, rng: random.Random) -> List[Tuple[int, int]]:
        aggregator = self.host_ids[self._next_aggregator]
        self._next_aggregator = (self._next_aggregator + 1) % len(self.host_ids)
        workers = [h for h in self.host_ids if h != aggregator]
        chosen = rng.sample(workers, self.fanin)
        return [(worker, aggregator) for worker in chosen]

    @property
    def flows_per_arrival(self) -> int:
        return self.fanin

    @property
    def capacity_basis_bps(self) -> float:
        return self.link_bps * len(self.host_ids)


class ManyToOne(TrafficPattern):
    """All senders target one receiver (the simulated-testbed shape: nine
    clients, one server, §4.4)."""

    def __init__(self, sender_ids: Sequence[int], receiver_id: int, link_bps: float) -> None:
        if not sender_ids:
            raise ValueError("need at least one sender")
        if receiver_id in sender_ids:
            raise ValueError("receiver cannot also be a sender")
        check_positive("link_bps", link_bps)
        self.sender_ids = list(sender_ids)
        self.receiver_id = receiver_id
        self.link_bps = link_bps

    def pair(self, rng: random.Random) -> Tuple[int, int]:
        return rng.choice(self.sender_ids), self.receiver_id

    @property
    def capacity_basis_bps(self) -> float:
        # Everything funnels into the receiver's single access link.
        return self.link_bps


class LeftRight(TrafficPattern):
    """Left-subtree sources to right-subtree destinations."""

    def __init__(
        self,
        left_ids: Sequence[int],
        right_ids: Sequence[int],
        bottleneck_bps: float,
    ) -> None:
        if not left_ids or not right_ids:
            raise ValueError("need non-empty left and right host sets")
        check_positive("bottleneck_bps", bottleneck_bps)
        self.left_ids = list(left_ids)
        self.right_ids = list(right_ids)
        self.bottleneck_bps = bottleneck_bps

    def pair(self, rng: random.Random) -> Tuple[int, int]:
        return rng.choice(self.left_ids), rng.choice(self.right_ids)

    @property
    def capacity_basis_bps(self) -> float:
        return self.bottleneck_bps
