"""Workload generator: Poisson arrivals over a traffic pattern.

The paper's recipe (§4.1): flows arrive by a Poisson process, sizes drawn
from the scenario's distribution, optional per-flow deadlines, plus a small
number of long-lived background flows representative of the 75th percentile
of flow multiplexing in production data centers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.transports.flow import Flow
from repro.utils.units import MB, bytes_to_bits
from repro.utils.validation import check_in_range, check_positive
from repro.workloads.distributions import DeadlineDistribution, SizeDistribution
from repro.workloads.patterns import TrafficPattern

#: Size given to "long-lived" background flows — large enough to outlast any
#: experiment horizon at line rate.
BACKGROUND_FLOW_BYTES = 1_000 * MB


@dataclass
class WorkloadConfig:
    """Parameters of one generated workload."""

    pattern: TrafficPattern
    size_dist: SizeDistribution
    #: Offered load as a fraction of ``pattern.capacity_basis_bps``.
    load: float
    num_flows: int
    seed: int = 1
    deadline_dist: Optional[DeadlineDistribution] = None
    num_background_flows: int = 0
    #: Arrivals begin after this warm-up offset (lets background flows ramp).
    start_offset: float = 0.0

    def __post_init__(self) -> None:
        check_in_range("load", self.load, 0.01, 1.5)
        check_positive("num_flows", self.num_flows)
        if self.num_background_flows < 0:
            raise ValueError("num_background_flows must be >= 0")

    @property
    def arrival_rate(self) -> float:
        """Poisson *event* rate realizing the offered load (an event is one
        flow, or one incast burst of ``flows_per_arrival`` flows)."""
        mean_bits = bytes_to_bits(self.size_dist.mean_bytes)
        per_event_bits = mean_bits * self.pattern.flows_per_arrival
        return self.load * self.pattern.capacity_basis_bps / per_event_bits


def generate_workload(config: WorkloadConfig, first_flow_id: int = 1) -> List[Flow]:
    """Materialize the flow list (sorted by start time).

    Background flows start at t=0 so they are established before the first
    short flow arrives, mirroring the paper's setup.
    """
    rng = random.Random(config.seed)
    flows: List[Flow] = []
    flow_id = first_flow_id

    for _ in range(config.num_background_flows):
        src, dst = config.pattern.pair(rng)
        flows.append(Flow(
            flow_id=flow_id, src=src, dst=dst,
            size_bytes=BACKGROUND_FLOW_BYTES, start_time=0.0,
            background=True,
        ))
        flow_id += 1

    t = config.start_offset
    rate = config.arrival_rate
    generated = 0
    task_id = 0
    multi_flow_bursts = config.pattern.flows_per_arrival > 1
    while generated < config.num_flows:
        t += rng.expovariate(rate)
        task_id += 1
        for src, dst in config.pattern.burst(rng):
            deadline = None
            if config.deadline_dist is not None:
                deadline = config.deadline_dist.sample(rng)
            flows.append(Flow(
                flow_id=flow_id, src=src, dst=dst,
                size_bytes=config.size_dist.sample(rng), start_time=t,
                deadline=deadline,
                # Flows of one incast burst form a task (coflow); singleton
                # arrivals stay task-less.
                task_id=task_id if multi_flow_bursts else None,
            ))
            flow_id += 1
            generated += 1
            if generated >= config.num_flows:
                break
    return flows
