"""Workload generation: flow-size/deadline distributions, traffic patterns,
and Poisson arrival processes matching the paper's evaluation setups."""

from repro.workloads.distributions import (
    DEADLINE_SIZES,
    QUERY_SIZES,
    DeadlineDistribution,
    EmpiricalSizeDistribution,
    FixedSizeDistribution,
    SizeDistribution,
    UniformSizeDistribution,
)
from repro.workloads.generator import (
    BACKGROUND_FLOW_BYTES,
    WorkloadConfig,
    generate_workload,
)
from repro.workloads.patterns import (
    AllToAllIntraRack,
    IncastAllToAll,
    IntraRackRandom,
    LeftRight,
    ManyToOne,
    TrafficPattern,
)

__all__ = [
    "DEADLINE_SIZES",
    "QUERY_SIZES",
    "DeadlineDistribution",
    "EmpiricalSizeDistribution",
    "FixedSizeDistribution",
    "SizeDistribution",
    "UniformSizeDistribution",
    "BACKGROUND_FLOW_BYTES",
    "WorkloadConfig",
    "generate_workload",
    "AllToAllIntraRack",
    "IncastAllToAll",
    "IntraRackRandom",
    "LeftRight",
    "ManyToOne",
    "TrafficPattern",
]

from repro.workloads.production import (
    DATA_MINING_CDF,
    WEB_SEARCH_CDF,
    data_mining_sizes,
    web_search_sizes,
)

__all__ += [
    "DATA_MINING_CDF",
    "WEB_SEARCH_CDF",
    "data_mining_sizes",
    "web_search_sizes",
]
