"""Flow-size and deadline distributions used in the paper's evaluation.

The paper draws query/short-message flow sizes from uniform intervals —
[2 KB, 198 KB] for the FCT studies (following PDQ/D3) and [100 KB, 500 KB]
for the deadline studies (following D2TCP) — and deadlines uniformly from
[5 ms, 25 ms].  Empirical CDF support (e.g. for web-search or data-mining
traces) is provided for extension studies.
"""

from __future__ import annotations

import bisect
import random
from typing import Sequence, Tuple

from repro.utils.units import KB
from repro.utils.validation import check_positive


class SizeDistribution:
    """Interface: ``sample(rng) -> int`` bytes, plus the analytic mean used
    to convert offered load into a Poisson arrival rate."""

    def sample(self, rng: random.Random) -> int:
        raise NotImplementedError

    @property
    def mean_bytes(self) -> float:
        raise NotImplementedError


class UniformSizeDistribution(SizeDistribution):
    """Sizes uniform in [low, high] bytes (inclusive)."""

    def __init__(self, low_bytes: int, high_bytes: int) -> None:
        check_positive("low_bytes", low_bytes)
        if high_bytes < low_bytes:
            raise ValueError(f"high ({high_bytes}) must be >= low ({low_bytes})")
        self.low = int(low_bytes)
        self.high = int(high_bytes)

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)

    @property
    def mean_bytes(self) -> float:
        return (self.low + self.high) / 2

    def __repr__(self) -> str:
        return f"Uniform[{self.low}B, {self.high}B]"


class FixedSizeDistribution(SizeDistribution):
    """Every flow has the same size (micro-benchmarks, toy scenarios)."""

    def __init__(self, size_bytes: int) -> None:
        self.size = int(check_positive("size_bytes", size_bytes))

    def sample(self, rng: random.Random) -> int:
        return self.size

    @property
    def mean_bytes(self) -> float:
        return float(self.size)

    def __repr__(self) -> str:
        return f"Fixed[{self.size}B]"


class EmpiricalSizeDistribution(SizeDistribution):
    """Inverse-CDF sampling from ``(size_bytes, cumulative_prob)`` points,
    interpolating linearly between points (the standard way production
    workloads like web-search are replayed in transport papers)."""

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        sizes = [p[0] for p in points]
        probs = [p[1] for p in points]
        if sorted(probs) != list(probs) or probs[-1] != 1.0:
            raise ValueError("cumulative probabilities must be sorted and end at 1.0")
        if sorted(sizes) != list(sizes):
            raise ValueError("sizes must be sorted ascending")
        self.sizes = sizes
        self.probs = probs

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        i = bisect.bisect_left(self.probs, u)
        if i == 0:
            return max(1, int(self.sizes[0]))
        p0, p1 = self.probs[i - 1], self.probs[i]
        s0, s1 = self.sizes[i - 1], self.sizes[i]
        frac = 0.0 if p1 == p0 else (u - p0) / (p1 - p0)
        return max(1, int(s0 + frac * (s1 - s0)))

    @property
    def mean_bytes(self) -> float:
        total = 0.0
        prev_p = 0.0
        prev_s = self.sizes[0]
        for s, p in zip(self.sizes, self.probs):
            total += (p - prev_p) * (prev_s + s) / 2
            prev_p, prev_s = p, s
        return total


#: The paper's FCT workload (query traffic / latency-sensitive messages).
QUERY_SIZES = UniformSizeDistribution(2 * KB, 198 * KB)

#: The paper's deadline workload (replicated from D2TCP experiment 4.1.3).
DEADLINE_SIZES = UniformSizeDistribution(100 * KB, 500 * KB)


class DeadlineDistribution:
    """Relative deadlines uniform in [low, high] seconds (paper: 5-25 ms)."""

    def __init__(self, low: float, high: float) -> None:
        check_positive("low", low)
        if high < low:
            raise ValueError(f"high ({high}) must be >= low ({low})")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"DeadlineUniform[{self.low*1e3:.0f}ms, {self.high*1e3:.0f}ms]"
