#!/usr/bin/env python3
"""Build your own transport on the shared reliable chassis.

The library's five baseline protocols all subclass
:class:`repro.transports.base.SenderAgent` and override only four hooks
(packet decoration, per-ACK window law, fast-retransmit reaction, timeout
reaction).  This example writes a toy protocol the same way — "HalfTCP",
a deliberately lazy AIMD that grows half as fast as Reno and backs off
twice as hard — runs it head-to-head against DCTCP on a shared bottleneck,
and shows the chassis metrics you get for free.

Run:  python examples/custom_protocol.py
"""

from repro.sim import Simulator, StarTopology
from repro.sim.packet import Packet
from repro.transports import DctcpConfig, DctcpSender, Flow, ReceiverAgent
from repro.transports.base import SenderAgent, TransportConfig
from repro.utils.units import GBPS, KB, USEC


class HalfTcpSender(SenderAgent):
    """A timid AIMD: +0.5 MSS per RTT, multiplicative decrease by 4."""

    def decorate_packet(self, pkt: Packet) -> None:
        pkt.ecn_capable = False  # loss-based only

    def on_ack_window_update(self, pkt: Packet, newly_acked: bool) -> None:
        if newly_acked:
            self.cwnd = min(self.cwnd + 0.5 / max(self.cwnd, 1.0),
                            self.config.max_cwnd)

    def on_fast_retransmit(self) -> None:
        self.cwnd = max(1.0, self.cwnd / 4)

    def on_timeout_window_update(self) -> None:
        self.cwnd = 1.0


def main() -> None:
    sim = Simulator()
    topology = StarTopology(sim, num_hosts=4, link_bps=1 * GBPS,
                            rtt=100 * USEC)

    # Two equal flows into the same destination — one per protocol.
    contenders = [
        ("half-tcp", HalfTcpSender,
         TransportConfig(initial_rtt=100 * USEC, slow_start=False)),
        ("dctcp", DctcpSender, DctcpConfig(initial_rtt=100 * USEC)),
    ]
    flows = []
    for i, (name, sender_cls, config) in enumerate(contenders):
        flow = Flow(flow_id=i + 1, src=topology.hosts[i].node_id,
                    dst=topology.hosts[3].node_id, size_bytes=400 * KB,
                    start_time=0.0)
        ReceiverAgent(sim, topology.hosts[3], flow)
        sender_cls(sim, topology.hosts[i], flow, config).start()
        flows.append((name, flow))

    sim.run(until=1.0)

    print("Two 400 KB flows sharing a 1 Gbps bottleneck:\n")
    print(f"{'protocol':<12}{'FCT':<12}{'retransmits':<14}{'timeouts':<10}")
    for name, flow in flows:
        print(f"{name:<12}{flow.fct * 1e3:>7.2f} ms  "
              f"{flow.retransmissions:<14}{flow.timeouts:<10}")

    half, dctcp = flows[0][1], flows[1][1]
    assert dctcp.fct < half.fct, "the timid protocol should lose the race"
    print("\nThe lazy AIMD cedes bandwidth to DCTCP, as designed.")
    print("Writing a protocol = subclassing SenderAgent and overriding")
    print("4 hooks; reliability, RTT estimation, timers, metrics are free.")


if __name__ == "__main__":
    main()
