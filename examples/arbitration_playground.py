#!/usr/bin/env python3
"""A guided tour of PASE's arbitration machinery, no packets involved.

Part 1 drives Algorithm 1 directly: feed a link arbitrator a set of flows
and watch the (priority queue, reference rate) assignments change as flows
arrive, drain, and leave.

Part 2 builds the full three-tier control plane and shows what the paper's
two scalability optimizations buy: how many control messages a flow costs
with and without early pruning + delegation.

Run:  python examples/arbitration_playground.py
"""

from dataclasses import replace

from repro.core import LinkArbitrator, PaseConfig, PaseControlPlane
from repro.sim import Simulator, TreeTopology, TreeTopologyConfig
from repro.transports import Flow
from repro.utils.units import GBPS, KB, MBPS


def part1_algorithm_one() -> None:
    print("=" * 66)
    print("Part 1: Algorithm 1 on a single 1 Gbps link")
    print("=" * 66)
    arb = LinkArbitrator("demo-link", capacity_bps=1 * GBPS, num_queues=7,
                         base_rate_bps=40 * MBPS)

    print("\nThree flows arrive (sizes 500 KB, 50 KB, 200 KB), each able to")
    print("saturate the link (demand = 1 Gbps):\n")
    for fid, size in ((1, 500 * KB), (2, 50 * KB), (3, 200 * KB)):
        arb.arbitrate(fid, criterion_value=size, demand=1 * GBPS, now=0.0)
    for fid, size in ((1, 500 * KB), (2, 50 * KB), (3, 200 * KB)):
        r = arb.arbitrate(fid, size, 1 * GBPS, now=0.0)
        print(f"  flow {fid} ({size // 1000:>3} KB): queue {r.queue}, "
              f"Rref = {r.reference_rate / 1e6:7.1f} Mbps")
    print("\n  -> the shortest flow owns the top queue at full rate; the")
    print("     others hold lower queues at the base (probe) rate.")

    print("\nFlow 2 finishes and is removed; flow 3 re-arbitrates:\n")
    arb.remove(2)
    r = arb.arbitrate(3, 200 * KB, 1 * GBPS, now=0.001)
    print(f"  flow 3: queue {r.queue}, Rref = {r.reference_rate / 1e6:.1f} Mbps")
    print("  -> promoted to the top queue with the full link as its rate.")

    print("\nA flow with a small demand shares the top queue:\n")
    arb.remove(1)
    arb.remove(3)
    arb.arbitrate(10, 10 * KB, demand=200 * MBPS, now=0.002)
    r = arb.arbitrate(11, 80 * KB, demand=1 * GBPS, now=0.002)
    print(f"  flow 11 behind a 200 Mbps-demand flow: queue {r.queue}, "
          f"Rref = {r.reference_rate / 1e6:.1f} Mbps")
    print("  -> ADH < C, so it rides the top queue at the spare 800 Mbps.")


def part2_control_plane() -> None:
    print()
    print("=" * 66)
    print("Part 2: message cost of inter-rack arbitration, by optimization")
    print("=" * 66)
    print("\nOne cross-aggregation flow; count control messages per request:\n")

    variants = {
        "pruning + delegation (paper default)": PaseConfig(),
        "no delegation": PaseConfig(delegation_enabled=False),
        "no pruning, no delegation": PaseConfig(delegation_enabled=False,
                                                pruning_queues=0),
    }
    for label, config in variants.items():
        sim = Simulator()
        topo = TreeTopology(sim, TreeTopologyConfig(hosts_per_rack=2))
        cp = PaseControlPlane(sim, topo, replace(
            config, delegation_update_interval=10.0))
        src = topo.rack_hosts(0)[0]
        dst = topo.rack_hosts(2)[0]  # other side of the core
        flow = Flow(flow_id=1, src=src.node_id, dst=dst.node_id,
                    size_bytes=100 * KB, start_time=0.0)
        cp.request(flow, 100 * KB, 1 * GBPS, lambda half, result: None)
        sim.run(until=0.01)
        print(f"  {label:<40} {cp.messages_sent:>3} messages")

    print("\n  -> delegation keeps arbitration at the ToR (no aggregation/")
    print("     core round trips); intra-rack flows cost zero messages.")


if __name__ == "__main__":
    part1_algorithm_one()
    part2_control_plane()
