#!/usr/bin/env python3
"""Deadline-driven web search traffic: who actually meets their SLOs?

The paper's motivating workload (§1, Fig. 1, Fig. 9c): user-facing services
fan requests out to workers; every response that misses its deadline is
wasted work that degrades answer quality.  This example runs the intra-rack
deadline scenario — flows U[100 KB, 500 KB] with deadlines U[5 ms, 25 ms]
over two long-lived background flows — and reports the fraction of
deadlines met ("application throughput") for four transports at increasing
load.

Watch for the paper's two observations:
* deadline-aware endpoint tweaks (D2TCP) barely move the needle vs DCTCP
  once the network is busy, because every flow still pushes packets;
* PASE's arbitrated earliest-deadline-first schedule keeps meeting
  deadlines far deeper into the load range.

Run:  python examples/deadline_websearch.py
"""

from repro.harness import ExperimentSpec, intra_rack, run_experiment

PROTOCOLS = ("pase", "d2tcp", "dctcp", "pfabric")
LOADS = (0.3, 0.6, 0.9)


def main() -> None:
    print("Deadline web-search workload (intra-rack, 20 hosts)")
    print("fraction of deadlines met, by protocol and offered load\n")
    header = f"{'load':<8}" + "".join(f"{p:<10}" for p in PROTOCOLS)
    print(header)
    print("-" * len(header))

    for load in LOADS:
        row = f"{load:<8.0%}"
        for protocol in PROTOCOLS:
            scenario = intra_rack(num_hosts=20, with_deadlines=True)
            result = run_experiment(ExperimentSpec(protocol, scenario, load=load,
                                    num_flows=150, seed=3))
            row += f"{result.application_throughput:<10.2f}"
        print(row)

    print("\nReading the table:")
    print(" * every protocol is fine at 30% load;")
    print(" * by 90%, self-adjusting endpoints (dctcp/d2tcp) shed deadlines")
    print("   because low-priority flows keep consuming capacity;")
    print(" * pase arbitrates EDF across the rack and pfabric enforces")
    print("   priorities in the switches - both hold up far better.")


if __name__ == "__main__":
    main()
