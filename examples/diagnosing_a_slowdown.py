#!/usr/bin/env python3
"""Diagnosing a slow flow with the tracing and time-series tools.

When a flow's completion time looks wrong, aggregate metrics won't tell you
why.  This example runs a deliberately congested PASE scenario with

* a :class:`~repro.sim.trace.Tracer` attached (drops, timeouts, PASE queue
  changes), and
* a :class:`~repro.metrics.TimeSeriesProbe` sampling the bottleneck's
  queue depth and busy state,

then reconstructs the slowest flow's life story from the trace.

Run:  python examples/diagnosing_a_slowdown.py
"""

from repro.core import (
    PaseConfig,
    PaseControlPlane,
    PaseReceiver,
    PaseSender,
    pase_queue_factory,
)
from repro.metrics import TimeSeriesProbe
from repro.sim import Simulator, StarTopology
from repro.sim.trace import Tracer
from repro.transports import Flow
from repro.utils.units import GBPS, KB, USEC


def main() -> None:
    config = PaseConfig()
    sim = Simulator()
    sim.tracer = Tracer()
    topology = StarTopology(sim, num_hosts=8, link_bps=1 * GBPS,
                            rtt=100 * USEC,
                            queue_factory=pase_queue_factory(config))
    control_plane = PaseControlPlane(sim, topology, config)

    # Probe the shared destination's downlink.
    aggregator = topology.hosts[7]
    downlink = topology.host_downlink(aggregator)
    probe = TimeSeriesProbe(sim, period=50e-6)
    depth = probe.watch_queue_depth(downlink, "downlink depth")
    busy = probe.watch_busy(downlink, "downlink busy")
    probe.start()

    # Seven senders pile onto one aggregator with mixed sizes.
    sizes = [40, 500, 120, 800, 60, 300, 200]  # KB
    flows = []
    for i, size in enumerate(sizes):
        flow = Flow(flow_id=i + 1, src=topology.hosts[i].node_id,
                    dst=aggregator.node_id, size_bytes=size * KB,
                    start_time=i * 100e-6)
        PaseReceiver(sim, aggregator, flow)
        PaseSender(sim, topology.hosts[i], flow, control_plane).start()
        flows.append(flow)

    # Run just past the expected completion of the workload so the probe's
    # averages describe the busy period, not idle tail time.
    sim.run(until=0.02)
    probe.stop()
    sim.run(until=0.1)  # let any stragglers finish unprobed

    print("Flow outcomes (SRPT order should roughly track size):\n")
    print(f"{'flow':<6}{'size':<10}{'FCT':<12}{'queue changes':<16}")
    for flow in sorted(flows, key=lambda f: f.size_bytes):
        changes = sim.tracer.flow_timeline(flow.flow_id)
        print(f"{flow.flow_id:<6}{flow.size_bytes // 1000:>4} KB   "
              f"{flow.fct * 1e3:>7.3f} ms  {len(changes):<16}")

    slowest = max(flows, key=lambda f: f.fct)
    print(f"\nLife story of the slowest flow (#{slowest.flow_id}, "
          f"{slowest.size_bytes // 1000} KB):")
    for event in sim.tracer.flow_timeline(slowest.flow_id):
        if event.category == "queue-change":
            print(f"  t={event.time * 1e3:7.3f} ms  moved queue "
                  f"{event.detail('old')} -> {event.detail('new')}")
        else:
            print(f"  t={event.time * 1e3:7.3f} ms  {event.category}")

    print("\nBottleneck downlink during the run:")
    print(f"  peak queue depth: {depth.peak:.0f} packets")
    print(f"  mean queue depth: {depth.mean:.1f} packets")
    print(f"  busy fraction:    {busy.mean:.0%}")
    print("\nReading: the big flows wait in low-priority classes (their")
    print("queue changes show demotions as shorter flows arrive, then")
    print("promotions as the rack drains) while the link itself stays busy")
    print("— scheduling delay, not wasted capacity, explains their FCT.")


if __name__ == "__main__":
    main()
