#!/usr/bin/env python3
"""Quickstart: run PASE on a handful of flows, two ways.

Part 1 wires the pieces by hand — simulator, topology, control plane,
per-flow agents — which is what you would do to embed the library in your
own experiment.  Part 2 does the same thing with the one-call harness used
by the paper-reproduction benchmarks.

Run:  python examples/quickstart.py
"""

from repro.core import (
    PaseConfig,
    PaseControlPlane,
    PaseReceiver,
    PaseSender,
    pase_queue_factory,
)
from repro.harness import ExperimentSpec, intra_rack, run_experiment
from repro.sim import Simulator, StarTopology
from repro.transports import Flow
from repro.utils.units import GBPS, KB, USEC


def part1_manual() -> None:
    print("=" * 64)
    print("Part 1: three flows, one shared destination, wired by hand")
    print("=" * 64)

    config = PaseConfig()
    sim = Simulator()
    # A rack of six 1 Gbps hosts; every port gets PASE's 8-class
    # strict-priority queue bank.
    topology = StarTopology(sim, num_hosts=6, link_bps=1 * GBPS,
                            rtt=100 * USEC,
                            queue_factory=pase_queue_factory(config))
    control_plane = PaseControlPlane(sim, topology, config)

    # Three flows of very different sizes, all into host 5, all at t=0.
    # Arbitration should schedule them shortest-first.
    flows = []
    for i, size in enumerate([30 * KB, 150 * KB, 600 * KB]):
        flow = Flow(flow_id=i + 1,
                    src=topology.hosts[i].node_id,
                    dst=topology.hosts[5].node_id,
                    size_bytes=size, start_time=0.0)
        PaseReceiver(sim, topology.hosts[5], flow)
        PaseSender(sim, topology.hosts[i], flow, control_plane).start()
        flows.append(flow)

    sim.run(until=0.1)

    print(f"{'flow':<6}{'size':<10}{'FCT':<12}{'retransmits':<12}")
    for flow in flows:
        print(f"{flow.flow_id:<6}{flow.size_bytes // 1000:>3} KB    "
              f"{flow.fct * 1e3:>7.3f} ms  {flow.retransmissions:<12}")
    ordered = sorted(flows, key=lambda f: f.size_bytes)
    assert ordered[0].fct < ordered[1].fct < ordered[2].fct, \
        "shortest-flow-first ordering should hold"
    print("-> shortest-flow-first confirmed: smaller flows finished first\n")


def part2_harness() -> None:
    print("=" * 64)
    print("Part 2: the same idea with the experiment harness")
    print("=" * 64)

    scenario = intra_rack(num_hosts=10)
    for protocol in ("pase", "dctcp"):
        result = run_experiment(ExperimentSpec(protocol, scenario, load=0.6,
                                num_flows=100, seed=7))
        scenario = intra_rack(num_hosts=10)  # fresh scenario per run
        print(f"{protocol:>6}: AFCT = {result.afct * 1e3:6.2f} ms   "
              f"99th = {result.p99_fct * 1e3:6.2f} ms   "
              f"completed = {result.stats.completion_fraction:.0%}")
    print("-> PASE's arbitration + priority queues beat plain DCTCP")


if __name__ == "__main__":
    part1_manual()
    part2_harness()
