#!/usr/bin/env python3
"""Partition-aggregate incast: where line-rate-start transports bleed.

A search aggregator asks 16 workers for their shards; all 16 answer at
once.  pFabric's strategy — start at line rate, let shallow priority-drop
buffers sort it out — collides 16 line-rate senders at the aggregator's
1 Gbps downlink and drops a large fraction of everything sent (the paper's
Fig. 4).  PASE's arbitrators serialize the responses shortest-first before
the packets ever leave the workers, so the same workload completes with
near-zero loss and a much shorter tail (Fig. 10c).

Run:  python examples/incast_aggregation.py
"""

from repro.harness import ExperimentSpec, all_to_all_intra_rack, run_experiment

LOADS = (0.5, 0.8)


def main() -> None:
    print("Incast aggregation (20-host rack, fan-in 16, flows 2-198 KB)\n")
    print(f"{'load':<7}{'protocol':<10}{'AFCT':<12}{'99th pct':<12}"
          f"{'loss rate':<12}{'retransmits':<12}")
    print("-" * 65)
    for load in LOADS:
        for protocol in ("pase", "pfabric", "dctcp"):
            scenario = all_to_all_intra_rack(num_hosts=20, fanin=16)
            result = run_experiment(ExperimentSpec(protocol, scenario, load=load,
                                    num_flows=320, seed=5))
            retx = sum(f.retransmissions for f in result.flows)
            print(f"{load:<7.0%}{protocol:<10}"
                  f"{result.afct * 1e3:>7.2f} ms  "
                  f"{result.p99_fct * 1e3:>7.2f} ms  "
                  f"{result.loss_rate:>8.1%}   "
                  f"{retx:<12}")
        print()

    print("pFabric pays for seamless in-network preemption with heavy loss")
    print("under synchronized fan-in; DCTCP avoids loss with deep buffers")
    print("but cannot prioritize; PASE gets both: arbitration decides who")
    print("sends, priority queues enforce it, endpoints mop up the rest.")


if __name__ == "__main__":
    main()
