"""Engine micro-benchmarks: raw event loop and packet-path throughput.

These are classic pytest-benchmark measurements (many rounds) — they guard
against performance regressions in the simulator core that would make the
figure sweeps impractically slow.
"""

from repro.harness import ExperimentSpec, intra_rack, run_experiment
from repro.sim.engine import Simulator


def test_event_loop_throughput(benchmark):
    def spin():
        sim = Simulator()
        count = 20_000

        def tick(n):
            if n > 0:
                sim.schedule(1e-6, tick, n - 1)

        sim.schedule(0.0, tick, count)
        sim.run()
        return sim.events_processed

    events = benchmark(spin)
    assert events == 20_001


def test_event_loop_post_throughput(benchmark):
    """Same chain through the pooled fire-and-forget path — the API the
    packet datapath actually uses."""

    def spin():
        sim = Simulator()
        count = 20_000

        def tick(n):
            if n > 0:
                sim.post(1e-6, tick, n - 1)

        sim.post(0.0, tick, count)
        sim.run()
        return sim.events_processed

    events = benchmark(spin)
    assert events == 20_001


def test_packet_path_throughput(benchmark):
    """End-to-end packets/second through the full stack (one small
    experiment), reported as wall time per run."""

    def run():
        return run_experiment(ExperimentSpec(
            "dctcp", intra_rack(num_hosts=6), load=0.5,
            num_flows=20, seed=1))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.stats.completion_fraction == 1.0
