"""Ablation — the arbitration interval (DESIGN.md §7).

Sources re-arbitrate each flow periodically; the interval trades control
overhead against promotion latency.  One RTT (the default) should sit near
the knee: much longer intervals delay promotions (AFCT up), much shorter
ones multiply messages with little AFCT gain.
"""

from benchmarks.bench_common import emit, flows, run_once
from repro.core import PaseConfig
from repro.harness import ExperimentSpec, left_right, run_experiment
from repro.utils.units import USEC

LOAD = 0.7
INTERVALS = (150 * USEC, 300 * USEC, 600 * USEC, 1200 * USEC)


def run_figure():
    rows = {}
    for interval in INTERVALS:
        cfg = PaseConfig(arbitration_interval=interval)
        result = run_experiment(ExperimentSpec("pase", left_right(), LOAD,
                                num_flows=flows(250), seed=42,
                                pase_config=cfg))
        rows[interval] = result
    lines = ["Ablation: arbitration interval (left-right, 70% load)",
             "-" * 56,
             f"{'interval (us)':<16}{'AFCT (ms)':<12}{'ctrl msgs/s':<14}"]
    for interval, result in rows.items():
        lines.append(
            f"{interval * 1e6:<16.0f}{result.afct * 1e3:<12.3f}"
            f"{result.control_plane.messages_per_sec:<14.0f}")
    emit("ablation_arbitration_interval", "\n".join(lines))
    return rows


def test_ablation_arbitration_interval(benchmark):
    rows = run_once(benchmark, run_figure)
    msgs = {i: r.control_plane.messages_per_sec for i, r in rows.items()}
    afct = {i: r.afct for i, r in rows.items()}
    # Message rate scales roughly inversely with the interval...
    assert msgs[150 * USEC] > 2.5 * msgs[600 * USEC]
    assert msgs[300 * USEC] > 1.8 * msgs[1200 * USEC]
    # ...while AFCT is remarkably insensitive across an 8x interval range
    # (in-network prioritization covers promotion lag; fewer mid-flight
    # re-arbitrations also mean less queue churn).  The cheap long
    # interval is therefore safe — the measured design finding here.
    values = list(afct.values())
    assert max(values) < 1.15 * min(values)
