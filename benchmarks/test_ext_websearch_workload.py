"""Extension — the DCTCP web-search workload (heavy-tailed sizes).

The paper sweeps uniform flow sizes; production traffic is far more skewed.
Heavy tails are where size-based scheduling earns its keep: the many short
flows should cut through the few multi-megabyte elephants.  This benchmark
reruns the intra-rack comparison on the web-search distribution and also
checks the size-unaware "las" criterion, which must recover most of the
SRPT benefit without knowing flow sizes.
"""

from benchmarks.bench_common import emit, flows, run_once
from repro.core import PaseConfig
from repro.harness import ExperimentSpec, format_series_table, intra_rack, run_experiment
from repro.metrics import bucket_stats
from repro.utils.units import KB, MB
from repro.workloads import web_search_sizes

LOADS = (0.3, 0.6)


def scenario():
    return intra_rack(num_hosts=20, sizes=web_search_sizes(),
                      num_background_flows=0)


def run_figure():
    results = {}
    for label, protocol, cfg in (
        ("pase", "pase", None),
        ("pase-las", "pase", PaseConfig(criterion="las")),
        ("dctcp", "dctcp", None),
    ):
        results[label] = {
            load: run_experiment(ExperimentSpec(protocol, scenario(), load,
                                 num_flows=flows(250), seed=42,
                                 pase_config=cfg, horizon=5.0))
            for load in LOADS
        }
    afct = {label: {l: r.afct * 1e3 for l, r in by_load.items()}
            for label, by_load in results.items()}
    text = format_series_table(
        "Extension: AFCT (ms) on the web-search size distribution",
        LOADS, afct, unit="ms")
    # Short-flow view: mean FCT of the sub-100KB bucket at 60% load.
    text += f"\n\n{'variant':<12}{'<=100KB mean FCT':<20}{'>1MB mean FCT':<18}"
    shorts = {}
    for label, by_load in results.items():
        buckets = bucket_stats(by_load[0.6].flows, [100 * KB, 1 * MB],
                               1e9, 300e-6)
        shorts[label] = buckets[0].mean_fct
        text += (f"\n{label:<12}{buckets[0].mean_fct * 1e3:<20.3f}"
                 f"{buckets[2].mean_fct * 1e3:<18.3f}")
    emit("ext_websearch_workload", text)
    return afct, shorts


def test_ext_websearch_workload(benchmark):
    afct, shorts = run_once(benchmark, run_figure)
    # Size-aware PASE dominates DCTCP on the heavy-tailed mix.
    for load in LOADS:
        assert afct["pase"][load] < afct["dctcp"][load]
    # Short flows: both PASE variants beat DCTCP decisively.
    assert shorts["pase"] < shorts["dctcp"]
    assert shorts["pase-las"] < shorts["dctcp"]
    # And LAS recovers most of the short-flow benefit without size info.
    assert shorts["pase-las"] < 3 * shorts["pase"]
