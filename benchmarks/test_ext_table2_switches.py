"""Extension — Table 2: PASE on each commodity ToR switch profile.

The paper's deployability argument in one table: run the same intra-rack
workload with each of Table 2's switch capabilities (queue count, ECN) and
confirm PASE degrades gracefully — including on the ECN-less Juniper
EX3300, where intermediate-queue flows lose their self-adjusting signal
and fall back to loss-based control.
"""

from benchmarks.bench_common import emit, flows, run_once
from repro.harness import ExperimentSpec, format_series_table, intra_rack, run_experiment
from repro.sim.switch_models import TABLE2, pase_config_for

LOADS = (0.5, 0.8)


def run_figure():
    results = {}
    for name, model in sorted(TABLE2.items()):
        cfg = pase_config_for(model)
        label = f"{name}({model.num_queues}q{'' if model.ecn else ',noECN'})"
        results[label] = {
            load: run_experiment(ExperimentSpec("pase", intra_rack(num_hosts=20), load,
                                 num_flows=flows(200), seed=42,
                                 pase_config=cfg))
            for load in LOADS
        }
    series = {label: {l: r.afct * 1e3 for l, r in by_load.items()}
              for label, by_load in results.items()}
    emit("ext_table2_switches", format_series_table(
        "Extension (Table 2): PASE AFCT (ms) per commodity switch profile",
        LOADS, series, unit="ms", precision=2))
    return results


def test_ext_table2_switches(benchmark):
    results = run_once(benchmark, run_figure)
    afcts = {label: by_load[0.8].afct for label, by_load in results.items()}
    best, worst = min(afcts.values()), max(afcts.values())
    # PASE works on every profile (everything completes)...
    for by_load in results.values():
        for r in by_load.values():
            assert r.stats.completion_fraction == 1.0
    # ...and even the weakest profile stays within 2x of the best.
    assert worst < 2.0 * best
