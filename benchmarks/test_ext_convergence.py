"""Extension — convergence time: how fast does a flow reach line rate?

§2.2's "arbitration helping self-adjusting endpoints": instead of blindly
probing (slow start), a PASE flow bootstraps from the arbitrator's
reference rate.  We start one lone flow per protocol on an idle path and
measure, from 50 µs-windowed link utilization, how long it takes the
bottleneck to exceed 90% — the convergence time the paper credits
arbitration/explicit-rate protocols with minimizing.
"""

from benchmarks.bench_common import emit, run_once
from repro.harness.protocols import make_binding
from repro.harness.scenarios import intra_rack
from repro.metrics import TimeSeriesProbe
from repro.sim import Simulator
from repro.transports import Flow
from repro.utils.units import KB

PROTOCOLS = ("pase", "pfabric", "pdq", "d3", "dctcp", "l2dct", "tcp")


def convergence_time(protocol: str) -> float:
    scn = intra_rack(num_hosts=4, num_background_flows=0)
    binding = make_binding(protocol, scn)
    sim = Simulator()
    topo = scn.build_topology(sim, binding.queue_factory())
    binding.setup_network(sim, topo)
    flow = Flow(flow_id=1, src=topo.hosts[0].node_id,
                dst=topo.hosts[1].node_id, size_bytes=2_000 * KB,
                start_time=0.0)
    downlink = topo.host_downlink(topo.hosts[1])
    probe = TimeSeriesProbe(sim, period=50e-6)
    busy = probe.watch_busy(downlink)
    probe.start()
    binding.make_receiver(sim, topo.hosts[1], flow, None)
    binding.make_sender(sim, topo.hosts[0], flow).start()
    sim.run(until=0.05)
    # First time a 10-sample (500 us) sliding window is >= 90% busy.
    window = 10
    vals = busy.values
    for i in range(len(vals) - window):
        if sum(vals[i:i + window]) >= 0.9 * window:
            return busy.times[i + window]
    return float("inf")


def run_figure():
    times = {p: convergence_time(p) for p in PROTOCOLS}
    lines = ["Extension: time for a lone 2 MB flow to reach 90% line rate",
             "-" * 60,
             f"{'protocol':<12}{'convergence (us)':<20}"]
    for p, t in sorted(times.items(), key=lambda kv: kv[1]):
        label = f"{t * 1e6:.0f}" if t != float("inf") else "never"
        lines.append(f"{p:<12}{label:<20}")
    emit("ext_convergence", "\n".join(lines))
    return times


def test_ext_convergence(benchmark):
    times = run_once(benchmark, run_figure)
    # Everyone eventually converges on an idle path.
    assert all(t != float("inf") for t in times.values())
    # Reference-rate/explicit-rate protocols converge well before classic
    # slow-start TCP...
    assert times["pase"] < times["tcp"]
    assert times["pfabric"] < times["tcp"]
    # ...and PASE is in the fast group (within ~3 RTTs of pFabric's
    # line-rate start).
    assert times["pase"] <= times["pfabric"] + 1e-3
