"""Fabric datapath throughput: packets/second through a loaded switch.

No transports, no control plane — raw :class:`~repro.sim.packet.Packet`
objects are offered to the access links of a star topology faster than the
core can drain them, so the switch's egress queue stays loaded and every
packet pays the full serialize → propagate → forward → serialize →
deliver path.  This isolates the link/queue/node hot path that the engine
optimizations target.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketKind
from repro.sim.topology import StarTopology
from repro.utils.units import GBPS, USEC

from benchmarks.perf import best_of


def switch_packets_per_sec(num_packets: int = 30_000,
                           num_senders: int = 8) -> float:
    """Fan ``num_senders`` access links into one receiver's downlink.

    Senders interleave their injections at exactly the downlink's line
    rate, so the shared egress stays 100% utilized for the whole run
    without overflowing its drop-tail queue — every offered packet pays
    the full forwarding path and is delivered.  Throughput is delivered
    packets per wall-clock second.
    """
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=num_senders + 1,
                        link_bps=10 * GBPS, rtt=40 * USEC)
    receiver = topo.hosts[-1]
    senders = topo.hosts[:-1]

    pkt_time = Packet(PacketKind.CONTROL, 0, 0, 0).size * 8 / (10 * GBPS)
    per_sender = num_packets // num_senders

    def make_injector(host, flow_id):
        remaining = iter(range(per_sender))

        def inject():
            n = next(remaining, None)
            if n is None:
                return
            host.send(Packet(PacketKind.CONTROL, host.node_id,
                             receiver.node_id, flow_id, seq=n))
            sim.post(num_senders * pkt_time, inject)

        return inject

    for i, host in enumerate(senders):
        sim.post_at(i * pkt_time, make_injector(host, i + 1))
    # CONTROL packets terminate at the host without needing a flow agent;
    # a no-op handler keeps them off the unroutable counter.
    receiver.control_handler = lambda pkt: None

    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert receiver.packets_delivered == per_sender * len(senders)
    return receiver.packets_delivered / elapsed


def run(scale: str = "full", repeats: int = 3) -> Dict[str, float]:
    n = 30_000 if scale == "full" else 6_000
    return {
        "incast_packets_per_sec": best_of(
            lambda: switch_packets_per_sec(n), repeats),
    }
