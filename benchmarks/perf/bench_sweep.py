"""Full-stack wall-clock: a canonical ``left-right`` PASE sweep.

This is the benchmark closest to what a figure reproduction actually
costs: real transports, arbitration control plane, and the
:mod:`repro.runner` execution machinery (descriptors + JSONL ledger), so
it integrates every layer the micro-benchmarks isolate.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Dict

from repro.runner import (RunDescriptor, RunnerConfig, ScenarioSpec,
                          run_sweep)

LOADS = (0.2, 0.5, 0.8)


def sweep_wallclock(num_flows: int = 150, hosts_per_rack: int = 4,
                    seed: int = 1) -> Dict[str, float]:
    """Run the sweep serially (uncached, so the number is honest) and
    return wall-clock plus per-point metadata.  The runner's JSONL ledger
    is exercised on every run; it lands in a temp dir since the durable
    report is BENCH_sim.json."""
    descriptors = [
        RunDescriptor(
            protocol="pase",
            scenario=ScenarioSpec("left-right",
                                  {"hosts_per_rack": hosts_per_rack}),
            load=load, seed=seed, num_flows=num_flows,
        )
        for load in LOADS
    ]
    with tempfile.TemporaryDirectory(prefix="pase-bench-") as tmp:
        config = RunnerConfig(jobs=1, use_cache=False, on_error="raise",
                              jsonl_path=Path(tmp) / "sweep.jsonl")
        t0 = time.perf_counter()
        outcome = run_sweep(descriptors, config)
        wallclock = time.perf_counter() - t0
    assert outcome.ok
    total_events = sum(r.result.events for r in outcome.records)
    return {
        "wallclock_sec": wallclock,
        "points": float(len(descriptors)),
        "num_flows": float(num_flows),
        "sim_events_total": float(total_events),
        "sim_events_per_sec": total_events / wallclock,
    }


def run(scale: str = "full", repeats: int = 1) -> Dict[str, float]:
    num_flows = 150 if scale == "full" else 40
    hosts = 4 if scale == "full" else 3
    best = None
    for _ in range(repeats):
        m = sweep_wallclock(num_flows=num_flows, hosts_per_rack=hosts)
        if best is None or m["wallclock_sec"] < best["wallclock_sec"]:
            best = m
    return best
