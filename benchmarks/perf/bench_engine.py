"""Bare event-loop throughput: events/second with no network machinery.

Two workload shapes, each through both scheduling APIs:

* ``spin`` — one event in flight at a time (heap depth 1): measures
  per-event fixed cost with no sift work.
* ``churn`` — a steady-state heap of ~2000 pending timers with randomized
  deadlines: adds the ``O(log n)`` heap maintenance that dominates
  congested-fabric runs.

``schedule()`` returns a cancellable handle (one handle + one entry
allocation per event); ``post()`` is the fire-and-forget fast path that
recycles heap entries through the simulator's free list.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.sim.engine import Simulator

from benchmarks.perf import best_of


def spin_events_per_sec(count: int = 200_000, api: str = "post") -> float:
    """A single self-rescheduling tick chain, ``count`` events long."""
    sim = Simulator()
    emit = getattr(sim, api)

    def tick(n: int) -> None:
        if n > 0:
            emit(1e-6, tick, n - 1)

    emit(0.0, tick, count)
    t0 = time.perf_counter()
    processed = sim.run()
    return processed / (time.perf_counter() - t0)


def churn_events_per_sec(count: int = 50_000, width: int = 2_000,
                         api: str = "post") -> float:
    """``width`` self-rescheduling callbacks with seeded-random deadlines
    (steady heap depth = ``width``), capped at ``count`` fired events.
    This is byte-for-byte the workload the pre-optimization baseline in
    :data:`benchmarks.perf.BASELINE_EVENTS_PER_SEC` was measured on."""
    import random

    sim = Simulator()
    emit = getattr(sim, api)
    rng = random.Random(7)

    def cb() -> None:
        emit(rng.random() * 1e-3, cb)

    for _ in range(width):
        emit(rng.random() * 1e-3, cb)
    t0 = time.perf_counter()
    processed = sim.run(max_events=count)
    return processed / (time.perf_counter() - t0)


def run(scale: str = "full", repeats: int = 3) -> Dict[str, float]:
    """All engine measurements as a flat ``{metric: events_per_sec}``."""
    n_spin = 200_000 if scale == "full" else 40_000
    n_churn = 50_000 if scale == "full" else 15_000
    return {
        "spin_post_events_per_sec": best_of(
            lambda: spin_events_per_sec(n_spin, api="post"), repeats),
        "spin_schedule_events_per_sec": best_of(
            lambda: spin_events_per_sec(n_spin, api="schedule"), repeats),
        "churn_post_events_per_sec": best_of(
            lambda: churn_events_per_sec(n_churn, api="post"), repeats),
        "churn_schedule_events_per_sec": best_of(
            lambda: churn_events_per_sec(n_churn, api="schedule"), repeats),
    }
