"""Run the full perf suite and write ``BENCH_sim.json`` at the repo root.

Usage::

    PYTHONPATH=src python -m benchmarks.perf               # full scale
    PYTHONPATH=src python -m benchmarks.perf --scale smoke # CI-sized
    PYTHONPATH=src python -m benchmarks.perf --output /tmp/bench.json

The report embeds the pre-optimization baseline so every BENCH_sim.json
carries its own point of comparison (see EXPERIMENTS.md for the schema).
Exit status is non-zero when engine throughput fails the checked-in floor
(``benchmarks/perf/floor.json``) by more than the allowed regression — CI
uses this as its pass/fail signal.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

from benchmarks.perf import (BASELINE_ARBITRATIONS_PER_SEC,
                             BASELINE_EVENTS_PER_SEC, bench_arbitration,
                             bench_engine, bench_sweep, bench_switch)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FLOOR_PATH = Path(__file__).resolve().parent / "floor.json"
#: CI fails when measured engine throughput drops below floor * (1 - this).
ALLOWED_REGRESSION = 0.30


def build_report(scale: str) -> dict:
    engine = bench_engine.run(scale=scale)
    arbitration = bench_arbitration.run(scale=scale)
    switch = bench_switch.run(scale=scale)
    sweep = bench_sweep.run(scale=scale)
    speedup = {
        "spin": engine["spin_post_events_per_sec"]
                / BASELINE_EVENTS_PER_SEC["spin"],
        "churn": engine["churn_post_events_per_sec"]
                 / BASELINE_EVENTS_PER_SEC["churn"],
    }
    arb_speedup = {
        key: arbitration[f"{key}_arbitrations_per_sec"] / base
        if f"{key}_arbitrations_per_sec" in arbitration
        else arbitration[f"{key}_calls_per_sec"] / base
        for key, base in BASELINE_ARBITRATIONS_PER_SEC.items()
    }
    return {
        "schema": "bench_sim/v2",
        "suite": "benchmarks/perf",
        "scale": scale,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "baseline": {
            "engine_events_per_sec": dict(BASELINE_EVENTS_PER_SEC),
            "arbitrations_per_sec": dict(BASELINE_ARBITRATIONS_PER_SEC),
            "note": "engine: pre-optimization engine at the seed commit; "
                    "arbitration: O(F log F) sort-per-decide arbitrator at "
                    "the PR 4 commit, same workloads",
        },
        "results": {
            "engine": engine,
            "arbitration": arbitration,
            "switch": switch,
            "sweep": sweep,
        },
        "speedup_vs_baseline": speedup,
        "arbitration_speedup_vs_baseline": arb_speedup,
    }


def check_floor(report: dict) -> list:
    """Compare measured rates against the checked-in floors; return a list
    of human-readable violations (empty = pass).  Every top-level section
    of floor.json maps onto the same-named results block."""
    floor = json.loads(FLOOR_PATH.read_text())
    failures = []
    for section, metrics in floor.items():
        if not isinstance(metrics, dict):
            continue  # prose keys ("note")
        results = report["results"].get(section, {})
        for metric, floor_value in metrics.items():
            measured = results.get(metric)
            threshold = floor_value * (1.0 - ALLOWED_REGRESSION)
            if measured is None:
                failures.append(f"{section}.{metric}: missing from report")
            elif measured < threshold:
                failures.append(
                    f"{section}.{metric}: {measured:,.0f}/sec is below "
                    f"{threshold:,.0f} (floor {floor_value:,.0f} - "
                    f"{ALLOWED_REGRESSION:.0%})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="benchmarks.perf")
    parser.add_argument("--scale", choices=("full", "smoke"), default="full")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_sim.json")
    parser.add_argument("--no-floor-check", action="store_true",
                        help="write the report but skip the regression gate")
    args = parser.parse_args(argv)

    report = build_report(args.scale)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    engine = report["results"]["engine"]
    print(f"engine  spin(post):      {engine['spin_post_events_per_sec']:>12,.0f} events/sec "
          f"({report['speedup_vs_baseline']['spin']:.2f}x baseline)")
    print(f"engine  spin(schedule):  {engine['spin_schedule_events_per_sec']:>12,.0f} events/sec")
    print(f"engine  churn(post):     {engine['churn_post_events_per_sec']:>12,.0f} events/sec "
          f"({report['speedup_vs_baseline']['churn']:.2f}x baseline)")
    print(f"engine  churn(schedule): {engine['churn_schedule_events_per_sec']:>12,.0f} events/sec")
    arb = report["results"]["arbitration"]
    arb_speed = report["arbitration_speedup_vs_baseline"]
    for n in (100, 1_000, 10_000):
        print(f"arb     churn F={n:<6}   "
              f"{arb[f'churn_{n}_arbitrations_per_sec']:>12,.0f} arbitrations/sec "
              f"({arb_speed[f'churn_{n}']:.1f}x baseline)")
    print(f"arb     epoch F=1000:    "
          f"{arb['epoch_1000_decisions_per_sec']:>12,.0f} decisions/sec")
    switch = report["results"]["switch"]
    print(f"switch  incast:          {switch['incast_packets_per_sec']:>12,.0f} packets/sec")
    sweep = report["results"]["sweep"]
    print(f"sweep   left-right pase: {sweep['wallclock_sec']:>12.2f} s wall "
          f"({sweep['sim_events_per_sec']:,.0f} sim events/sec)")
    print(f"report: {args.output}")

    if args.no_floor_check:
        return 0
    failures = check_floor(report)
    for failure in failures:
        print(f"FLOOR REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
