"""Control-plane throughput: arbitrations/second on one link arbitrator.

PR 3 made the event engine fast enough that PASE's own control plane became
the hot spot, so this benchmark isolates it.  Four single-link workloads
over table sizes spanning 10²–10⁴ flows, plus one full-stack
control-plane-heavy sweep point:

* ``churn`` — the steady-state pattern: every ``arbitrate()`` call shrinks
  one flow's criterion (remaining size) round-robin, so each call re-keys
  the table and recomputes that flow's (PrioQue, Rref).  This is the
  workload the pre-PR baseline numbers were measured on.
* ``parked`` — re-registration with *unchanged* criterion/demand (a flow
  refreshing its soft state between sends): no table mutation, pure decide.
* ``epoch`` — one mutation followed by :meth:`decide_all`: the epoch-batch
  pattern, reported as flows-decided/second.
* ``aggregate`` — ``aggregate_demand(top_queues=1)`` on a static table,
  the delegation rebalancer's per-child demand read.
* ``cp_heavy`` — a full ``left-right`` PASE run at high load: every layer,
  but sized so arbitration dominates (many flows, inter-rack paths through
  the virtual arbitrators).

The flow population is deterministic (no RNG): sizes walk a fixed stride
pattern and demands derive from them, so runs are comparable across
machines and commits.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.core.arbitration import LinkArbitrator

from benchmarks.perf import best_of

GBPS = 1e9
#: Table sizes for the 10²–10⁴ flows-per-link scan.
TABLE_SIZES = (100, 1_000, 10_000)


def _make_arbitrator() -> LinkArbitrator:
    # A 10 Gbps fabric link with 8 data queues and a 40 Mbps base rate —
    # the same shape PaseControlPlane builds for a left-right core link.
    return LinkArbitrator("bench", 10 * GBPS, 8, 40e6)


def _population(n_flows: int) -> Tuple[List[float], List[float]]:
    """Deterministic (criterion, demand) pairs: sizes stride over
    10 KB–1 MB, demand is the size over one arbitration interval capped at
    NIC rate."""
    criteria = [float(10_000 + (i * 7919) % 990_000) for i in range(n_flows)]
    demands = [min(1 * GBPS, c * 8 / 300e-6) for c in criteria]
    return criteria, demands


def churn_arbitrations_per_sec(n_flows: int, ops: int) -> float:
    arb = _make_arbitrator()
    criteria, demands = _population(n_flows)
    for i in range(n_flows):
        arb.arbitrate(i, criteria[i], demands[i], 0.0)
    t0 = time.perf_counter()
    for n in range(ops):
        i = n % n_flows
        criteria[i] *= 0.97
        arb.arbitrate(i, criteria[i], demands[i], n * 1e-6)
    return ops / (time.perf_counter() - t0)


def parked_arbitrations_per_sec(n_flows: int, ops: int) -> float:
    arb = _make_arbitrator()
    criteria, demands = _population(n_flows)
    for i in range(n_flows):
        arb.arbitrate(i, criteria[i], demands[i], 0.0)
    t0 = time.perf_counter()
    for n in range(ops):
        i = n % n_flows
        arb.arbitrate(i, criteria[i], demands[i], n * 1e-6)
    return ops / (time.perf_counter() - t0)


def epoch_decisions_per_sec(n_flows: int, epochs: int) -> float:
    """One mutation + one ``decide_all()`` per epoch; rate counts every
    per-flow decision produced."""
    arb = _make_arbitrator()
    criteria, demands = _population(n_flows)
    for i in range(n_flows):
        arb.arbitrate(i, criteria[i], demands[i], 0.0)
    t0 = time.perf_counter()
    for n in range(epochs):
        i = n % n_flows
        criteria[i] *= 0.97
        arb.arbitrate(i, criteria[i], demands[i], n * 1e-6)
        arb.decide_all()
    return epochs * n_flows / (time.perf_counter() - t0)


def aggregate_calls_per_sec(n_flows: int, calls: int) -> float:
    arb = _make_arbitrator()
    criteria, demands = _population(n_flows)
    for i in range(n_flows):
        arb.arbitrate(i, criteria[i], demands[i], 0.0)
    t0 = time.perf_counter()
    for _ in range(calls):
        arb.aggregate_demand(top_queues=1)
    return calls / (time.perf_counter() - t0)


def cp_heavy_point(num_flows: int, hosts_per_rack: int,
                   seed: int = 5) -> Dict[str, float]:
    """A control-plane-heavy full-stack point: high-load left-right PASE,
    where every inter-rack flow consults host, ToR, and (delegated) core
    arbitrators each interval."""
    from repro.harness import ExperimentSpec, left_right, run_experiment

    spec = ExperimentSpec("pase", left_right(hosts_per_rack=hosts_per_rack),
                          0.8, num_flows=num_flows, seed=seed)
    t0 = time.perf_counter()
    result = run_experiment(spec)
    wallclock = time.perf_counter() - t0
    return {
        "cp_heavy_wallclock_sec": wallclock,
        "cp_heavy_sim_events_per_sec": result.events / wallclock,
        "cp_heavy_control_messages": float(result.control_plane.messages),
    }


def run(scale: str = "full", repeats: int = 3) -> Dict[str, float]:
    """All arbitration measurements as a flat ``{metric: rate}`` dict."""
    if scale == "full":
        churn_ops = {100: 200_000, 1_000: 200_000, 10_000: 100_000}
        parked_ops, epochs, agg_calls = 200_000, 2_000, 20_000
        cp_flows, cp_hosts = 150, 4
    else:
        churn_ops = {100: 40_000, 1_000: 40_000, 10_000: 20_000}
        parked_ops, epochs, agg_calls = 40_000, 400, 4_000
        cp_flows, cp_hosts = 40, 3
    report: Dict[str, float] = {}
    for n in TABLE_SIZES:
        report[f"churn_{n}_arbitrations_per_sec"] = best_of(
            lambda n=n: churn_arbitrations_per_sec(n, churn_ops[n]), repeats)
    report["parked_1000_arbitrations_per_sec"] = best_of(
        lambda: parked_arbitrations_per_sec(1_000, parked_ops), repeats)
    report["epoch_1000_decisions_per_sec"] = best_of(
        lambda: epoch_decisions_per_sec(1_000, epochs), repeats)
    report["aggregate_top1_1000_calls_per_sec"] = best_of(
        lambda: aggregate_calls_per_sec(1_000, agg_calls), repeats)
    report.update(cp_heavy_point(cp_flows, cp_hosts))
    return report
