"""Performance microbenchmark suite for the simulation core.

Four layers, each isolating one slice of the stack:

* :mod:`benchmarks.perf.bench_engine` — the bare event loop
  (events/second, no network machinery at all),
* :mod:`benchmarks.perf.bench_arbitration` — the PASE control plane
  (arbitrations/second on one link arbitrator at 10²–10⁴ flows, plus a
  control-plane-heavy full-stack point),
* :mod:`benchmarks.perf.bench_switch` — the fabric datapath
  (packets/second through a loaded switch, no transports),
* :mod:`benchmarks.perf.bench_sweep` — a canonical ``left-right`` PASE
  sweep through :mod:`repro.runner` (wall-clock, full stack, with the
  runner's JSONL ledger).

``python -m benchmarks.perf`` runs all four and writes ``BENCH_sim.json``
at the repository root; see EXPERIMENTS.md for the schema (bench_sim/v2).
"""

from __future__ import annotations

import time
from typing import Callable, Dict


def best_of(fn: Callable[[], float], repeats: int = 3) -> float:
    """Run a throughput measurement ``repeats`` times, keep the best.

    Microbenchmarks on shared machines are noisy in one direction only
    (interference slows them down), so max is the low-variance estimator.
    """
    return max(fn() for _ in range(repeats))


def timed(fn: Callable[[], int]) -> float:
    """Call ``fn`` (which returns an operation count) and return ops/sec."""
    t0 = time.perf_counter()
    ops = fn()
    return ops / (time.perf_counter() - t0)


#: Pre-optimization engine throughput, measured on this suite's own spin /
#: churn workloads at the seed commit (before list-entry heap records,
#: pooled ``post()`` entries, and the tightened run loop).  BENCH_sim.json
#: embeds these so every report carries its own point of comparison.
BASELINE_EVENTS_PER_SEC: Dict[str, float] = {
    "spin": 425_380.0,
    "churn": 224_787.0,
}

#: Pre-fast-path control-plane throughput, measured on the
#: :mod:`benchmarks.perf.bench_arbitration` workloads at the PR 4 commit
#: (O(F log F) sort-per-``_decide``, count-returning ``expire``), same
#: machine discipline as the engine baselines.  Keys match the metric names
#: in the arbitration results block minus the rate suffix.
BASELINE_ARBITRATIONS_PER_SEC: Dict[str, float] = {
    "churn_100": 47_235.0,
    "churn_1000": 7_409.0,
    "churn_10000": 783.0,
    "parked_1000": 8_249.0,
    "aggregate_top1_1000": 6_408.0,
}
