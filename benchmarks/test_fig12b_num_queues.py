"""Figure 12b — PASE with a varying number of switch priority queues.

Paper: 4 queues already capture most of the benefit; going beyond yields
marginal AFCT improvement — the evidence that PASE works on commodity
switches (Table 2: 3-10 queues per port).
"""

from benchmarks.bench_common import emit, flows, run_once
from repro.core import PaseConfig
from repro.harness import ExperimentSpec, format_series_table, left_right, run_experiment

LOADS = (0.5, 0.7, 0.9)
QUEUE_COUNTS = (3, 4, 6, 8)


def run_figure():
    results = {}
    for num_queues in QUEUE_COUNTS:
        cfg = PaseConfig(num_queues=num_queues)
        results[f"{num_queues}q"] = {
            load: run_experiment(ExperimentSpec("pase", left_right(), load,
                                 num_flows=flows(250), seed=42,
                                 pase_config=cfg))
            for load in LOADS
        }
    series = {name: {load: r.afct * 1e3 for load, r in by_load.items()}
              for name, by_load in results.items()}
    emit("fig12b_num_queues", format_series_table(
        "Figure 12b: AFCT (ms) vs number of priority queues — left-right",
        LOADS, series, unit="ms"))
    return series


def test_fig12b_num_queues(benchmark):
    series = run_once(benchmark, run_figure)
    for load in LOADS:
        # Monotone: more priority classes never hurt.
        assert series["8q"][load] <= 1.1 * series["6q"][load]
        assert series["6q"][load] <= 1.1 * series["4q"][load]
        assert series["4q"][load] <= 1.1 * series["3q"][load]
        # 4 queues already capture most of the 3q -> 8q improvement
        # (the paper's deployability argument).
        gain_3_to_8 = series["3q"][load] - series["8q"][load]
        gain_3_to_4 = series["3q"][load] - series["4q"][load]
        if gain_3_to_8 > 0.2:  # meaningful gap only
            assert gain_3_to_4 >= 0.5 * gain_3_to_8
    # Beyond 6 queues the gain is marginal.
    assert series["8q"][0.9] > 0.85 * series["6q"][0.9]
