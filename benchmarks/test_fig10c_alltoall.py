"""Figure 10c — AFCT vs load, all-to-all intra-rack: PASE vs pFabric.

Paper: under the search-style worker/aggregator incast, pFabric's line-rate
collisions on host-ToR downlinks waste capacity other flows could have
used; PASE wins at every load, by up to 85% at the highest loads.  The
paper annotates each load with the percent improvement — reproduced here.
"""

from benchmarks.bench_common import emit, run_once, sweep
from repro.harness import (
    format_series_table,
    improvement_row,
    all_to_all_intra_rack,
    series_from_results,
)

LOADS = (0.1, 0.3, 0.5, 0.7, 0.8, 0.9)


def run_figure():
    results = sweep(
        ("pase", "pfabric"),
        lambda: all_to_all_intra_rack(num_hosts=20, fanin=16),
        loads=LOADS,
        num_flows=320,
    )
    series = series_from_results(results, "afct", scale=1e3)
    table = format_series_table(
        "Figure 10c: AFCT (ms) — all-to-all incast intra-rack",
        LOADS, series, unit="ms")
    improvements = improvement_row(LOADS, results["pfabric"], results["pase"])
    table += "\nPASE improvement over pFabric (%): " + \
        "  ".join(f"{load*100:.0f}%:{imp:+.1f}" for load, imp in zip(LOADS, improvements))
    emit("fig10c_alltoall", table)
    return results, improvements


def test_fig10c_alltoall(benchmark):
    results, improvements = run_once(benchmark, run_figure)
    # PASE wins at medium-to-high loads where incast losses bite pFabric.
    by_load = dict(zip(LOADS, improvements))
    assert by_load[0.7] > 0
    assert by_load[0.9] > 0
    # Improvement grows toward high load.
    assert by_load[0.9] >= by_load[0.3]
    # pFabric pays with double-digit loss; PASE stays clean.
    assert results["pfabric"][0.9].loss_rate > 0.10
    assert results["pase"][0.9].loss_rate < 0.01
