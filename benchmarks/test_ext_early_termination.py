"""Extension — PDQ-style Early Termination applied to PASE's EDF mode.

The paper adopts PDQ's arbitration but not its Early Termination; §3.1.1
notes the criterion is pluggable.  This benchmark measures what terminating
deadline-infeasible flows buys on the deadline workload: at high load many
flows provably cannot make their deadlines, and every packet they send
steals capacity from flows that still can.
"""

from benchmarks.bench_common import emit, flows, run_once
from repro.core import PaseConfig
from repro.harness import ExperimentSpec, format_series_table, intra_rack, run_experiment

LOADS = (0.5, 0.7, 0.9)


def run_figure():
    results = {}
    for label, et in (("pase", False), ("pase+ET", True)):
        cfg = PaseConfig(criterion="deadline", early_termination=et)
        results[label] = {
            load: run_experiment(ExperimentSpec(
                "pase", intra_rack(num_hosts=20, with_deadlines=True), load,
                num_flows=flows(200), seed=42, pase_config=cfg))
            for load in LOADS
        }
    series = {name: {l: r.application_throughput for l, r in by_load.items()}
              for name, by_load in results.items()}
    text = format_series_table(
        "Extension: deadline throughput with/without Early Termination",
        LOADS, series, precision=3)
    terminated = {l: sum(1 for f in results["pase+ET"][l].flows if f.terminated)
                  for l in LOADS}
    text += "\nterminated flows (pase+ET): " + "  ".join(
        f"{l*100:.0f}%:{n}" for l, n in terminated.items())
    emit("ext_early_termination", text)
    return series, terminated


def test_ext_early_termination(benchmark):
    series, terminated = run_once(benchmark, run_figure)
    # ET only fires when flows are actually infeasible (high load).
    assert terminated[0.9] > 0
    # And never meaningfully hurts the fraction of deadlines met.
    for load in LOADS:
        assert series["pase+ET"][load] >= series["pase"][load] - 0.05
