"""Figure 13b — the (simulated) testbed: PASE vs DCTCP.

Paper §4.4: a single rack of 10 nodes (9 clients, 1 server), 1 Gbps links,
250 us RTT, 100-packet queues, K = 20, 8 priority queues, flows
U[100 KB, 500 KB], one long background flow.  PASE achieves ~50-60% lower
AFCT than DCTCP across loads.  We replace the Linux hosts with the
simulator (see DESIGN.md), keeping every testbed parameter.
"""

from benchmarks.bench_common import emit, flows, run_once
from repro.core import PaseConfig
from repro.harness import ExperimentSpec, format_series_table, run_experiment
from repro.harness import testbed as scn_testbed
from repro.harness.protocols import DctcpBinding
from repro.sim.queues import REDQueue

LOADS = (0.1, 0.3, 0.5, 0.7, 0.9)

#: Testbed switch settings: 100-packet queues, K = 20.
PASE_CFG = PaseConfig(queue_capacity_pkts=100, mark_threshold_pkts=20)


class DctcpTestbedBinding(DctcpBinding):
    """DCTCP with the testbed's queue geometry."""

    def queue_factory(self):
        return lambda: REDQueue(capacity_pkts=100, mark_threshold_pkts=20)


def run_figure():
    results = {"pase": {}, "dctcp": {}}
    for load in LOADS:
        results["pase"][load] = run_experiment(ExperimentSpec(
            "pase", scn_testbed(), load, num_flows=flows(200), seed=42,
            pase_config=PASE_CFG))
        scn = scn_testbed()
        results["dctcp"][load] = run_experiment(ExperimentSpec(
            "dctcp", scn, load, num_flows=flows(200), seed=42,
            binding=DctcpTestbedBinding(scn)))
    series = {name: {load: r.afct * 1e3 for load, r in by_load.items()}
              for name, by_load in results.items()}
    emit("fig13b_testbed", format_series_table(
        "Figure 13b: AFCT (ms) — simulated testbed (9 clients -> 1 server)",
        LOADS, series, unit="ms"))
    return series


def test_fig13b_testbed(benchmark):
    series = run_once(benchmark, run_figure)
    # PASE clearly below DCTCP at every load (paper: 50-60% lower).
    for load in LOADS:
        assert series["pase"][load] < series["dctcp"][load]
    mid_improvement = 1 - series["pase"][0.5] / series["dctcp"][0.5]
    assert mid_improvement > 0.3
