"""Figure 10a — 99th-percentile FCT vs load: PASE vs pFabric (left-right).

Paper: pFabric's tail is excellent up to ~50% load; beyond 60% its
persistent losses at the oversubscribed core inflate the 99th percentile
and PASE wins (by >85% at 90% load in the paper).
"""

from benchmarks.bench_common import PAPER_LOADS, emit, run_once, sweep
from repro.harness import format_series_table, left_right, series_from_results


def run_figure():
    results = sweep(
        ("pase", "pfabric"),
        lambda: left_right(),
        loads=PAPER_LOADS,
        num_flows=250,
    )
    series = series_from_results(results, "p99_fct", scale=1e3)
    emit("fig10a_tail_fct", format_series_table(
        "Figure 10a: 99th-percentile FCT (ms) — left-right inter-rack",
        PAPER_LOADS, series, unit="ms"))
    return series


def test_fig10a_tail_fct(benchmark):
    series = run_once(benchmark, run_figure)
    # pFabric owns the tail at low load; the gap must close as load grows
    # (the paper's crossover at >= 60% only partially reproduces here —
    # our ack-clocked pFabric rebuild avoids the persistent-loss regime on
    # this scenario; the full collapse shows under incast, Fig. 10c.  See
    # EXPERIMENTS.md.)
    ratio_low = series["pase"][0.1] / series["pfabric"][0.1]
    ratio_high = series["pase"][0.9] / series["pfabric"][0.9]
    assert ratio_high < ratio_low
    # And at 90% the two tails are within 25% of each other.
    assert series["pase"][0.9] < 1.25 * series["pfabric"][0.9]
