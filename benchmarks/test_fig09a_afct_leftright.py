"""Figure 9a — AFCT vs load: PASE vs L2DCT vs DCTCP, left-right inter-rack.

Paper: 80 left-subtree hosts send to right-subtree hosts (flows
U[2 KB, 198 KB] plus two long background flows); PASE improves AFCT by at
least 50% over L2DCT and 70% over DCTCP across loads.
"""

from benchmarks.bench_common import PAPER_LOADS, afct_table, emit, run_once, sweep
from repro.harness import left_right


def run_figure():
    results = sweep(
        ("pase", "l2dct", "dctcp"),
        lambda: left_right(),
        loads=PAPER_LOADS,
        num_flows=250,
    )
    emit("fig09a_afct_leftright", afct_table(
        "Figure 9a: AFCT (ms) — left-right inter-rack", results, PAPER_LOADS))
    return results


def test_fig09a_afct_leftright(benchmark):
    results = run_once(benchmark, run_figure)
    for load in PAPER_LOADS:
        pase = results["pase"][load].afct
        # PASE strictly better than both deployment-friendly baselines.
        assert pase < results["l2dct"][load].afct
        assert pase < results["dctcp"][load].afct
    # At mid/high load the improvement over DCTCP is large (paper: >= 70%;
    # we require >= 25% to keep the assertion robust across seeds).
    mid = 0.7
    improvement = 1 - results["pase"][mid].afct / results["dctcp"][mid].afct
    assert improvement > 0.25
    high_improvement = 1 - results["pase"][0.9].afct / results["dctcp"][0.9].afct
    assert high_improvement > 0.35
