"""Figure 4 — pFabric's loss rate vs load under all-to-all incast.

Paper: the worker/aggregator interaction of a search application inside one
rack (flows U[2 KB, 198 KB]); pFabric's line-rate starts into shallow
priority-drop buffers push the loss rate up steeply with load (>40% at 80%
in the paper's 40-host rack; the shape — steep monotone growth — is the
claim under test at our fan-in).
"""

from benchmarks.bench_common import emit, run_once, sweep
from repro.harness import all_to_all_intra_rack, format_series_table, series_from_results

LOADS = (0.1, 0.3, 0.5, 0.7, 0.8, 0.9)


def run_figure():
    results = sweep(
        ("pfabric", "pase"),
        lambda: all_to_all_intra_rack(num_hosts=20, fanin=4),
        loads=LOADS,
        num_flows=300,
    )
    series = series_from_results(results, "loss_rate", scale=100.0)
    emit("fig04_pfabric_loss", format_series_table(
        "Figure 4: data-packet loss rate (%) — all-to-all incast intra-rack",
        LOADS, series, unit="%", precision=2))
    return series


def test_fig04_pfabric_loss(benchmark):
    series = run_once(benchmark, run_figure)
    pf = series["pfabric"]
    # Loss grows with load and is substantial at high load.
    assert pf[0.9] > pf[0.5] > pf[0.1]
    assert pf[0.9] > 1.5 * pf[0.1]  # steep growth
    assert pf[0.9] > 5.0
    # PASE's arbitration keeps losses near zero throughout.
    assert all(v < 1.0 for v in series["pase"].values())
