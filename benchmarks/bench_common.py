"""Shared infrastructure for the figure-reproduction benchmarks.

Every ``test_figXX_*.py`` module reproduces one figure/table from the paper:
it sweeps the same loads, prints the same series the paper plots, writes the
table to ``benchmarks/results/``, and asserts the figure's *qualitative*
shape (who wins, where the crossover is) so a regression that silently
breaks a result fails the benchmark run.

Scale: ``PASE_BENCH_SCALE`` (default 1.0) multiplies per-point flow counts;
set it to 3-5 for tighter confidence at the cost of wall-clock time.

Parallelism: ``PASE_BENCH_JOBS`` (default 1) fans each figure's
(protocol x load) grid out over ``repro.runner`` worker processes;
``PASE_BENCH_TIMEOUT``/``PASE_BENCH_RETRIES`` bound sick points.  The
default of 1 keeps the legacy serial path, byte-identical to before.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, Iterable, Mapping, Sequence

from repro.harness import (
    ExperimentResult,
    ExperimentSpec,
    format_series_table,
    run_experiment,
    series_from_results,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper sweeps 10%-90%; we default to five points across that range.
PAPER_LOADS = (0.1, 0.3, 0.5, 0.7, 0.9)

SCALE = float(os.environ.get("PASE_BENCH_SCALE", "1.0"))
JOBS = int(os.environ.get("PASE_BENCH_JOBS", "1"))
TIMEOUT = (float(os.environ["PASE_BENCH_TIMEOUT"])
           if "PASE_BENCH_TIMEOUT" in os.environ else None)
RETRIES = int(os.environ.get("PASE_BENCH_RETRIES", "0"))


def flows(n: int) -> int:
    """Scale a per-point flow budget by PASE_BENCH_SCALE."""
    return max(20, int(n * SCALE))


def sweep(
    protocols: Sequence[str],
    scenario_factory: Callable,
    loads: Iterable[float] = PAPER_LOADS,
    num_flows: int = 200,
    seed: int = 42,
    **kwargs,
) -> Dict[str, Dict[float, ExperimentResult]]:
    """Run each protocol across the load sweep (fresh scenario per run).

    With ``PASE_BENCH_JOBS > 1`` the whole grid goes through the
    ``repro.runner`` process pool; a failed point still fails the figure
    (``on_error='raise'``), matching the serial path's behavior."""
    loads = tuple(loads)
    if JOBS == 1:
        results: Dict[str, Dict[float, ExperimentResult]] = {}
        for protocol in protocols:
            results[protocol] = {}
            for load in loads:
                results[protocol][load] = run_experiment(ExperimentSpec.build(
                    protocol, scenario_factory(), load,
                    num_flows=flows(num_flows), seed=seed, **kwargs,
                ))
        return results

    from repro.runner import (RunnerConfig, SweepSpec, results_by_protocol_load,
                              run_sweep)

    spec = SweepSpec(
        protocols=tuple(protocols), scenario=scenario_factory, loads=loads,
        seeds=(seed,), num_flows=flows(num_flows),
        pase_config=kwargs.pop("pase_config", None),
        horizon=kwargs.pop("horizon", None),
        overrides=dict(kwargs),
    )
    outcome = run_sweep(spec.expand(), RunnerConfig(
        jobs=JOBS, timeout=TIMEOUT, retries=RETRIES,
        use_cache=False, on_error="raise",
    ))
    return results_by_protocol_load(outcome.records)


def emit(name: str, text: str) -> str:
    """Print a figure's table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
    return text


def afct_table(
    title: str,
    results: Mapping[str, Mapping[float, ExperimentResult]],
    loads: Sequence[float],
) -> str:
    series = series_from_results(results, "afct", scale=1e3)
    return format_series_table(title, loads, series, unit="ms")


def run_once(benchmark, fn):
    """Run a figure exactly once under pytest-benchmark (these sweeps are
    far too heavy for statistical repetition; the timing recorded is the
    whole-figure cost)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
