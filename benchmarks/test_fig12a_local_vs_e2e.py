"""Figure 12a — end-to-end vs local-only arbitration (left-right).

Paper: arbitrating only the access links cannot account for contention at
the oversubscribed fabric; end-to-end arbitration improves AFCT by up to
60%.

Our reproduction separates two regimes (see EXPERIMENTS.md):

* **shared port buffers** (one 500-packet buffer per port carved into
  classes — shared-memory switch semantics, arguably what Table 3's single
  qSize describes): local-only arbitration lets un-throttled flows overrun
  the fabric buffers, and its drops + conservative low-queue RTOs blow up
  the tail.  End-to-end arbitration prevents the overruns entirely — this
  is where the paper's gap reproduces.
* **per-class buffers** (each PRIO band its own RED queue, the Linux
  testbed stack): nothing overflows, ECN alone keeps the fabric civil, and
  the two modes tie on AFCT with end-to-end ahead only marginally.
"""

from benchmarks.bench_common import emit, flows, run_once
from repro.core import PaseConfig
from repro.harness import ExperimentSpec, format_series_table, left_right, run_experiment

LOADS = (0.3, 0.5, 0.7, 0.9)


def _sweep(shared: bool):
    base = PaseConfig(shared_queue_capacity=shared)
    out = {}
    for protocol in ("pase", "pase-local"):
        out[protocol] = {
            load: run_experiment(ExperimentSpec(protocol, left_right(), load,
                                 num_flows=flows(250), seed=42,
                                 pase_config=base))
            for load in LOADS
        }
    return out


def run_figure():
    shared = _sweep(shared=True)
    per_class = _sweep(shared=False)
    sections = []
    for label, results in (("shared 500-pkt port buffers", shared),
                           ("per-class buffers", per_class)):
        afct = {name: {l: r.afct * 1e3 for l, r in by_load.items()}
                for name, by_load in results.items()}
        tail = {name: {l: r.p99_fct * 1e3 for l, r in by_load.items()}
                for name, by_load in results.items()}
        sections.append(format_series_table(
            f"Figure 12a ({label}): AFCT (ms)", LOADS, afct, unit="ms"))
        sections.append(format_series_table(
            f"Figure 12a ({label}): 99th-pct FCT (ms)", LOADS, tail, unit="ms"))
    emit("fig12a_local_vs_e2e", "\n\n".join(sections))
    return shared, per_class


def test_fig12a_local_vs_e2e(benchmark):
    shared, per_class = run_once(benchmark, run_figure)
    # Shared buffers at high load: end-to-end arbitration prevents the
    # overruns local-only suffers — a decisive tail win (the AFCT stays
    # competitive; local's jump-start still helps its mean).
    assert shared["pase"][0.9].p99_fct < 0.7 * shared["pase-local"][0.9].p99_fct
    assert shared["pase"][0.9].afct < 1.25 * shared["pase-local"][0.9].afct
    assert shared["pase"][0.9].network.data_pkts_dropped <= \
        shared["pase-local"][0.9].network.data_pkts_dropped
    # Per-class buffers: the modes stay within 60% of each other on AFCT.
    assert per_class["pase"][0.9].afct < 1.6 * per_class["pase-local"][0.9].afct
