"""Figure 9c — application throughput vs load: PASE vs D2TCP vs DCTCP.

Paper: the intra-rack deadline scenario (20 machines, flows
U[100 KB, 500 KB], deadlines U[5 ms, 25 ms]); PASE (arbitrating EDF) meets
clearly more deadlines than D2TCP and DCTCP, especially at high load where
every D2TCP/DCTCP flow keeps sending at least one packet per RTT.
"""

from benchmarks.bench_common import PAPER_LOADS, emit, run_once, sweep
from repro.harness import format_series_table, intra_rack, series_from_results


def run_figure():
    results = sweep(
        ("pase", "d2tcp", "dctcp"),
        lambda: intra_rack(num_hosts=20, with_deadlines=True),
        loads=PAPER_LOADS,
        num_flows=200,
    )
    series = series_from_results(results, "application_throughput")
    emit("fig09c_deadline_throughput", format_series_table(
        "Figure 9c: application throughput (deadlines met) — intra-rack",
        PAPER_LOADS, series, precision=3))
    return series


def test_fig09c_deadline_throughput(benchmark):
    series = run_once(benchmark, run_figure)
    for load in PAPER_LOADS:
        assert series["pase"][load] >= series["d2tcp"][load] - 0.02
        assert series["pase"][load] >= series["dctcp"][load] - 0.02
    # The gap opens at high load (the paper's headline for this figure).
    assert series["pase"][0.9] > series["dctcp"][0.9]
