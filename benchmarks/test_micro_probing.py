"""§4.3.2 micro-benchmark — probe-based loss recovery.

Paper: replacing data retransmissions with header-only probes for
low-priority flows improves AFCT ~2.4%/11% at 80/90% load, because a
sender that cannot tell "lost" from "parked behind higher priorities"
otherwise re-injects full windows into congested buffers.

Reproduction finding: the benefit is contingent on the loss-recovery
baseline.  Our shared transport chassis acknowledges every packet
selectively (SACK), so even the probe-less timeout path only ever
retransmits genuinely-unacknowledged packets — the spurious
retransmissions the paper's probes avoid simply do not occur.  The
benchmark therefore verifies the mechanism (probes fire under buffer
pressure, loss is disambiguated, nothing is retransmitted spuriously, and
performance is never worse) rather than a gap that SACK already closed.
The low-queue RTO is scaled from Table 3's conservative 200 ms to 20 ms so
timeouts land within the experiment's ~50 ms horizon; at 200 ms a single
stall dominates every other effect and both variants measure identically.
"""

from dataclasses import replace

from benchmarks.bench_common import emit, flows, run_once
from repro.core import PaseConfig
from repro.harness import ExperimentSpec, all_to_all_intra_rack, format_series_table, run_experiment
from repro.utils.units import MSEC

LOADS = (0.5, 0.8, 0.9)
BASE = PaseConfig(shared_queue_capacity=True, queue_capacity_pkts=150,
                  min_rto_low=20 * MSEC)


def run_figure():
    results = {}
    for label, probing in (("pase", True), ("pase-noprobe", False)):
        cfg = replace(BASE, probing_enabled=probing)
        results[label] = {
            load: run_experiment(ExperimentSpec(
                "pase", all_to_all_intra_rack(num_hosts=20, fanin=16), load,
                num_flows=flows(250), seed=42, pase_config=cfg))
            for load in LOADS
        }
    series = {name: {l: r.afct * 1e3 for l, r in by_load.items()}
              for name, by_load in results.items()}
    text = format_series_table(
        "Micro-benchmark (4.3.2): AFCT (ms) — probing on/off, "
        "shared 150-pkt buffers, incast", LOADS, series, unit="ms")
    text += "\nat 90% load (probing on): " + _recovery_summary(
        results["pase"][0.9])
    text += "\nat 90% load (probing off): " + _recovery_summary(
        results["pase-noprobe"][0.9])
    emit("micro_probing", text)
    return results


def _recovery_summary(result):
    retx = sum(f.retransmissions for f in result.flows)
    probes = sum(f.probes_sent for f in result.flows)
    drops = result.network.data_pkts_dropped
    return (f"drops={drops} retransmissions={retx} "
            f"(spurious={retx - drops}) probes={probes}")


def test_micro_probing(benchmark):
    results = run_once(benchmark, run_figure)
    on, off = results["pase"], results["pase-noprobe"]
    # Probes actually fire under buffer pressure...
    assert sum(f.probes_sent for f in on[0.9].flows) > 0
    for load in LOADS:
        # ...every flow completes under both variants...
        assert on[load].stats.completion_fraction == 1.0
        assert off[load].stats.completion_fraction == 1.0
        # ...probing never hurts...
        assert on[load].afct < 1.05 * off[load].afct
        # ...and neither variant retransmits spuriously (per-packet SACK
        # already disambiguates — see the module docstring).
        retx = sum(f.retransmissions for f in on[load].flows)
        assert retx <= on[load].network.data_pkts_dropped * 1.2 + 5
