"""Figure 2 — limits of arbitration in isolation (PDQ vs DCTCP).

Paper: AFCT vs load for PDQ and DCTCP on the intra-rack scenario.  PDQ's
explicit rates win clearly at low load (fast convergence), but its flow
switching overhead (pause/unpause handshakes, suppressed probing of paused
flows) erodes and finally inverts the advantage at high load.

The instability at 90% load needs a long enough run to manifest — the
paused-flow backlog builds over hundreds of flows — hence the larger flow
budget here.
"""

from benchmarks.bench_common import emit, run_once, sweep
from repro.harness import format_series_table, intra_rack, series_from_results

LOADS = (0.1, 0.3, 0.5, 0.7, 0.9)


def run_figure():
    results = sweep(
        ("pdq", "dctcp"),
        lambda: intra_rack(num_hosts=20),
        loads=LOADS,
        num_flows=450,
    )
    series = series_from_results(results, "afct", scale=1e3)
    emit("fig02_pdq_vs_dctcp", format_series_table(
        "Figure 2: AFCT (ms) — PDQ vs DCTCP, intra-rack",
        LOADS, series, unit="ms"))
    return series


def test_fig02_arbitration_limits(benchmark):
    series = run_once(benchmark, run_figure)
    # Low load: PDQ's fast convergence wins decisively.
    assert series["pdq"][0.1] < 0.7 * series["dctcp"][0.1]
    # High load: flow-switching overhead flips the ordering.
    assert series["pdq"][0.9] > series["dctcp"][0.9]
