"""Figure 10b — CDF of FCTs at 70% load: PASE vs pFabric (left-right).

Paper: at 70% load the two distributions are close in the body; pFabric's
advantage shows for the shortest flows while its loss-affected tail is
longer.
"""

from benchmarks.bench_common import emit, flows, run_once
from repro.harness import ExperimentSpec, format_cdf, left_right, run_experiment

LOAD = 0.7


def run_figure():
    results = {}
    for protocol in ("pase", "pfabric"):
        results[protocol] = run_experiment(ExperimentSpec(
            protocol, left_right(), LOAD, num_flows=flows(250), seed=42))
    cdfs = {name: r.stats.fct_cdf() for name, r in results.items()}
    emit("fig10b_fct_cdf_pfabric", format_cdf(
        "Figure 10b: FCT CDF at 70% load — PASE vs pFabric", cdfs))
    return results


def test_fig10b_fct_cdf_pfabric(benchmark):
    results = run_once(benchmark, run_figure)
    pase, pfab = results["pase"].stats, results["pfabric"].stats
    # Bodies comparable: median within 3x of each other.
    assert pase.median_fct < 3 * pfab.median_fct
    # All flows completed under both.
    assert pase.completion_fraction == 1.0
    assert pfab.completion_fraction == 1.0
