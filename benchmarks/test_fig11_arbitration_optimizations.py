"""Figure 11 — effect of the control-plane optimizations (early pruning +
delegation) on AFCT (a) and on arbitration overhead (b).

Paper: with both optimizations enabled, control messages drop by up to 50%
at high load (delegation keeps inter-rack arbitration at the ToRs, pruning
stops low-priority flows from climbing) while AFCT *improves* slightly
(4-10%) because delegation removes arbitration latency.
"""

from benchmarks.bench_common import emit, run_once, sweep
from repro.harness import format_series_table, left_right, series_from_results
from repro.metrics import overhead_reduction

LOADS = (0.1, 0.3, 0.5, 0.7, 0.9)


def run_figure():
    results = sweep(
        ("pase", "pase-noopt"),
        lambda: left_right(),
        loads=LOADS,
        num_flows=250,
    )
    afct = series_from_results(results, "afct", scale=1e3)
    lines = [format_series_table(
        "Figure 11a: AFCT (ms) — optimizations on (pase) vs off (pase-noopt)",
        LOADS, afct, unit="ms")]
    reductions = {}
    for load in LOADS:
        on = results["pase"][load].control_plane.messages_per_sec
        off = results["pase-noopt"][load].control_plane.messages_per_sec
        reductions[load] = overhead_reduction(off, on)
    lines.append("")
    lines.append("Figure 11b: control-message overhead")
    lines.append(f"{'load(%)':<10}{'msgs/s (on)':<16}{'msgs/s (off)':<16}{'reduction %':<12}")
    for load in LOADS:
        on = results["pase"][load].control_plane.messages_per_sec
        off = results["pase-noopt"][load].control_plane.messages_per_sec
        lines.append(f"{load*100:<10.0f}{on:<16.0f}{off:<16.0f}{reductions[load]:<12.1f}")
    lines.append("")
    lines.append("Processing load per arbitrator level (decisions, 90% load):")
    for name in ("pase", "pase-noopt"):
        by_level = results[name][0.9].control_plane.processed_by_level
        lines.append(f"  {name:<12} host={by_level[0]:<8} tor={by_level[1]:<8} "
                     f"agg={by_level[2]:<8}")
    emit("fig11_arbitration_optimizations", "\n".join(lines))
    return results, reductions


def test_fig11_arbitration_optimizations(benchmark):
    results, reductions = run_once(benchmark, run_figure)
    # Optimizations reduce control messages at every load, substantially at
    # high load (paper: up to ~50%).
    assert all(r > 0 for r in reductions.values())
    assert reductions[0.9] > 20.0
    # And they do not hurt completion times (paper: 4-10% improvement).
    for load in LOADS:
        assert results["pase"][load].afct <= 1.15 * results["pase-noopt"][load].afct
    # Delegation moves all aggregation-level processing down to the ToRs.
    assert results["pase"][0.9].control_plane.processed_by_level[2] == 0
    assert results["pase-noopt"][0.9].control_plane.processed_by_level[2] > 0
