"""Extension — task-aware scheduling (§3.1.1: "FlowSize can be replaced by
... task-id for task-aware scheduling", per Baraat).

On the partition-aggregate workload a query is only as fast as its slowest
response, so the metric that matters is *task* completion time (TCT), not
per-flow FCT.  Flow-level SRPT gladly preempts the last flow of an old
query to serve a fresh short flow — lowering FCT but stretching the old
query.  Task-aware FIFO-LM finishes whole queries in arrival order.
"""

from collections import defaultdict

from benchmarks.bench_common import emit, flows, run_once
from repro.core import PaseConfig
from repro.harness import ExperimentSpec, all_to_all_intra_rack, format_series_table, run_experiment

LOADS = (0.5, 0.7, 0.9)


def task_completion_times(result):
    """Mean and p99 task completion time (query arrival to last response)."""
    tasks = defaultdict(list)
    for flow in result.flows:
        if flow.background or flow.task_id is None:
            continue
        tasks[flow.task_id].append(flow)
    tcts = []
    for members in tasks.values():
        if not all(f.completed for f in members):
            continue
        start = min(f.start_time for f in members)
        end = max(f.completion_time for f in members)
        tcts.append(end - start)
    tcts.sort()
    mean = sum(tcts) / len(tcts) if tcts else float("nan")
    return mean, tcts


def run_figure():
    results = {}
    for label, criterion in (("srpt", "size"), ("task-aware", "task")):
        cfg = PaseConfig(criterion=criterion)
        results[label] = {}
        for load in LOADS:
            r = run_experiment(ExperimentSpec(
                "pase", all_to_all_intra_rack(num_hosts=20, fanin=8), load,
                num_flows=flows(320), seed=42, pase_config=cfg))
            results[label][load] = r
    mean_tct = {}
    for label, by_load in results.items():
        mean_tct[label] = {}
        for load, r in by_load.items():
            mean, _ = task_completion_times(r)
            mean_tct[label][load] = mean * 1e3
    afct = {label: {l: r.afct * 1e3 for l, r in by_load.items()}
            for label, by_load in results.items()}
    text = format_series_table(
        "Extension: mean task (query) completion time (ms)", LOADS, mean_tct,
        unit="ms")
    text += "\n\n" + format_series_table(
        "For reference: per-flow AFCT (ms)", LOADS, afct, unit="ms")
    emit("ext_task_aware", text)
    return mean_tct, afct


def test_ext_task_aware(benchmark):
    mean_tct, afct = run_once(benchmark, run_figure)
    for load in LOADS:
        # Task-aware scheduling must not lose on its own metric...
        assert mean_tct["task-aware"][load] <= 1.1 * mean_tct["srpt"][load]
    # ...and at high load it wins task completion time outright.
    assert mean_tct["task-aware"][0.9] < mean_tct["srpt"][0.9]
