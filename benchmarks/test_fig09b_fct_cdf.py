"""Figure 9b — CDF of FCTs at 70% load (left-right inter-rack).

Paper: at 70% load PASE's FCT distribution dominates L2DCT's and DCTCP's
almost everywhere (their CDFs sit to the right of PASE's).
"""

from benchmarks.bench_common import emit, flows, run_once
from repro.harness import ExperimentSpec, format_cdf, left_right, run_experiment

LOAD = 0.7


def run_figure():
    results = {}
    for protocol in ("pase", "l2dct", "dctcp"):
        results[protocol] = run_experiment(ExperimentSpec(
            protocol, left_right(), LOAD, num_flows=flows(250), seed=42))
    cdfs = {name: r.stats.fct_cdf() for name, r in results.items()}
    emit("fig09b_fct_cdf", format_cdf(
        "Figure 9b: FCT CDF at 70% load — left-right inter-rack", cdfs))
    return results


def test_fig09b_fct_cdf(benchmark):
    results = run_once(benchmark, run_figure)
    pase = results["pase"].stats
    for baseline in ("l2dct", "dctcp"):
        other = results[baseline].stats
        # Distributional dominance at the median and the tail.
        assert pase.median_fct < other.median_fct
        assert pase.fct_percentile(90) < other.fct_percentile(90)
