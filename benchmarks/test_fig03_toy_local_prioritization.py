"""Figure 3 — the toy example showing pFabric's switch-local decisions
wasting upstream capacity.

Three flows, two links (paper Fig. 3):

* flow 1: src1 -> dst1, highest priority (smallest remaining size),
* flow 2: src2 -> dst1, medium priority — shares link B with flow 1,
* flow 3: src2 -> dst2, lowest priority — shares link A (src2's uplink)
  with flow 2 but nothing with flow 1.

Under pFabric, src2 keeps pushing flow 2's packets onto link A (flow 2
beats flow 3 locally) even though they die at link B behind flow 1 — so
flow 3, which could run in parallel with flow 1, is stalled and link A's
delivered goodput is wasted.  PASE's arbitration pauses flow 2 end-to-end,
letting flow 3 use link A immediately.
"""

from benchmarks.bench_common import emit, run_once
from repro.core import PaseConfig, PaseControlPlane, PaseReceiver, PaseSender, pase_queue_factory
from repro.sim import Simulator, StarTopology
from repro.transports import (
    Flow,
    PfabricConfig,
    PfabricSender,
    ReceiverAgent,
    pfabric_queue_factory,
)
from repro.utils.units import GBPS, KB, USEC

#: flow id -> (src index, dst index, size).  Sizes encode the priorities.
FLOWS = {
    1: (0, 2, 100 * KB),   # highest priority, src1 -> dst1
    2: (1, 2, 400 * KB),   # medium, src2 -> dst1 (loses link B to flow 1)
    3: (1, 3, 800 * KB),   # lowest, src2 -> dst2 (only shares link A)
}


def run_pfabric():
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=4, link_bps=1 * GBPS, rtt=100 * USEC,
                        queue_factory=pfabric_queue_factory(16))
    cfg = PfabricConfig(initial_rtt=100 * USEC, init_cwnd=9)
    flows = {}
    for fid, (s, d, size) in FLOWS.items():
        f = Flow(flow_id=fid, src=topo.hosts[s].node_id,
                 dst=topo.hosts[d].node_id, size_bytes=size, start_time=0.0)
        ReceiverAgent(sim, topo.hosts[d], f)
        PfabricSender(sim, topo.hosts[s], f, cfg).start()
        flows[fid] = f
    sim.run(until=0.5)
    drops = topo.network.total_drops()
    return flows, drops


def run_pase():
    cfg = PaseConfig()
    sim = Simulator()
    topo = StarTopology(sim, num_hosts=4, link_bps=1 * GBPS, rtt=100 * USEC,
                        queue_factory=pase_queue_factory(cfg))
    cp = PaseControlPlane(sim, topo, cfg)
    flows = {}
    for fid, (s, d, size) in FLOWS.items():
        f = Flow(flow_id=fid, src=topo.hosts[s].node_id,
                 dst=topo.hosts[d].node_id, size_bytes=size, start_time=0.0)
        PaseReceiver(sim, topo.hosts[d], f)
        PaseSender(sim, topo.hosts[s], f, cp).start()
        flows[fid] = f
    sim.run(until=0.5)
    drops = topo.network.total_drops()
    return flows, drops


def run_figure():
    pf_flows, pf_drops = run_pfabric()
    pase_flows, pase_drops = run_pase()
    lines = ["Figure 3: toy 3-flow example — switch-local vs end-to-end priorities",
             "-" * 68,
             f"{'flow':<8}{'pFabric FCT (ms)':<20}{'PASE FCT (ms)':<20}"]
    for fid in FLOWS:
        lines.append(f"{fid:<8}{pf_flows[fid].fct * 1e3:<20.3f}"
                     f"{pase_flows[fid].fct * 1e3:<20.3f}")
    lines.append(f"dropped packets: pFabric={pf_drops}  PASE={pase_drops}")
    emit("fig03_toy_example", "\n".join(lines))
    return pf_flows, pf_drops, pase_flows, pase_drops


def test_fig03_toy_local_prioritization(benchmark):
    pf_flows, pf_drops, pase_flows, pase_drops = run_once(benchmark, run_figure)
    # pFabric wastes link A on flow-2 packets that die at link B.
    assert pf_drops > 0
    assert pase_drops <= pf_drops
    # Flow 3 (disjoint from flow 1) finishes sooner under PASE, which stops
    # flow 2 at the source instead of at link B.
    assert pase_flows[3].fct < pf_flows[3].fct
    # Flow 1 is the top priority under both.
    assert pf_flows[1].fct == min(f.fct for f in pf_flows.values())
    assert pase_flows[1].fct == min(f.fct for f in pase_flows.values())
