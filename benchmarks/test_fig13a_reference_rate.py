"""Figure 13a — the value of the reference rate (PASE vs PASE-DCTCP).

Paper: intra-rack, 20 nodes, flows U[100 KB, 500 KB].  PASE-DCTCP keeps the
arbitrated queue assignment but ignores Rref (all flows run DCTCP laws);
seeding the window from the reference rate halves AFCT in the paper.
"""

from benchmarks.bench_common import emit, run_once, sweep
from repro.harness import format_series_table, intra_rack, series_from_results
from repro.utils.units import KB
from repro.workloads import UniformSizeDistribution

LOADS = (0.1, 0.3, 0.5, 0.7, 0.9)


def scenario():
    return intra_rack(
        num_hosts=20,
        sizes=UniformSizeDistribution(100 * KB, 500 * KB),
    )


def run_figure():
    results = sweep(("pase", "pase-dctcp"), scenario, loads=LOADS,
                    num_flows=250)
    series = series_from_results(results, "afct", scale=1e3)
    emit("fig13a_reference_rate", format_series_table(
        "Figure 13a: AFCT (ms) — PASE vs PASE-DCTCP (no reference rate)",
        LOADS, series, unit="ms"))
    return series


def test_fig13a_reference_rate(benchmark):
    series = run_once(benchmark, run_figure)
    # The reference rate helps at every load...
    for load in LOADS:
        assert series["pase"][load] < series["pase-dctcp"][load]
    # ...and clearly so in aggregate (paper: ~50%; we require >= 10%).
    mean_on = sum(series["pase"].values()) / len(LOADS)
    mean_off = sum(series["pase-dctcp"].values()) / len(LOADS)
    assert mean_on < 0.9 * mean_off
