"""Figure 1 — limits of self-adjusting endpoints in isolation.

Paper: application throughput (fraction of deadlines met) vs offered load
for DCTCP, D2TCP, and pFabric on the intra-rack deadline workload
(flows U[100 KB, 500 KB], deadlines U[5 ms, 25 ms], two background flows).

Expected shape: D2TCP tracks DCTCP closely and both degrade steeply with
load, while pFabric sustains clearly higher deadline throughput at high
load — the motivation for in-network prioritization.
"""

from benchmarks.bench_common import PAPER_LOADS, emit, run_once, sweep
from repro.harness import format_series_table, intra_rack, series_from_results

PROTOCOLS = ("pfabric", "d2tcp", "dctcp")


def run_figure():
    results = sweep(
        PROTOCOLS,
        lambda: intra_rack(num_hosts=20, with_deadlines=True),
        loads=PAPER_LOADS,
        num_flows=200,
    )
    series = series_from_results(results, "application_throughput")
    emit("fig01_app_throughput", format_series_table(
        "Figure 1: application throughput (fraction of deadlines met)",
        PAPER_LOADS, series, precision=3))
    return series


def test_fig01_selfadjusting_limits(benchmark):
    series = run_once(benchmark, run_figure)
    # Self-adjusting endpoints degrade with load...
    assert series["dctcp"][0.9] < series["dctcp"][0.1]
    # ...and D2TCP's deadline-awareness cannot keep it near pFabric when
    # loads are high (the paper's central motivating observation).
    assert series["pfabric"][0.9] >= series["d2tcp"][0.9]
    # At low load everyone is fine.
    assert all(series[p][0.1] > 0.8 for p in PROTOCOLS)
